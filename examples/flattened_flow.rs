//! The co-design flow's *flattened partitioning* branch (Fig. 4, right):
//! explode the tile into clusters, run multi-start FM min-cut, and show
//! that it converges to the same L3 boundary as the hierarchical branch.
//!
//! ```sh
//! cargo run --release --example flattened_flow
//! ```

use netlist::openpiton::two_tile_openpiton;
use netlist::partition::{flattened_fm_split, hierarchical_l3_split};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = two_tile_openpiton();
    let hier = hierarchical_l3_split(&design)?;
    println!(
        "hierarchical branch: cut {} wires, {} logic / {} memory cells",
        hier.cut_width(),
        hier.logic_cells(),
        hier.memory_cells()
    );
    for seed in [3, 7, 42] {
        let fm = flattened_fm_split(&design, 0, seed)?;
        println!(
            "flattened FM (seed {seed:>2}): cut {} wires, {} logic / {} memory cells -> {}",
            fm.cut_width(),
            fm.logic_cells(),
            fm.memory_cells(),
            if fm.cut_width() == hier.cut_width() {
                "matches the hierarchical split"
            } else {
                "differs"
            }
        );
    }
    Ok(())
}
