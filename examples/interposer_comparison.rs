//! Full six-technology comparison: regenerates Tables I–IV.
//!
//! ```sh
//! cargo run --release --example interposer_comparison
//! ```

use codesign::flow::run_all;
use codesign::table5::MonitorLengths;
use codesign::tables;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", tables::table1());
    let studies = run_all(MonitorLengths::Routed)?;
    println!("{}", tables::table2(&studies));
    println!("{}", tables::table3(&studies));
    println!("{}", tables::table4(&studies));

    let headline = codesign::compare::headline()?;
    println!("Headline (abstract claims, measured):");
    println!(
        "  area reduction        {:.2}x   (paper: 2.6x)",
        headline.area_reduction_x
    );
    println!(
        "  wirelength reduction  {:.1}x   (paper: 21x)",
        headline.wirelength_reduction_x
    );
    println!(
        "  power reduction       {:.1}%   (paper: 17.72%)",
        headline.power_reduction_frac * 100.0
    );
    println!(
        "  SI improvement        {:.1}%   (paper: 64.7%)",
        headline.si_improvement_frac * 100.0
    );
    println!(
        "  PI improvement        {:.1}x   (paper: ~10x)",
        headline.pi_improvement_x
    );
    println!(
        "  thermal increase      {:.1}%   (paper: ~35%)",
        headline.thermal_increase_frac * 100.0
    );
    Ok(())
}
