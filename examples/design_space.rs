//! Design-space exploration beyond the paper's data points: what happens
//! to the glass chiplet footprint and the link budget as the micro-bump
//! pitch and line length scale — the "optimization opportunities" the
//! paper's Section VIII points at.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use chiplet::bumpmap::BumpPlan;
use chiplet::footprint;
use netlist::chiplet_netlist::chipletize;
use netlist::openpiton::two_tile_openpiton;
use netlist::partition::hierarchical_l3_split;
use netlist::serdes::SerdesPlan;
use si::link::{simulate_link, ChannelKind};
use techlib::spec::{InterposerKind, InterposerSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = two_tile_openpiton();
    let split = hierarchical_l3_split(&design)?;
    let (logic, _mem) = chipletize(&design, &split, &SerdesPlan::paper());

    println!("--- Glass logic die width vs micro-bump pitch ---");
    println!(
        "{:>10}{:>12}{:>12}{:>10}",
        "pitch µm", "width µm", "area mm²", "limit"
    );
    for pitch in [20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0] {
        let mut spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        spec.microbump_pitch_um = pitch;
        let bumps = BumpPlan::for_design(logic.signal_pins, logic.kind, &spec);
        let fp = footprint::solve(&logic, &bumps, &spec, None);
        println!(
            "{:>10}{:>12.0}{:>12.3}{:>10}",
            pitch,
            fp.width_um,
            fp.area_mm2(),
            if fp.bump_limited_um >= fp.cell_limited_um {
                "bump"
            } else {
                "cells"
            }
        );
    }

    println!("\n--- Glass link delay/power vs line length ---");
    println!("{:>10}{:>12}{:>12}", "len µm", "delay ps", "power µW");
    for len in [250.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0] {
        let r = simulate_link(&ChannelKind::RdlTrace {
            tech: InterposerKind::Glass25D,
            length_um: len,
        })?;
        println!(
            "{:>10}{:>12.2}{:>12.2}",
            len, r.interconnect_delay_ps, r.interconnect_power_uw
        );
    }

    println!("\n--- Serialisation ratio trade-off (inter-tile wires vs latency) ---");
    println!("{:>8}{:>12}{:>14}", "ratio", "wires", "added cycles");
    for ratio in [1usize, 2, 4, 8, 16, 32] {
        let plan = SerdesPlan::new(6, 64, 20, ratio);
        println!(
            "{:>8}{:>12}{:>14}",
            ratio, plan.wires_after, plan.added_cycles
        );
    }
    Ok(())
}
