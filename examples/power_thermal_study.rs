//! Power- and thermal-integrity study: the Fig. 15 PDN impedance family,
//! the Table IV IR-drop/settling rows, and the Fig. 16–18 temperatures.
//!
//! ```sh
//! cargo run --release --example power_thermal_study
//! ```

use pi::impedance::ImpedanceProfile;
use pi::transient;
use techlib::spec::InterposerKind;
use thermal::report::figure17;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- Fig. 15: PDN impedance profiles (1 MHz - 1 GHz) ---");
    println!(
        "{:<14}{:>10}{:>10}{:>10}{:>10}{:>12}",
        "tech", "1 MHz", "10 MHz", "100 MHz", "1 GHz", "peak Ω"
    );
    for tech in InterposerKind::PACKAGED {
        let p = ImpedanceProfile::sweep(tech, 61)?;
        println!(
            "{:<14}{:>10.3}{:>10.3}{:>10.3}{:>10.3}{:>12.2}",
            tech.label(),
            p.at(1e6),
            p.at(1e7),
            p.at(1e8),
            p.at(1e9),
            p.peak_ohm()
        );
    }

    println!("\n--- Table IV: IR drop and 125 MHz settling ---");
    println!(
        "{:<14}{:>12}{:>12}{:>14}",
        "tech", "IR drop mV", "droop mV", "settling µs"
    );
    for tech in InterposerKind::PACKAGED {
        let r = transient::analyze(tech)?;
        println!(
            "{:<14}{:>12.1}{:>12.1}{:>14.2}",
            tech.label(),
            r.ir_drop_mv,
            r.worst_droop_mv,
            r.settling_us
        );
    }

    println!("\n--- Figs. 16-18: chiplet temperatures (0.1 m/s air) ---");
    println!(
        "{:<14}{:>12}{:>12}{:>12}",
        "tech", "logic °C", "mem °C", "assembly °C"
    );
    for r in figure17()? {
        println!(
            "{:<14}{:>12.1}{:>12.1}{:>12.1}",
            r.tech.label(),
            r.logic_peak_c,
            r.mem_peak_c,
            r.assembly_peak_c
        );
    }
    Ok(())
}
