//! Signal-integrity study: Table V (both monitored-net modes), the Fig. 14
//! eye diagrams, and the Table VI material comparison.
//!
//! ```sh
//! cargo run --release --example signal_integrity_study
//! ```

use codesign::table5::{table5, MonitorLengths};
use codesign::tables;
use interposer::diemap::NetClass;
use interposer::report::cached_layout;
use si::eye::{lateral_eye, stacked_via_eye, EyeConfig};
use techlib::spec::InterposerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("--- Table V with the paper's monitored net lengths ---");
    println!("{}", tables::table5_text(&table5(MonitorLengths::Paper)?));

    println!("--- Table V with our own routed worst nets ---");
    println!("{}", tables::table5_text(&table5(MonitorLengths::Routed)?));

    println!("--- Fig. 14: eye diagrams (0.7 Gbps PRBS-7, 2 aggressors) ---");
    let cfg = EyeConfig::default();
    println!(
        "{:<14}{:>8}{:>12}{:>12}",
        "tech", "link", "width ns", "height V"
    );
    let g3 = stacked_via_eye(&cfg)?;
    println!(
        "{:<14}{:>8}{:>12.3}{:>12.3}",
        "Glass 3D", "L2M", g3.width_ns, g3.height_v
    );
    for tech in [
        InterposerKind::Glass25D,
        InterposerKind::Silicon25D,
        InterposerKind::Shinko,
        InterposerKind::Apx,
    ] {
        let layout = cached_layout(tech)?;
        let l2m = layout.worst_net_um(NetClass::IntraTileLateral);
        let eye = lateral_eye(tech, l2m, &cfg)?;
        println!(
            "{:<14}{:>8}{:>12.3}{:>12.3}",
            tech.label(),
            "L2M",
            eye.width_ns,
            eye.height_v
        );
        let l2l = layout.worst_net_um(NetClass::InterTile);
        let eye = lateral_eye(tech, l2l, &cfg)?;
        println!(
            "{:<14}{:>8}{:>12.3}{:>12.3}",
            tech.label(),
            "L2L",
            eye.width_ns,
            eye.height_v
        );
    }
    let g3_l2l = cached_layout(InterposerKind::Glass3D)?.worst_net_um(NetClass::InterTile);
    let eye = lateral_eye(InterposerKind::Glass3D, g3_l2l, &cfg)?;
    println!(
        "{:<14}{:>8}{:>12.3}{:>12.3}",
        "Glass 3D", "L2L", eye.width_ns, eye.height_v
    );

    println!("\n--- Table VI: 400 µm fixed-length material comparison ---");
    println!("{}", tables::table6_text()?);
    Ok(())
}
