//! Data-rate stress sweep: the paper's channels at 0.7 Gbps and beyond.
//!
//! The study's eyes are nearly clean at the OpenPiton link rate; this
//! sweep shows where each technology's channel actually runs out of
//! bandwidth — an extension of the Fig. 14 analysis.
//!
//! ```sh
//! cargo run --release --example stress_eye
//! ```

use si::eye::{lateral_eye, EyeConfig};
use techlib::spec::InterposerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let length_um = 2_000.0;
    println!("eye width (fraction of UI) on a 2 mm lateral link, 50-ohm deck:");
    print!("{:>12}", "rate Gb/s");
    let techs = [
        InterposerKind::Glass25D,
        InterposerKind::Silicon25D,
        InterposerKind::Shinko,
        InterposerKind::Apx,
    ];
    for t in techs {
        print!("{:>14}", t.label());
    }
    println!();
    for rate_gbps in [0.7, 2.0, 5.0, 10.0, 20.0] {
        print!("{:>12.1}", rate_gbps);
        for tech in techs {
            let cfg = EyeConfig {
                bits: 64,
                data_rate_bps: rate_gbps * 1e9,
                ..EyeConfig::paper_deck()
            };
            let eye = lateral_eye(tech, length_um, &cfg)?;
            let ui_ns = 1.0 / rate_gbps;
            print!("{:>14.2}", eye.width_ns / ui_ns);
        }
        println!();
    }
    Ok(())
}
