//! Quickstart: run the complete co-design flow for the paper's headline
//! configuration (Glass 3D, the "5.5D" embedded-die interposer) and print
//! a one-page summary.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use codesign::flow::run_tech;
use techlib::spec::InterposerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let study = run_tech(InterposerKind::Glass3D)?;

    println!("=== Glass 3D (5.5D) co-design study ===\n");
    println!("Chiplets (Table III):");
    for r in [&study.logic, &study.memory] {
        println!(
            "  {:<6} {:.2} mm² @ {:.1}% util, Fmax {:.0} MHz, {:.2} m wire, {:.2} mW",
            r.chiplet,
            r.footprint.area_mm2(),
            r.utilization * 100.0,
            r.fmax_mhz,
            r.wirelength_m,
            r.total_power_mw()
        );
    }

    if let Some(routing) = &study.routing {
        println!("\nInterposer (Table IV):");
        println!(
            "  {} signal + {} P/G layers, {:.1} mm lateral wire over {} nets,",
            routing.signal_layers_used,
            routing.pg_layers,
            routing.total_wl_mm,
            routing.stacked_via_columns + 68
        );
        println!(
            "  {} stacked-via columns, {:.2} mm² footprint",
            routing.stacked_via_columns, routing.area_mm2
        );
    }

    println!("\nWorst links (Table V):");
    println!(
        "  L2M: {:>6.0} µm  {:.2} ps interconnect, {:.1} µW",
        study.links.l2m.length_um,
        study.links.l2m.interconnect_delay_ps,
        study.links.l2m.total_power_uw()
    );
    println!(
        "  L2L: {:>6.0} µm  {:.2} ps interconnect, {:.1} µW",
        study.links.l2l.length_um,
        study.links.l2l.interconnect_delay_ps,
        study.links.l2l.total_power_uw()
    );

    println!("\nFull chip (Section VII-H):");
    println!(
        "  system power {:.1} mW ({:.1} chiplets + {:.1} intra + {:.1} inter)",
        study.fullchip.total_power_mw,
        study.fullchip.chiplet_power_mw,
        study.fullchip.intra_tile_power_mw,
        study.fullchip.inter_tile_power_mw
    );
    println!(
        "  system clock {:.0} MHz (pipelined)",
        study.fullchip.system_fmax_mhz
    );

    println!("\nThermal (Fig. 17):");
    println!(
        "  logic {:.1} °C, embedded memory {:.1} °C (the 5.5D trade-off)",
        study.thermal.logic_peak_c, study.thermal.mem_peak_c
    );
    Ok(())
}
