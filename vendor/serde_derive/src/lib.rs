//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so this crate re-derives
//! the subset of serde's data model the workspace actually uses: plain
//! (non-generic) structs and enums with no `#[serde(...)]` attributes.
//! Codegen targets the `Content` tree defined by the sibling `serde` stub;
//! enums use serde's externally-tagged representation so JSON output
//! matches upstream serde_json byte-for-byte for this workspace's types.
//!
//! No `syn`/`quote` are available offline either, so parsing walks the raw
//! `proc_macro::TokenStream` directly. That is robust for the shapes this
//! workspace contains (named/tuple/unit structs, enums of unit / tuple /
//! struct variants, doc comments, `pub` visibility) and panics loudly on
//! anything it does not understand rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed view of the deriving item.
struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` — field count.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{}\"), \
                         ::serde::Serialize::to_content(&self.{})),",
                        key_name(f),
                        f
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", pairs.join(""))
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i}),"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(""))
        }
        ItemKind::UnitStruct => "::serde::Content::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| enum_arm(&item.name, v)).collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{}: ::serde::Deserialize::from_content(\
                         __content.field(\"{}\")?)?,",
                        f,
                        key_name(f)
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({} {{ {} }})",
                item.name,
                inits.join("")
            )
        }
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({}(::serde::Deserialize::from_content(__content)?))",
            item.name
        ),
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?,"))
                .collect();
            format!(
                "let __items = __content.items({})?; \
                 ::std::result::Result::Ok({}({}))",
                n,
                item.name,
                inits.join("")
            )
        }
        ItemKind::UnitStruct => format!(
            "__content.expect_null()?; ::std::result::Result::Ok({})",
            item.name
        ),
        ItemKind::Enum(variants) => {
            let has_data = variants
                .iter()
                .any(|v| !matches!(v.fields, VariantFields::Unit));
            let binder = if has_data { "__value" } else { "_" };
            let arms: Vec<String> = variants
                .iter()
                .map(|v| enum_de_arm(&item.name, v))
                .collect();
            format!(
                "let (__tag, {binder}) = __content.variant()?; \
                 match __tag {{ {} __other => ::std::result::Result::Err(\
                     ::serde::DeError::unknown_variant(__other, \"{}\")), }}",
                arms.join(""),
                item.name
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {} {{\n\
             fn from_content(__content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}

/// One `match` arm serializing `variant` with serde's externally-tagged
/// representation.
fn enum_arm(enum_name: &str, v: &Variant) -> String {
    let tag = key_name(&v.name);
    match &v.fields {
        VariantFields::Unit => format!(
            "{}::{} => ::serde::Content::Str(::std::string::String::from(\"{}\")),",
            enum_name, v.name, tag
        ),
        VariantFields::Tuple(1) => format!(
            "{}::{}(__f0) => ::serde::Content::Map(::std::vec![(\
                 ::std::string::String::from(\"{}\"), \
                 ::serde::Serialize::to_content(__f0))]),",
            enum_name, v.name, tag
        ),
        VariantFields::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_content({b}),"))
                .collect();
            format!(
                "{}::{}({}) => ::serde::Content::Map(::std::vec![(\
                     ::std::string::String::from(\"{}\"), \
                     ::serde::Content::Seq(::std::vec![{}]))]),",
                enum_name,
                v.name,
                binders.join(","),
                tag,
                items.join("")
            )
        }
        VariantFields::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{}\"), \
                         ::serde::Serialize::to_content({})),",
                        key_name(f),
                        f
                    )
                })
                .collect();
            format!(
                "{}::{} {{ {} }} => ::serde::Content::Map(::std::vec![(\
                     ::std::string::String::from(\"{}\"), \
                     ::serde::Content::Map(::std::vec![{}]))]),",
                enum_name,
                v.name,
                fields.join(","),
                tag,
                pairs.join("")
            )
        }
    }
}

/// One `match` arm deserializing `variant` from serde's externally-tagged
/// representation. The surrounding codegen has already split the tag and
/// payload into `__tag` / `__value`.
fn enum_de_arm(enum_name: &str, v: &Variant) -> String {
    let tag = key_name(&v.name);
    let take_value =
        format!("let __v = __value.ok_or_else(|| ::serde::DeError::missing_value(\"{tag}\"))?;");
    match &v.fields {
        VariantFields::Unit => format!(
            "\"{}\" => ::std::result::Result::Ok({}::{}),",
            tag, enum_name, v.name
        ),
        VariantFields::Tuple(1) => format!(
            "\"{}\" => {{ {} ::std::result::Result::Ok({}::{}(\
                 ::serde::Deserialize::from_content(__v)?)) }}",
            tag, take_value, enum_name, v.name
        ),
        VariantFields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?,"))
                .collect();
            format!(
                "\"{}\" => {{ {} let __items = __v.items({})?; \
                 ::std::result::Result::Ok({}::{}({})) }}",
                tag,
                take_value,
                n,
                enum_name,
                v.name,
                inits.join("")
            )
        }
        VariantFields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{}: ::serde::Deserialize::from_content(\
                         __inner.field(\"{}\")?)?,",
                        f,
                        key_name(f)
                    )
                })
                .collect();
            format!(
                "\"{}\" => {{ {} let __inner = __v; \
                 ::std::result::Result::Ok({}::{} {{ {} }}) }}",
                tag,
                take_value,
                enum_name,
                v.name,
                inits.join("")
            )
        }
    }
}

/// JSON key for an identifier: raw identifiers drop the `r#` prefix.
fn key_name(ident: &str) -> String {
    ident.strip_prefix("r#").unwrap_or(ident).to_string()
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind_kw = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (type {name})");
        }
    }
    match kind_kw.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                kind: ItemKind::TupleStruct(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                kind: ItemKind::UnitStruct,
            },
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: ItemKind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive stub: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

/// Field names of a `{ ... }` struct body, skipping attributes, visibility
/// and the type tokens after each `:`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes / visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("serde_derive stub: expected field name, got {tok:?}");
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected `:` after field, got {other:?}"),
        }
        skip_type_until_comma(&mut tokens);
    }
    fields
}

/// Consume type tokens until a top-level `,` (angle-bracket aware) or the
/// end of the stream. The `,` itself is consumed.
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth: i32 = 0;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Number of fields in a tuple-struct `( ... )` body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut tokens = body.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        count += 1;
        skip_type_until_comma(&mut tokens);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments) before the variant.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(vname) = tok else {
            panic!("serde_derive stub: expected variant name, got {tok:?}");
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                tokens.next();
                VariantFields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                tokens.next();
                VariantFields::Tuple(count_tuple_fields(g))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_type_until_comma(&mut tokens);
        variants.push(Variant {
            name: vname.to_string(),
            fields,
        });
    }
    variants
}
