//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! slice of serde the workspace consumes: a `Serialize` trait driving the
//! sibling `serde_json` stub, a `Deserialize` marker so existing
//! `#[derive(Deserialize)]` attributes keep compiling, and re-exported
//! derive macros behind the usual `derive` feature.
//!
//! Instead of serde's visitor-based serializer traits, `Serialize` lowers a
//! value into a [`Content`] tree — the same "self-describing value"
//! shortcut serde itself uses internally for untagged enums. `serde_json`
//! then renders the tree. The externally-tagged enum representation and
//! field ordering match upstream serde, so JSON produced here is identical
//! to what the real crates would emit for this workspace's types.

/// A self-describing serialized value (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (struct fields stay in declaration order).
    Map(Vec<(String, Content)>),
}

/// A value that can lower itself into a [`Content`] tree.
pub trait Serialize {
    /// Build the serialized form of `self`.
    fn to_content(&self) -> Content;
}

/// Marker trait so `#[derive(Deserialize)]` keeps compiling; the workspace
/// never deserializes at runtime.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
