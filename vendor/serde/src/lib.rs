//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! slice of serde the workspace consumes: a `Serialize` trait driving the
//! sibling `serde_json` stub, a `Deserialize` trait rebuilding values from
//! the same tree, and re-exported derive macros behind the usual `derive`
//! feature.
//!
//! Instead of serde's visitor-based serializer traits, `Serialize` lowers a
//! value into a [`Content`] tree — the same "self-describing value"
//! shortcut serde itself uses internally for untagged enums. `serde_json`
//! then renders the tree. Deserialization runs the same road in reverse:
//! [`Deserialize::from_content`] rebuilds a typed value from a [`Content`]
//! tree (produced by `serde_json::from_str_typed`). The externally-tagged
//! enum representation and field ordering match upstream serde, so JSON
//! produced here is identical to what the real crates would emit for this
//! workspace's types, and every value this stub serializes deserializes
//! back to an equal value.

/// A self-describing serialized value (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (struct fields stay in declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Short tag for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    /// Map lookup by key (first match, like upstream struct access).
    ///
    /// # Errors
    ///
    /// [`DeError`] when `self` is not a map or the key is absent.
    pub fn field(&self, key: &str) -> Result<&Content, DeError> {
        match self {
            Content::Map(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{key}`"))),
            other => Err(DeError::expected("a map", other)),
        }
    }

    /// Sequence items, requiring an exact length (tuples, tuple structs).
    ///
    /// # Errors
    ///
    /// [`DeError`] when `self` is not a sequence of exactly `expect` items.
    pub fn items(&self, expect: usize) -> Result<&[Content], DeError> {
        let items = self.seq()?;
        if items.len() == expect {
            Ok(items)
        } else {
            Err(DeError::new(format!(
                "expected a sequence of {expect} items, got {}",
                items.len()
            )))
        }
    }

    /// Sequence items of any length (`Vec`).
    ///
    /// # Errors
    ///
    /// [`DeError`] when `self` is not a sequence.
    pub fn seq(&self) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(items) => Ok(items),
            other => Err(DeError::expected("a sequence", other)),
        }
    }

    /// Splits an externally-tagged enum value into its variant tag and
    /// optional payload: `"Tag"` → `("Tag", None)`, `{"Tag": inner}` →
    /// `("Tag", Some(inner))`.
    ///
    /// # Errors
    ///
    /// [`DeError`] when `self` is neither a string nor a one-entry map.
    pub fn variant(&self) -> Result<(&str, Option<&Content>), DeError> {
        match self {
            Content::Str(tag) => Ok((tag, None)),
            Content::Map(pairs) if pairs.len() == 1 => Ok((&pairs[0].0, Some(&pairs[0].1))),
            other => Err(DeError::expected("an externally-tagged enum", other)),
        }
    }

    /// Requires `self` to be `null` (unit structs).
    ///
    /// # Errors
    ///
    /// [`DeError`] when `self` is any other variant.
    pub fn expect_null(&self) -> Result<(), DeError> {
        match self {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

/// Deserialization error: a human-readable message, mirroring upstream
/// serde's `de::Error` in spirit (this stub never needs structured codes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// "expected X, got `<kind>`" — the usual type-mismatch shape.
    pub fn expected(what: &str, got: &Content) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    /// An enum tag that names no variant of `ty`.
    pub fn unknown_variant(tag: &str, ty: &str) -> DeError {
        DeError(format!("unknown variant `{tag}` for {ty}"))
    }

    /// A data-carrying enum variant arrived without a payload.
    pub fn missing_value(variant: &str) -> DeError {
        DeError(format!("variant `{variant}` is missing its value"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can lower itself into a [`Content`] tree.
pub trait Serialize {
    /// Build the serialized form of `self`.
    fn to_content(&self) -> Content;
}

/// A value that can rebuild itself from a [`Content`] tree.
///
/// The lifetime parameter mirrors upstream serde so existing
/// `#[derive(Deserialize)]` attributes and bounds keep compiling; this
/// stub always deserializes from an owned tree (see [`DeserializeOwned`]).
pub trait Deserialize<'de>: Sized {
    /// Rebuild a value from its serialized form.
    ///
    /// # Errors
    ///
    /// [`DeError`] when the tree does not describe a `Self`.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// A type deserializable from an owned tree — the bound generic callers
/// want (`serde_json::from_str_typed`), matching upstream's alias.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide = match *content {
                    Content::U64(u) => u,
                    Content::I64(i) if i >= 0 => i as u64,
                    ref other => return Err(DeError::expected(stringify!($ty), other)),
                };
                <$ty>::try_from(wide).map_err(|_| DeError::expected(stringify!($ty), content))
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide = match *content {
                    Content::I64(i) => i,
                    Content::U64(u) => {
                        i64::try_from(u).map_err(|_| DeError::expected(stringify!($ty), content))?
                    }
                    ref other => return Err(DeError::expected(stringify!($ty), other)),
                };
                <$ty>::try_from(wide).map_err(|_| DeError::expected(stringify!($ty), content))
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        // Integer content is accepted so hand-written JSON like `"x": 3`
        // fills float fields, matching upstream. Values this stub
        // serialized always come back as `F64` (the renderer forces a
        // trailing `.0` on integral floats), so round-trips stay exact,
        // including the sign of -0.0.
        match *content {
            Content::F64(x) => Ok(x),
            Content::I64(i) => Ok(i as f64),
            Content::U64(u) => Ok(u as f64),
            ref other => Err(DeError::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(DeError::new("expected a one-character string")),
                }
            }
            other => Err(DeError::expected("char", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.seq()?.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = content.items(N)?;
        let vec: Vec<T> = items
            .iter()
            .map(T::from_content)
            .collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| DeError::new(format!("expected a sequence of {N} items")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = content.items(LEN)?;
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + DeserializeOwned,
    {
        T::from_content(&value.to_content()).expect("round-trips")
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip(&42u8), 42);
        assert_eq!(round_trip(&usize::MAX), usize::MAX);
        assert_eq!(round_trip(&-7i32), -7);
        assert_eq!(round_trip(&2.5f64), 2.5);
        assert_eq!(round_trip(&(-0.0f64)).to_bits(), (-0.0f64).to_bits());
        assert!(round_trip(&true));
        assert_eq!(round_trip(&'é'), 'é');
        assert_eq!(round_trip(&String::from("glass")), "glass");
    }

    #[test]
    fn integers_cross_signedness_when_in_range() {
        assert_eq!(u32::from_content(&Content::I64(7)).unwrap(), 7);
        assert_eq!(i64::from_content(&Content::U64(7)).unwrap(), 7);
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
        assert!(i8::from_content(&Content::U64(u64::MAX)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        assert_eq!(round_trip(&vec![1u64, 2, 3]), vec![1, 2, 3]);
        assert_eq!(round_trip(&Some(1.5f64)), Some(1.5));
        assert_eq!(round_trip(&Option::<f64>::None), None);
        assert_eq!(round_trip(&(1u64, -2i64, 3.5f64)), (1, -2, 3.5));
        assert_eq!(round_trip(&[1u64, 2]), [1, 2]);
        assert_eq!(round_trip(&Box::new(9usize)), Box::new(9));
        assert_eq!(
            round_trip(&vec![(1usize, 2.5f64), (3, 4.5)]),
            vec![(1, 2.5), (3, 4.5)]
        );
    }

    #[test]
    fn mismatches_report_useful_errors() {
        let err = f64::from_content(&Content::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("expected f64"));
        let err = Content::Map(vec![]).field("pitch").unwrap_err();
        assert!(err.to_string().contains("missing field `pitch`"));
        assert!(Content::Seq(vec![]).items(2).is_err());
        assert!(Content::Null.variant().is_err());
    }
}
