//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `sample_size` / `measurement_time` / `warm_up_time`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros
//! — with a simple mean-of-samples wall-clock measurement. The long
//! statistical machinery of real criterion is intentionally absent; the
//! point is that `cargo bench` compiles, runs, and prints comparable
//! numbers.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub runs a fixed sample count
    /// rather than a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub warms up with one
    /// untimed iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Finish the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to time its hot loop.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    timed: bool,
}

impl Bencher {
    /// Measure one execution of `f` per call (the sample loop lives in
    /// the runner).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed = start.elapsed();
        self.timed = true;
        drop(out);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // One untimed warm-up.
    let mut warm = Bencher::default();
    f(&mut warm);
    if !warm.timed {
        println!("{id:<40} (no iter() call)");
        return;
    }
    // Keep stub benches quick: a handful of timed samples.
    let samples = samples.clamp(1, 10);
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean = total / samples as u32;
    println!(
        "{id:<40} mean {:>12.3?}  best {:>12.3?}  ({samples} samples)",
        mean, best
    );
}

/// Group benchmark functions under a single callable, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the workspace already uses).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(demo, sample_bench);

    #[test]
    fn group_runs() {
        demo();
    }
}
