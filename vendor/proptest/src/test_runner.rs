//! Runner configuration and failure plumbing (subset of
//! `proptest::test_runner`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Why a single case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Mirrors proptest's "reject" (treated as failure here, since the
    /// workspace never filters inputs).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case RNG: seeded from the property name and the case
/// index, so every run of the suite sees the same inputs.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}
