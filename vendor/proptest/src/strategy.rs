//! Value-generation strategies (subset of `proptest::strategy`).

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A way to produce random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, i64, f64);

/// `proptest::strategy::Just` — always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
