//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range strategies
//! (`8usize..600`, `0.2f64..1.0`, ...), and [`prop_assert!`] /
//! [`prop_assert_eq!`]. Cases are generated from a fixed per-case seed, so
//! runs are fully deterministic (no shrinking; the failing case's inputs
//! are printed instead).

pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0usize..10, y in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(err) = outcome {
                    panic!(
                        "proptest case {case} failed: {err}\n  inputs: {}",
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),+].join(", "),
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Assert inside a proptest body; failure aborts only the current case
/// with a useful message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_inside(a in 8usize..600, b in 0.25f64..1.0) {
            prop_assert!((8..600).contains(&a));
            prop_assert!((0.25..1.0).contains(&b));
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut rng1 = crate::test_runner::case_rng("t", 3);
        let mut rng2 = crate::test_runner::case_rng("t", 3);
        let s = 0usize..100;
        assert_eq!(
            Strategy::sample(&s, &mut rng1),
            Strategy::sample(&s, &mut rng2)
        );
    }
}
