//! Offline stand-in for `serde_json`.
//!
//! Renders the [`serde::Content`] tree produced by the sibling `serde`
//! stub. Supports the API surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_value`], [`Value`] with `&str`/`usize`
//! indexing, the `as_*` accessors, comparisons against literals, and
//! typed parsing via [`from_str_typed`].
//!
//! Formatting follows upstream serde_json: compact output has no spaces,
//! pretty output indents by two spaces, strings carry the standard JSON
//! escapes, floats render via Rust's shortest round-trip formatting with a
//! trailing `.0` forced on integral values, and non-finite floats become
//! `null`.

use serde::{Content, Serialize};
use std::fmt;

/// A parsed/serialized JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (integer or float).
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered (struct fields keep declaration order).
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving whether it was signed/unsigned/float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
}

/// Serialization error. The stub never fails, but the signature mirrors
/// upstream so `?` keeps working at call sites.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// `Result` alias matching upstream serde_json.
pub type Result<T> = std::result::Result<T, Error>;

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an `f64` when it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(i)) => Some(*i as f64),
            Value::Number(Number::U64(u)) => Some(*u as f64),
            Value::Number(Number::F64(x)) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64` when it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(u)) => Some(*u),
            Value::Number(Number::I64(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `i64` when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(i)) => Some(*i),
            Value::Number(Number::U64(u)) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self);
        f.write_str(&out)
    }
}

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::I64(i) => Value::Number(Number::I64(*i)),
        Content::U64(u) => Value::Number(Number::U64(*u)),
        Content::F64(x) => Value::Number(Number::F64(*x)),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(pairs) => Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

/// Convert any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors upstream.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(content_to_value(&value.to_content()))
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(pairs) => Content::Map(
                pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Number(Number::I64(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::U64(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::U64(v as u64))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

/// Serialize to a compact JSON string.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content());
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent).
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content_pretty(&mut out, &value.to_content(), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(x) => write_f64(out, *x),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, item);
            }
            out.push('}');
        }
    }
}

fn write_content_pretty(out: &mut String, c: &Content, indent: usize) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_content_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Content::Map(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_content_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_content(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::F64(x) => write_f64(out, x),
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Parses a JSON document into a [`Value`] tree.
///
/// Callers either walk the returned [`Value`] with `get`/`as_*`, or use
/// [`from_str_typed`] to rebuild a concrete type. Numbers parse to
/// `I64`/`U64` when integral and `F64` otherwise; duplicate object keys
/// keep both entries (lookup returns the first, matching [`Value::get`]).
///
/// # Errors
///
/// Returns [`Error`] with a byte offset for malformed input, trailing
/// garbage, or nesting deeper than 128 levels.
pub fn from_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Parses a JSON document straight into a typed value.
///
/// Upstream's `from_str<T: Deserialize>` with a different name: keeping
/// [`from_str`] monomorphic preserves inference at the existing
/// `Value`-walking call sites. The parse goes text → [`Value`] →
/// [`serde::Content`] → `T`; any value [`to_string`] rendered round-trips
/// to an equal value (non-finite floats excepted — they serialize as
/// `null` and fail the typed rebuild).
///
/// # Errors
///
/// [`Error`] for malformed JSON or a document that does not describe a
/// `T`.
pub fn from_str_typed<T: serde::DeserializeOwned>(s: &str) -> Result<T> {
    let value = from_str(s)?;
    T::from_content(&value.to_content()).map_err(|e| Error(e.to_string()))
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    let len = self.bytes[start..]
                        .iter()
                        .skip(1)
                        .take_while(|&&b| (b & 0xC0) == 0x80)
                        .count()
                        + 1;
                    self.pos += len;
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(chunk);
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let cp = u32::from_str_radix(chunk, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::F64(x)))
            .map_err(|_| self.err("invalid number"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_like_serde_json() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(to_string(&Option::<f64>::None).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn collections_render_compact_and_pretty() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.5)];
        assert_eq!(to_string(&v).unwrap(), "[[1.0,2.0],[3.0,4.5]]");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.starts_with("[\n  [\n    1.0"));
    }

    #[test]
    fn parse_round_trips_serialized_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("glass \"A\"\n".into())),
            ("pitch".into(), Value::Number(Number::F64(17.5))),
            ("layers".into(), Value::Number(Number::U64(7))),
            ("delta".into(), Value::Number(Number::I64(-3))),
            ("on".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "seq".into(),
                Value::Array(vec![Value::Number(Number::U64(1)), Value::Null]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = from_str(r#""a\u00e9b\ud83d\ude00c\t""#).unwrap();
        assert_eq!(v, "aéb😀c\t");
        assert_eq!(from_str("\"héllo\"").unwrap(), "héllo");
    }

    #[test]
    fn parse_numbers_pick_natural_variants() {
        assert_eq!(from_str("7").unwrap(), Value::Number(Number::U64(7)));
        assert_eq!(from_str("-7").unwrap(), Value::Number(Number::I64(-7)));
        assert_eq!(from_str("1.5").unwrap(), Value::Number(Number::F64(1.5)));
        assert_eq!(from_str("1e3").unwrap(), Value::Number(Number::F64(1000.0)));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::Number(Number::U64(u64::MAX))
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
            "{\"a\":}",
            "nul",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err(), "accepted 200-deep nesting");
    }

    #[test]
    fn parse_tolerates_whitespace_and_empty_containers() {
        let v = from_str(" \n\t{ \"a\" : [ ] , \"b\" : { } } ").unwrap();
        assert_eq!(v["a"], Value::Array(vec![]));
        assert_eq!(v["b"], Value::Object(vec![]));
    }

    #[test]
    fn typed_parse_round_trips_serialized_values() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let text = to_string(&v).unwrap();
        let back: Vec<(usize, f64)> = from_str_typed(&text).unwrap();
        assert_eq!(back, v);

        let opt: Option<Vec<u64>> = from_str_typed("null").unwrap();
        assert_eq!(opt, None);
        let err = from_str_typed::<Vec<u64>>("[1,\"x\"]").unwrap_err();
        assert!(err.to_string().contains("expected u64"));
    }

    #[test]
    fn typed_floats_round_trip_exactly() {
        // Integral floats keep their forced ".0" and stay floats on the
        // way back; -0.0 keeps its sign bit; shortest round-trip Display
        // means every finite f64 survives text and back bit-for-bit.
        for x in [1.0f64, -0.0, 0.1, 2.5e-300, 1e300, f64::MIN_POSITIVE] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str_typed(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
        // Non-finite floats render as null and refuse the typed rebuild.
        assert!(from_str_typed::<f64>(&to_string(&f64::NAN).unwrap()).is_err());
    }

    #[test]
    fn value_indexing_and_eq() {
        let c = Content::Map(vec![
            ("tech".into(), Content::Str("Shinko".into())),
            ("x".into(), Content::F64(2.5)),
        ]);
        let v = content_to_value(&c);
        assert_eq!(v["tech"], "Shinko");
        assert_eq!(v["x"].as_f64(), Some(2.5));
        assert!(v["missing"].is_null());
    }
}
