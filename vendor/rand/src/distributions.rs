//! Distributions and uniform range sampling, matching rand 0.8's
//! algorithms exactly for the types the workspace draws.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// The "natural" distribution for a type (subset of `rand::distributions::Standard`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8: sign-bit test on a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // rand 0.8 `Standard` for f64: 53 random mantissa bits in [0, 1).
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * SCALE
    }
}

/// Types `gen_range` can produce. The sampling logic lives in the
/// per-type impls below so each matches rand 0.8 bit-for-bit.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range types accepted by `gen_range` (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_range_inclusive(rng, low, high)
    }
}

/// rand 0.8's widening-multiply rejection sampler over a 64-bit lane:
/// uniform in `[0, range)`; `range == 0` means the full 2^64 span.
#[inline]
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    if range == 0 {
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(range);
        let lo = m as u64;
        if lo <= zone {
            return (m >> 64) as u64;
        }
    }
}

/// Same sampler over a 32-bit lane — rand 0.8 draws one `u32` for
/// integer types of 32 bits or fewer.
#[inline]
fn sample_u32_below<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    if range == 0 {
        return rng.next_u32();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let m = u64::from(v) * u64::from(range);
        let lo = m as u32;
        if lo <= zone {
            return (m >> 32) as u32;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($lane:ident, $sampler:ident; $($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                let range = (high as $lane).wrapping_sub(low as $lane);
                low.wrapping_add($sampler(rng, range) as $ty)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $ty,
                high: $ty,
            ) -> $ty {
                let range = (high as $lane).wrapping_sub(low as $lane).wrapping_add(1);
                low.wrapping_add($sampler(rng, range) as $ty)
            }
        }
    )*};
}

impl_sample_uniform_int!(u64, sample_u64_below; usize, u64, i64);
impl_sample_uniform_int!(u32, sample_u32_below; u32, i32, u16, i16, u8, i8);

macro_rules! impl_sample_uniform_float {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_bits:expr, $exp_bias:expr) => {
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $ty, high: $ty) -> $ty {
                // rand 0.8 UniformFloat::sample_single.
                let mut scale = high - low;
                loop {
                    let mantissa = <$uty>::from_bits_sample(rng) >> $bits_to_discard;
                    let value1_2 =
                        <$ty>::from_bits((($exp_bias as $uty) << ($exp_bits)) | mantissa);
                    let res = (value1_2 - 1.0) * scale + low;
                    if res < high {
                        return res;
                    }
                    // FP edge case: shrink scale to the next representable
                    // value and retry (matches upstream's behaviour of
                    // tightening until the result lands inside the range).
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $ty,
                high: $ty,
            ) -> $ty {
                // rand 0.8 UniformFloat::sample_single_inclusive.
                let max_rand = <$ty>::from_bits(
                    (($exp_bias as $uty) << ($exp_bits)) | (<$uty>::MAX >> $bits_to_discard),
                ) - 1.0;
                let mut scale = (high - low) / max_rand;
                loop {
                    let mantissa = <$uty>::from_bits_sample(rng) >> $bits_to_discard;
                    let value1_2 =
                        <$ty>::from_bits((($exp_bias as $uty) << ($exp_bits)) | mantissa);
                    let res = (value1_2 - 1.0) * scale + low;
                    if res <= high {
                        return res;
                    }
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    };
}

/// Helper to draw the raw bits backing a float lane.
trait FromBitsSample {
    fn from_bits_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromBitsSample for u64 {
    fn from_bits_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromBitsSample for u32 {
    fn from_bits_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl_sample_uniform_float!(f64, u64, 12, 52, 1023u64);
impl_sample_uniform_float!(f32, u32, 9, 23, 127u32);

#[cfg(test)]
mod tests {

    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_sampling_is_unbiased_over_small_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "biased counts: {counts:?}");
        }
    }

    #[test]
    fn inclusive_int_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..500 {
            match rng.gen_range(3usize..=5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn float_ranges_cover_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for _ in 0..2000 {
            let v = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < -0.9 && max > 0.9);
    }
}
