//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no registry access, and the workspace's
//! partitioner (`netlist::fm`) and placer (`chiplet::placement`) are
//! calibrated against fixed seeds, so this stub is **bit-faithful** to
//! rand 0.8 for the paths the workspace uses:
//!
//! * `StdRng` is the ChaCha12 generator (one 64-byte block at a time —
//!   identical word stream to rand_chacha's four-block buffering because
//!   every workspace consumer draws whole `u64`s, so reads never straddle
//!   a block boundary at a different offset);
//! * `SeedableRng::seed_from_u64` uses rand_core's PCG32 key expansion
//!   (multiplier `6364136223846793005`, increment `11634580027462260723`);
//! * integer `gen_range` uses the widening-multiply rejection method with
//!   zone `(range << range.leading_zeros()).wrapping_sub(1)`;
//! * float `gen_range` and `gen::<f64>()` use the 53-bit mantissa
//!   construction.
//!
//! Only the types/ranges the workspace draws are implemented (`usize`,
//! `u64`, `i64`, `f64`); unsupported types fail to compile rather than
//! silently diverge from upstream sequences.

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, SampleRange, SampleUniform, Standard};

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes (little-endian word order).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with PCG32 exactly as
    /// rand_core 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let len = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..len]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}
