//! The standard generator: ChaCha12, matching rand 0.8's `StdRng`.

use crate::{RngCore, SeedableRng};

/// rand 0.8's `StdRng` (ChaCha with 12 rounds).
///
/// Generates one 16-word block at a time. rand_chacha buffers four blocks,
/// but the emitted word sequence is identical because consecutive blocks
/// use consecutive counters and words are consumed in order.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha input state; words 12/13 hold the 64-bit block counter.
    state: [u32; 16],
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16: block counter and stream id, all zero initially.
        StdRng {
            state,
            buf: [0u32; 16],
            idx: 16,
        }
    }
}

#[inline(always)]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// One ChaCha block: `double_rounds` column+diagonal round pairs, then the
/// feed-forward addition of the input state.
fn chacha_block(state: &[u32; 16], double_rounds: usize) -> [u32; 16] {
    let mut working = *state;
    for _ in 0..double_rounds {
        // Column round.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (out, base) in working.iter_mut().zip(state.iter()) {
        *out = out.wrapping_add(*base);
    }
    working
}

impl StdRng {
    fn refill(&mut self) {
        self.buf = chacha_block(&self.state, 6);
        self.idx = 0;
        // 64-bit block counter in words 12/13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    /// RFC 8439 §2.1.1 quarter-round test vector.
    #[test]
    fn quarter_round_rfc8439() {
        let mut x = [0u32; 16];
        x[0] = 0x1111_1111;
        x[1] = 0x0102_0304;
        x[2] = 0x9b8d_6f43;
        x[3] = 0x0123_4567;
        // Apply QR to indices (0, 1, 2, 3).
        quarter_round(&mut x, 0, 1, 2, 3);
        assert_eq!(x[0], 0xea2a_92f4);
        assert_eq!(x[1], 0xcb1c_f8ce);
        assert_eq!(x[2], 0x4581_472e);
        assert_eq!(x[3], 0x5881_c4bb);
    }

    /// RFC 8439 §2.3.2 ChaCha20 block-function test vector. ChaCha12 is
    /// the same block function with 6 double rounds instead of 10, so this
    /// validates the whole core (layout, rounds, feed-forward).
    #[test]
    fn chacha20_block_rfc8439() {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        // Key 00 01 02 ... 1f.
        let key: Vec<u8> = (0u8..32).collect();
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter = 1, nonce = 00:00:00:09 00:00:00:4a 00:00:00:00 (IETF
        // layout: 32-bit counter in word 12, nonce in words 13..16).
        state[12] = 1;
        state[13] = 0x0900_0000;
        state[14] = 0x4a00_0000;
        state[15] = 0x0000_0000;
        let out = chacha_block(&state, 10);
        // First 128 bits of the RFC's expected block output — plenty to
        // catch any error in layout, rounds, or feed-forward.
        let expected: [u32; 4] = [0xe4e7_f110, 0x1559_3bd1, 0x1fdd_0f50, 0xc471_20a3];
        assert_eq!(&out[..4], &expected);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = StdRng::from_seed([3u8; 32]);
        let first: Vec<u32> = (0..32).map(|_| rng.next_u32()).collect();
        // Two distinct 16-word blocks.
        assert_ne!(&first[..16], &first[16..]);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&f));
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
