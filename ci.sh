#!/usr/bin/env bash
# Local CI gate: build, test, format, lint. Run from the repo root.
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Library crates must stay panic-free on data-dependent paths: no
# unwrap/expect outside #[cfg(test)] (each crate carries a test-scoped
# allow). Errors flow through the typed FlowError vocabulary instead.
# --no-deps keeps the gate off the vendored path dependencies.
echo "==> cargo clippy (panic-free library gate)"
cargo clippy --no-deps -p circuit -p interposer -p thermal -p netlist -p chiplet -p pi -p si -- \
    -D clippy::unwrap_used -D clippy::expect_used

# End-to-end CLI smoke: a two-scenario sweep with JSON output and a
# Chrome trace. Both stdout and the trace file must parse as JSON —
# this exercises the whole observability path (spans, counters, trace
# serialization) plus the sweep's machine-readable output.
echo "==> codesign sweep smoke (--json --trace)"
rm -f /tmp/codesign_smoke_sweep.json /tmp/codesign_smoke_trace.json
cargo run --release -q -p codesign --bin codesign -- \
    sweep examples/smoke_scenarios.json --json \
    --trace /tmp/codesign_smoke_trace.json > /tmp/codesign_smoke_sweep.json
jq -e 'type == "array" and length == 2' /tmp/codesign_smoke_sweep.json > /dev/null
jq -e '.traceEvents | length > 0' /tmp/codesign_smoke_trace.json > /dev/null
echo "    sweep output and trace both parse as JSON"

# Warm-cache smoke: the same sweep through a disk-backed artifact store
# must stay byte-identical to the uncached reference, both on the cold
# run that populates the cache and on a second process that replays it.
# The warm run's --stats counters prove the disk tier actually served
# (store.disk_hit > 0, store.miss == 0) and that the shared physical
# stages never recomputed (the router counters stay at zero).
echo "==> warm-cache sweep smoke (--cache-dir byte-identity + disk hits)"
CACHE_DIR=$(mktemp -d /tmp/codesign_smoke_cache.XXXXXX)
rm -f /tmp/codesign_cache_cold.json /tmp/codesign_cache_warm.json
cargo run --release -q -p codesign --bin codesign -- \
    sweep examples/smoke_scenarios.json --json --cache-dir "$CACHE_DIR" \
    > /tmp/codesign_cache_cold.json
cmp /tmp/codesign_cache_cold.json /tmp/codesign_smoke_sweep.json
cargo run --release -q -p codesign --bin codesign -- \
    sweep examples/smoke_scenarios.json --json --stats --cache-dir "$CACHE_DIR" \
    > /tmp/codesign_cache_warm.json 2> /tmp/codesign_cache_stats.txt
cmp /tmp/codesign_cache_warm.json /tmp/codesign_smoke_sweep.json
counter() { awk -v name="$1" '$1 == name { print $2 }' /tmp/codesign_cache_stats.txt; }
test "$(counter store.disk_hit)" -gt 0
test "$(counter store.miss)" -eq 0
test "$(counter router.nets_routed)" -eq 0
rm -rf "$CACHE_DIR"
echo "    warm cache: byte-identical, served from disk, zero recomputes"

# Router bench smoke: flow_timing on a single technology must prove the
# parallel router byte-identical to sequential at every sweep width and
# report non-zero hot-path work counters in its "router" section (the
# bucket-queue frontier must account for every pop). Writes to /tmp so
# the published BENCH_flow.json (full six-technology run) stays
# untouched.
echo "==> router bench smoke (flow_timing, one tech)"
rm -f /tmp/codesign_router_smoke.json
FLOW_TIMING_TECHS="silicon 2.5d" \
    FLOW_TIMING_OUT=/tmp/codesign_router_smoke.json \
    cargo run --release -q -p bench --bin flow_timing
jq -e '.outputs_byte_identical == true' /tmp/codesign_router_smoke.json > /dev/null
jq -e '.router.nets_routed > 0 and .router.heap_pops > 0 and .router.expansions > 0' \
    /tmp/codesign_router_smoke.json > /dev/null
jq -e '.router.bucket_pops == .router.heap_pops' /tmp/codesign_router_smoke.json > /dev/null
echo "    router smoke: byte-identical outputs, hot-path counters recorded"

# Router perf gate. Live half: the single-technology smoke above must
# route its 530 nets well under a generous wall-clock ceiling at one
# worker (~200 ms on the reference box; 2 s allows a badly loaded CI
# host but still catches an algorithmic regression), and intra-tech
# speculative batching must actually fire at every sweep width >= 2.
# Published half: BENCH_flow.json must carry the pinned deterministic
# studies hash and a single-worker route.nets total under 2x the PR-10
# target (9000 ms), so a regressing PR cannot simply regenerate the
# numbers and slip past.
echo "==> router perf gate (smoke wall clock + batching, published BENCH_flow.json)"
jq -e '.router.route_nets_total_ms < 2000' /tmp/codesign_router_smoke.json > /dev/null
jq -e '[.parallel_sweep[] | select(.workers >= 2)]
       | length > 0 and all(.router.batch_rounds > 0)' \
    /tmp/codesign_router_smoke.json > /dev/null
jq -e '.studies_hash_fnv1a == "c134daec37b29ea7"' BENCH_flow.json > /dev/null
jq -e '.router.route_nets_total_ms < 9000' BENCH_flow.json > /dev/null
jq -e '[.parallel_sweep[] | select(.workers >= 2)]
       | length > 0 and all(.router.batch_rounds > 0)' \
    BENCH_flow.json > /dev/null
echo "    router perf gate: smoke under ceiling, batching fires, published hash pinned"

# Serve smoke: start the daemon on an ephemeral port, POST the same
# two-scenario file, and require the response bytes to equal the CLI's
# sweep --json stdout exactly (the service contract). Also checks the
# /stats counters moved and that /shutdown drains to a clean exit 0.
echo "==> codesign serve smoke (byte-identity, /stats, drain)"
rm -f /tmp/codesign_serve_log.txt /tmp/codesign_serve_body.json
cargo run --release -q -p codesign --bin codesign -- serve 127.0.0.1:0 \
    > /tmp/codesign_serve_log.txt &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" /tmp/codesign_serve_log.txt 2>/dev/null && break
    sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^codesign serve listening on //p' /tmp/codesign_serve_log.txt)
test -n "$SERVE_ADDR"
curl -sS -X POST --data-binary @examples/smoke_scenarios.json \
    "http://$SERVE_ADDR/sweep" > /tmp/codesign_serve_body.json
cmp /tmp/codesign_serve_body.json /tmp/codesign_smoke_sweep.json
jq -e '.requests >= 1 and .completed >= 1 and .context_misses >= 1' \
    <(curl -sS "http://$SERVE_ADDR/stats") > /dev/null
curl -sS -X POST "http://$SERVE_ADDR/shutdown" > /dev/null
wait "$SERVE_PID"
echo "    serve smoke: response byte-identical to sweep --json, clean drain"

# Hardening smoke: a daemon with tight read budgets survives a
# slowloris client, an oversized body declaration, and raw binary
# garbage fired concurrently with a clean sweep. The clean response
# must stay byte-identical to sweep --json, the abuse must land in the
# /stats hardening counters, and /shutdown must still drain cleanly.
echo "==> codesign serve hardening smoke (adversarial clients, byte-identity, drain)"
rm -f /tmp/codesign_hard_log.txt /tmp/codesign_hard_body.json
cargo run --release -q -p codesign --bin codesign -- serve 127.0.0.1:0 \
    --header-read-ms 1000 --body-read-ms 1500 --write-ms 2000 --max-connections 8 \
    > /tmp/codesign_hard_log.txt &
HARD_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" /tmp/codesign_hard_log.txt 2>/dev/null && break
    sleep 0.1
done
HARD_ADDR=$(sed -n 's/^codesign serve listening on //p' /tmp/codesign_hard_log.txt)
test -n "$HARD_ADDR"
HARD_HOST=${HARD_ADDR%:*}
HARD_PORT=${HARD_ADDR##*:}
# Slowloris: open a connection and drip header bytes one at a time,
# far slower than the 1 s whole-header budget allows.
(
    exec 3<> "/dev/tcp/$HARD_HOST/$HARD_PORT" || exit 0
    printf 'POST /sweep HTTP/1.1\r\n' >&3 2>/dev/null
    for _ in $(seq 1 20); do
        sleep 0.2
        printf 'a' >&3 2>/dev/null || break
    done
    exec 3>&- 2>/dev/null
) &
SLOW_PID=$!
# Raw binary garbage on a second connection.
(
    exec 3<> "/dev/tcp/$HARD_HOST/$HARD_PORT" || exit 0
    head -c 512 /dev/urandom | tr -d '\r\n' >&3 2>/dev/null
    printf '\r\n\r\n' >&3 2>/dev/null
    cat <&3 > /dev/null 2>&1
    exec 3>&- 2>/dev/null
) &
GARBAGE_PID=$!
# Oversized body declaration: must draw 413 without reading a body.
exec 4<> "/dev/tcp/$HARD_HOST/$HARD_PORT"
printf 'POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 999999999\r\n\r\n' >&4
head -n 1 <&4 | grep -q '413'
exec 4>&-
# Known path, wrong method: 405 with an Allow header.
exec 4<> "/dev/tcp/$HARD_HOST/$HARD_PORT"
printf 'GET /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n' >&4
head -c 512 <&4 | grep -q '405 Method Not Allowed'
exec 4>&-
# The clean sweep, concurrent with all of the above.
curl -sS -X POST --data-binary @examples/smoke_scenarios.json \
    "http://$HARD_ADDR/sweep" > /tmp/codesign_hard_body.json
cmp /tmp/codesign_hard_body.json /tmp/codesign_smoke_sweep.json
wait "$SLOW_PID" "$GARBAGE_PID" 2>/dev/null || true
# Connection-capacity burst: fill all 8 handler slots with idle
# connections, then one more must draw the rejection thread's 503 —
# making the conn_rejected assertion below meaningful. Retried a few
# times because a loaded machine could let the 1 s header budget expire
# mid-burst and free a slot for the probe.
REJECTED=0
for _ in 1 2 3; do
    for FD in $(seq 5 12); do
        eval "exec $FD<> /dev/tcp/$HARD_HOST/$HARD_PORT"
    done
    exec 13<> "/dev/tcp/$HARD_HOST/$HARD_PORT"
    if head -n 1 <&13 | grep -q '503'; then
        REJECTED=1
    fi
    exec 13>&-
    for FD in $(seq 5 12); do
        eval "exec $FD>&-"
    done
    if [ "$REJECTED" -eq 1 ]; then
        break
    fi
done
test "$REJECTED" -eq 1
jq -e '.slow_client_aborts >= 1 and .conn_rejected >= 1' \
    <(curl -sS "http://$HARD_ADDR/stats") > /dev/null
curl -sS -X POST "http://$HARD_ADDR/shutdown" > /dev/null
wait "$HARD_PID"
echo "    hardening smoke: clean sweep byte-identical under abuse, clean drain"

# Rustdoc must build warning-free for the workspace crates (broken
# intra-doc links, bad code fences). --no-deps keeps the gate off the
# vendored path dependencies' docs.
echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "CI OK"
