//! Coarse gcell routing grid.
//!
//! The interposer is divided into square gcells (default 20 µm). Each
//! signal layer contributes per-gcell routing capacity derived from the
//! technology's track pitch; layers alternate preferred direction, and
//! organic technologies additionally allow 45° moves (Section VI-B).

use serde::Serialize;
use techlib::spec::{InterposerSpec, RoutingStyle};

/// Default gcell edge length, µm.
pub const GCELL_UM: f64 = 20.0;

/// The routing grid of one interposer.
#[derive(Debug, Clone, Serialize)]
pub struct RoutingGrid {
    /// Gcell columns.
    pub cols: usize,
    /// Gcell rows.
    pub rows: usize,
    /// Signal layers available for routing.
    pub layers: usize,
    /// Gcell edge length, µm.
    pub gcell_um: f64,
    /// Routing capacity per gcell per layer (tracks).
    pub capacity: f64,
    /// Tracks blocked by one via (via size / track pitch). 5.5 for glass
    /// (22 µm vias on a 4 µm pitch), 0.175 for silicon — the mechanism
    /// behind the glass detour effect of Table IV.
    pub via_block_tracks: f64,
    /// Tracks blocked by one bump landing pad on the top layer.
    pub pad_block_tracks: f64,
    /// Whether 45° moves are allowed.
    pub diagonal: bool,
}

impl RoutingGrid {
    /// Builds the grid for an interposer of `footprint_um` on `spec`.
    ///
    /// # Errors
    ///
    /// Returns an error message if the footprint or spec is degenerate.
    pub fn new(
        footprint_um: (f64, f64),
        spec: &InterposerSpec,
    ) -> Result<RoutingGrid, &'static str> {
        if footprint_um.0 <= 0.0 || footprint_um.1 <= 0.0 {
            return Err("footprint must be positive");
        }
        if spec.signal_metal_layers == 0 {
            return Err("no signal layers");
        }
        let cols = (footprint_um.0 / GCELL_UM).ceil() as usize;
        let rows = (footprint_um.1 / GCELL_UM).ceil() as usize;
        Ok(RoutingGrid {
            cols,
            rows,
            layers: spec.signal_metal_layers,
            gcell_um: GCELL_UM,
            capacity: GCELL_UM / spec.track_pitch_um(),
            via_block_tracks: spec.via_size_um / spec.track_pitch_um(),
            pad_block_tracks: spec.bump_size_um / spec.track_pitch_um(),
            diagonal: spec.routing_style == RoutingStyle::Diagonal,
        })
    }

    /// Total node count (gcells × layers).
    pub fn node_count(&self) -> usize {
        self.cols * self.rows * self.layers
    }

    /// Flattened node index.
    pub fn index(&self, x: usize, y: usize, layer: usize) -> usize {
        (layer * self.rows + y) * self.cols + x
    }

    /// Gcell containing a physical point, clamped to the grid.
    pub fn gcell_of(&self, x_um: f64, y_um: f64) -> (usize, usize) {
        let gx = ((x_um / self.gcell_um) as usize).min(self.cols - 1);
        let gy = ((y_um / self.gcell_um) as usize).min(self.rows - 1);
        (gx, gy)
    }

    /// Inverse of [`RoutingGrid::index`]: the `(x, y, layer)` of a
    /// flattened node index.
    pub fn decompose(&self, node: usize) -> (usize, usize, usize) {
        let per_layer = self.rows * self.cols;
        let layer = node / per_layer;
        let rem = node % per_layer;
        (rem % self.cols, rem / self.cols, layer)
    }

    /// The lateral search window spanning gcells `a` and `b` inflated by
    /// `margin` gcells on every side, clamped to the grid. All layers are
    /// always in the window — only the lateral extent is bounded.
    pub fn window(&self, a: (usize, usize), b: (usize, usize), margin: usize) -> GridWindow {
        GridWindow {
            x0: a.0.min(b.0).saturating_sub(margin),
            y0: a.1.min(b.1).saturating_sub(margin),
            x1: a.0.max(b.0).saturating_add(margin).min(self.cols - 1),
            y1: a.1.max(b.1).saturating_add(margin).min(self.rows - 1),
        }
    }

    /// True if `layer`'s preferred direction is horizontal.
    pub fn horizontal_preferred(&self, layer: usize) -> bool {
        layer.is_multiple_of(2)
    }
}

/// Inclusive lateral gcell bounds of one windowed router search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridWindow {
    /// Leftmost column in the window.
    pub x0: usize,
    /// Bottom row in the window.
    pub y0: usize,
    /// Rightmost column in the window (inclusive).
    pub x1: usize,
    /// Top row in the window (inclusive).
    pub y1: usize,
}

impl GridWindow {
    /// True when the window spans the entire lateral grid, i.e. the
    /// windowed search *is* the full-grid search.
    pub fn covers(&self, grid: &RoutingGrid) -> bool {
        self.x0 == 0 && self.y0 == 0 && self.x1 + 1 == grid.cols && self.y1 + 1 == grid.rows
    }

    /// True when the two windows share no gcell (layers are always all
    /// in a window, so lateral disjointness is node disjointness). The
    /// router's speculative batch former admits a net into a batch only
    /// when its window is disjoint from every already-admitted one —
    /// nets that cannot read or dirty each other's congestion unless a
    /// search escalates beyond its initial window (which the footprint
    /// validation still catches).
    pub fn disjoint(&self, other: &GridWindow) -> bool {
        self.x1 < other.x0 || other.x1 < self.x0 || self.y1 < other.y0 || other.y1 < self.y0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use techlib::spec::{InterposerKind, InterposerSpec};

    #[test]
    fn glass_grid_dimensions() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let g = RoutingGrid::new((2200.0, 2200.0), &spec).unwrap();
        assert_eq!(g.cols, 110);
        assert_eq!(g.rows, 110);
        assert_eq!(g.layers, 7);
        assert_eq!(g.capacity, 5.0);
        assert!(!g.diagonal);
    }

    #[test]
    fn silicon_has_much_higher_capacity() {
        let spec = InterposerSpec::for_kind(InterposerKind::Silicon25D);
        let g = RoutingGrid::new((2200.0, 2200.0), &spec).unwrap();
        assert_eq!(g.capacity, 25.0);
    }

    #[test]
    fn apx_is_diagonal_and_track_starved() {
        let spec = InterposerSpec::for_kind(InterposerKind::Apx);
        let g = RoutingGrid::new((3200.0, 2700.0), &spec).unwrap();
        assert!(g.diagonal);
        assert!(g.capacity < 2.0);
    }

    #[test]
    fn indexing_is_dense_and_unique() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass3D);
        let g = RoutingGrid::new((1840.0, 1020.0), &spec).unwrap();
        let mut seen = vec![false; g.node_count()];
        for l in 0..g.layers {
            for y in 0..g.rows {
                for x in 0..g.cols {
                    let i = g.index(x, y, l);
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gcell_lookup_clamps() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let g = RoutingGrid::new((2200.0, 2200.0), &spec).unwrap();
        assert_eq!(g.gcell_of(0.0, 0.0), (0, 0));
        assert_eq!(g.gcell_of(25.0, 45.0), (1, 2));
        assert_eq!(g.gcell_of(99_999.0, 99_999.0), (109, 109));
    }

    #[test]
    fn decompose_inverts_index() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let g = RoutingGrid::new((2200.0, 2200.0), &spec).unwrap();
        for (x, y, l) in [(0, 0, 0), (109, 109, 6), (17, 42, 3)] {
            assert_eq!(g.decompose(g.index(x, y, l)), (x, y, l));
        }
    }

    #[test]
    fn windows_clamp_and_cover() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let g = RoutingGrid::new((2200.0, 2200.0), &spec).unwrap();
        let w = g.window((10, 20), (30, 25), 5);
        assert_eq!((w.x0, w.y0, w.x1, w.y1), (5, 15, 35, 30));
        assert!(!w.covers(&g));
        // A margin past the grid edge clamps instead of overflowing, and
        // a huge margin degenerates to the full grid.
        let edge = g.window((1, 108), (2, 109), 4);
        assert_eq!((edge.x0, edge.y0, edge.x1, edge.y1), (0, 104, 6, 109));
        assert!(g.window((50, 50), (60, 60), usize::MAX).covers(&g));
    }

    #[test]
    fn window_disjointness_is_symmetric_and_tight() {
        let a = GridWindow {
            x0: 10,
            y0: 10,
            x1: 20,
            y1: 20,
        };
        let apart = GridWindow {
            x0: 21,
            y0: 10,
            x1: 30,
            y1: 20,
        };
        let corner = GridWindow {
            x0: 20,
            y0: 20,
            x1: 25,
            y1: 25,
        };
        let above = GridWindow {
            x0: 0,
            y0: 21,
            x1: 40,
            y1: 30,
        };
        assert!(a.disjoint(&apart) && apart.disjoint(&a));
        // Inclusive bounds: sharing the single gcell (20, 20) overlaps.
        assert!(!a.disjoint(&corner) && !corner.disjoint(&a));
        assert!(a.disjoint(&above) && above.disjoint(&a));
        assert!(!a.disjoint(&a));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        assert!(RoutingGrid::new((0.0, 100.0), &spec).is_err());
        let mono = InterposerSpec::for_kind(InterposerKind::Monolithic2D);
        assert!(RoutingGrid::new((100.0, 100.0), &mono).is_err());
    }
}
