//! Coarse gcell routing grid.
//!
//! The interposer is divided into square gcells (default 20 µm). Each
//! signal layer contributes per-gcell routing capacity derived from the
//! technology's track pitch; layers alternate preferred direction, and
//! organic technologies additionally allow 45° moves (Section VI-B).

use serde::Serialize;
use techlib::spec::{InterposerSpec, RoutingStyle};

/// Default gcell edge length, µm.
pub const GCELL_UM: f64 = 20.0;

/// The routing grid of one interposer.
#[derive(Debug, Clone, Serialize)]
pub struct RoutingGrid {
    /// Gcell columns.
    pub cols: usize,
    /// Gcell rows.
    pub rows: usize,
    /// Signal layers available for routing.
    pub layers: usize,
    /// Gcell edge length, µm.
    pub gcell_um: f64,
    /// Routing capacity per gcell per layer (tracks).
    pub capacity: f64,
    /// Tracks blocked by one via (via size / track pitch). 5.5 for glass
    /// (22 µm vias on a 4 µm pitch), 0.175 for silicon — the mechanism
    /// behind the glass detour effect of Table IV.
    pub via_block_tracks: f64,
    /// Tracks blocked by one bump landing pad on the top layer.
    pub pad_block_tracks: f64,
    /// Whether 45° moves are allowed.
    pub diagonal: bool,
}

impl RoutingGrid {
    /// Builds the grid for an interposer of `footprint_um` on `spec`.
    ///
    /// # Errors
    ///
    /// Returns an error message if the footprint or spec is degenerate.
    pub fn new(
        footprint_um: (f64, f64),
        spec: &InterposerSpec,
    ) -> Result<RoutingGrid, &'static str> {
        if footprint_um.0 <= 0.0 || footprint_um.1 <= 0.0 {
            return Err("footprint must be positive");
        }
        if spec.signal_metal_layers == 0 {
            return Err("no signal layers");
        }
        let cols = (footprint_um.0 / GCELL_UM).ceil() as usize;
        let rows = (footprint_um.1 / GCELL_UM).ceil() as usize;
        Ok(RoutingGrid {
            cols,
            rows,
            layers: spec.signal_metal_layers,
            gcell_um: GCELL_UM,
            capacity: GCELL_UM / spec.track_pitch_um(),
            via_block_tracks: spec.via_size_um / spec.track_pitch_um(),
            pad_block_tracks: spec.bump_size_um / spec.track_pitch_um(),
            diagonal: spec.routing_style == RoutingStyle::Diagonal,
        })
    }

    /// Total node count (gcells × layers).
    pub fn node_count(&self) -> usize {
        self.cols * self.rows * self.layers
    }

    /// Flattened node index.
    pub fn index(&self, x: usize, y: usize, layer: usize) -> usize {
        (layer * self.rows + y) * self.cols + x
    }

    /// Gcell containing a physical point, clamped to the grid.
    pub fn gcell_of(&self, x_um: f64, y_um: f64) -> (usize, usize) {
        let gx = ((x_um / self.gcell_um) as usize).min(self.cols - 1);
        let gy = ((y_um / self.gcell_um) as usize).min(self.rows - 1);
        (gx, gy)
    }

    /// True if `layer`'s preferred direction is horizontal.
    pub fn horizontal_preferred(&self, layer: usize) -> bool {
        layer.is_multiple_of(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use techlib::spec::{InterposerKind, InterposerSpec};

    #[test]
    fn glass_grid_dimensions() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let g = RoutingGrid::new((2200.0, 2200.0), &spec).unwrap();
        assert_eq!(g.cols, 110);
        assert_eq!(g.rows, 110);
        assert_eq!(g.layers, 7);
        assert_eq!(g.capacity, 5.0);
        assert!(!g.diagonal);
    }

    #[test]
    fn silicon_has_much_higher_capacity() {
        let spec = InterposerSpec::for_kind(InterposerKind::Silicon25D);
        let g = RoutingGrid::new((2200.0, 2200.0), &spec).unwrap();
        assert_eq!(g.capacity, 25.0);
    }

    #[test]
    fn apx_is_diagonal_and_track_starved() {
        let spec = InterposerSpec::for_kind(InterposerKind::Apx);
        let g = RoutingGrid::new((3200.0, 2700.0), &spec).unwrap();
        assert!(g.diagonal);
        assert!(g.capacity < 2.0);
    }

    #[test]
    fn indexing_is_dense_and_unique() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass3D);
        let g = RoutingGrid::new((1840.0, 1020.0), &spec).unwrap();
        let mut seen = vec![false; g.node_count()];
        for l in 0..g.layers {
            for y in 0..g.rows {
                for x in 0..g.cols {
                    let i = g.index(x, y, l);
                    assert!(!seen[i]);
                    seen[i] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gcell_lookup_clamps() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let g = RoutingGrid::new((2200.0, 2200.0), &spec).unwrap();
        assert_eq!(g.gcell_of(0.0, 0.0), (0, 0));
        assert_eq!(g.gcell_of(25.0, 45.0), (1, 2));
        assert_eq!(g.gcell_of(99_999.0, 99_999.0), (109, 109));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        assert!(RoutingGrid::new((0.0, 100.0), &spec).is_err());
        let mono = InterposerSpec::for_kind(InterposerKind::Monolithic2D);
        assert!(RoutingGrid::new((100.0, 100.0), &mono).is_err());
    }
}
