//! Design-rule and connectivity checks on routed layouts.
//!
//! The paper's flow ends with "verify all the design with simulation"
//! (Fig. 4's final step). This module is the layout half of that
//! verification: every routed net must actually connect its endpoints,
//! stay on the grid, respect per-gcell track capacity (net of the fixed
//! via/pad blockage), and use only existing layers.

use crate::diemap::NetClass;
use crate::grid::RoutingGrid;
use crate::report::InterposerLayout;
use crate::router::base_blockage;
use crate::RouteError;
use serde::Serialize;
use techlib::spec::InterposerSpec;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Violation {
    /// A net's path does not start/end at its bump gcells.
    OpenNet {
        /// Offending net id.
        net: usize,
    },
    /// A path step moves more than one gcell or changes layer and position
    /// at once.
    IllegalStep {
        /// Offending net id.
        net: usize,
        /// Step index within the path.
        step: usize,
    },
    /// A path visits a layer outside the grid.
    BadLayer {
        /// Offending net id.
        net: usize,
        /// The layer used.
        layer: usize,
    },
    /// Wire demand exceeds gcell capacity (beyond fixed blockage).
    Overflow {
        /// Gcell x.
        x: usize,
        /// Gcell y.
        y: usize,
        /// Layer.
        layer: usize,
        /// Demand in tracks.
        demand: f64,
    },
}

/// The check report.
#[derive(Debug, Clone, Serialize)]
pub struct DrcReport {
    /// All violations found.
    pub violations: Vec<Violation>,
    /// Nets checked.
    pub nets_checked: usize,
    /// Gcells with wire demand.
    pub used_gcells: usize,
}

impl DrcReport {
    /// True if the layout is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fraction of used gcells carrying an overflow violation.
    pub fn overflow_fraction(&self) -> f64 {
        if self.used_gcells == 0 {
            return 0.0;
        }
        let n = self
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::Overflow { .. }))
            .count();
        n as f64 / self.used_gcells as f64
    }

    /// True if the only violations are overflows (no opens/illegal steps).
    pub fn connectivity_clean(&self) -> bool {
        self.violations
            .iter()
            .all(|v| matches!(v, Violation::Overflow { .. }))
    }
}

/// Runs all checks on `layout`.
///
/// # Errors
///
/// Returns [`RouteError::BadGrid`] if the layout's footprint cannot host
/// a routing grid. Malformed nets (missing endpoint bumps) are reported
/// as [`Violation::OpenNet`] entries rather than errors.
pub fn check(layout: &InterposerLayout) -> Result<DrcReport, RouteError> {
    let spec = InterposerSpec::for_kind(layout.placement.tech);
    let grid = RoutingGrid::new(layout.placement.footprint_um, &spec)
        .map_err(|reason| RouteError::BadGrid { reason })?;
    let mut violations = Vec::new();

    // Per-net path legality + endpoint connectivity.
    for net in &layout.routed_nets {
        let spec_net = &layout.placement.nets[net.id];
        debug_assert_ne!(spec_net.class, NetClass::IntraTileStackedVia);
        let (Some(src), Some(dst)) = (
            layout.placement.dies[spec_net.from.0].signal_position(spec_net.from.1),
            layout.placement.dies[spec_net.to.0].signal_position(spec_net.to.1),
        ) else {
            // An endpoint bump that does not exist can never be connected.
            violations.push(Violation::OpenNet { net: net.id });
            continue;
        };
        let src_g = grid.gcell_of(src.0, src.1);
        let dst_g = grid.gcell_of(dst.0, dst.1);
        match (net.path.first(), net.path.last()) {
            (Some(&(x0, y0, l0)), Some(&(x1, y1, l1))) => {
                if (x0, y0) != src_g || (x1, y1) != dst_g || l0 != 0 || l1 != 0 {
                    violations.push(Violation::OpenNet { net: net.id });
                }
            }
            _ => violations.push(Violation::OpenNet { net: net.id }),
        }
        for (i, w) in net.path.windows(2).enumerate() {
            let (x0, y0, l0) = w[0];
            let (x1, y1, l1) = w[1];
            let dx = x0.abs_diff(x1);
            let dy = y0.abs_diff(y1);
            let dl = l0.abs_diff(l1);
            let legal_lateral =
                dl == 0 && ((dx + dy == 1) || (grid.diagonal && dx == 1 && dy == 1));
            let legal_via = dl == 1 && dx == 0 && dy == 0;
            if !(legal_lateral || legal_via) {
                violations.push(Violation::IllegalStep {
                    net: net.id,
                    step: i,
                });
            }
        }
        for &(_, _, l) in &net.path {
            if l >= grid.layers {
                violations.push(Violation::BadLayer {
                    net: net.id,
                    layer: l,
                });
            }
        }
    }

    // Capacity audit. Wires and vias have separate budgets: wire demand
    // is limited by the track count the fixed blockage leaves free, and
    // via events by how many via barrels physically fit in one gcell
    // (one, for glass's 22 µm vias on a 20 µm gcell).
    let base = base_blockage(&layout.placement, &grid);
    let mut wires = vec![0.0f64; grid.node_count()];
    let mut vias = vec![0u32; grid.node_count()];
    for net in &layout.routed_nets {
        for w in net.path.windows(2) {
            let (x0, y0, l0) = w[0];
            let (x1, y1, l1) = w[1];
            if l0 >= grid.layers || l1 >= grid.layers {
                continue; // already flagged as BadLayer above
            }
            if l0 != l1 {
                vias[grid.index(x0, y0, l0)] += 1;
                vias[grid.index(x1, y1, l1)] += 1;
            } else {
                wires[grid.index(x1, y1, l1)] += 1.0;
            }
        }
    }
    let via_pitch_cells =
        (grid.gcell_um / (2.0 * grid.via_block_tracks * (grid.gcell_um / grid.capacity))).max(0.0);
    let max_vias_per_gcell = (via_pitch_cells * via_pitch_cells).floor().max(1.0) as u32;
    let mut used_gcells = 0;
    for l in 0..grid.layers {
        for y in 0..grid.rows {
            for x in 0..grid.cols {
                let i = grid.index(x, y, l);
                if wires[i] > 0.0 || vias[i] > 0 {
                    used_gcells += 1;
                }
                let free_tracks =
                    (grid.capacity - base[i] - vias[i] as f64 * grid.via_block_tracks * 0.5)
                        .max(0.0);
                let over_wire = wires[i] > free_tracks && base[i] < grid.capacity;
                let over_via = vias[i] > max_vias_per_gcell;
                if over_wire || over_via {
                    violations.push(Violation::Overflow {
                        x,
                        y,
                        layer: l,
                        demand: wires[i] + vias[i] as f64 * grid.via_block_tracks,
                    });
                }
            }
        }
    }

    Ok(DrcReport {
        violations,
        nets_checked: layout.routed_nets.len(),
        used_gcells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::cached_layout;
    use techlib::spec::InterposerKind;

    #[test]
    fn all_routed_layouts_connect_and_mostly_fit() {
        // Connectivity and step legality must be perfect everywhere. On
        // the track-starved technologies (glass 22 µm vias on a 4 µm
        // pitch, APX at 1.67 tracks/gcell) the router's three negotiation
        // rounds leave a small residue of over-capacity gcells — a known
        // limitation, bounded here at 1 % of the used gcells.
        for tech in InterposerKind::INTERPOSER_BASED {
            let layout = cached_layout(tech).unwrap();
            let report = check(&layout).unwrap();
            assert!(
                report.connectivity_clean(),
                "{tech}: non-overflow violations"
            );
            // Track-starved technologies keep a congestion residue after
            // the router's three negotiation rounds; bound it per class.
            let bound = match tech {
                InterposerKind::Glass25D | InterposerKind::Apx => 0.15,
                InterposerKind::Shinko => 0.05,
                InterposerKind::Glass3D => 0.01,
                _ => 0.001,
            };
            assert!(
                report.overflow_fraction() < bound,
                "{tech}: overflow fraction {}",
                report.overflow_fraction()
            );
            assert_eq!(report.nets_checked, layout.routed_nets.len());
            assert!(report.used_gcells > 0);
        }
        // The capacity-rich silicon interposer is fully clean.
        let report = check(&cached_layout(InterposerKind::Silicon25D).unwrap()).unwrap();
        assert!(
            report.is_clean(),
            "silicon: {:?}",
            report.violations.first()
        );
    }

    #[test]
    fn corrupted_path_is_caught() {
        let layout = cached_layout(InterposerKind::Glass3D).unwrap();
        let mut bad = (*layout).clone();
        // Teleport one net's tail.
        if let Some(net) = bad.routed_nets.first_mut() {
            if let Some(last) = net.path.last_mut() {
                last.0 = 0;
                last.1 = 0;
            }
        }
        let report = check(&bad).unwrap();
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OpenNet { .. } | Violation::IllegalStep { .. })));
    }

    #[test]
    fn bad_layer_is_caught() {
        let layout = cached_layout(InterposerKind::Glass3D).unwrap();
        let mut bad = (*layout).clone();
        if let Some(net) = bad.routed_nets.first_mut() {
            if net.path.len() >= 2 {
                net.path[1].2 = 99;
            }
        }
        let report = check(&bad).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::BadLayer { layer: 99, .. })));
    }
}
