#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
//! Interposer place and route (Section VI, Table IV).
//!
//! Given the four chiplets of the two-tile design (two logic, two memory),
//! this crate performs what Siemens Xpedition does in the paper:
//!
//! * [`diemap`] — die placement per technology: side-by-side 2×2 for the
//!   2.5D interposers (Fig. 10b), vertically stacked pairs for Glass 3D
//!   (Fig. 10a), plus the package footprint and the global net list
//!   (530 signal nets: 2 × 231 intra-tile + 68 inter-tile).
//! * [`grid`] — the coarse gcell routing grid with per-layer preferred
//!   directions, track capacities from the technology's wire pitch, and
//!   optional 45° moves for organic interposers.
//! * [`router`] — a PathFinder-style congestion-negotiated A* router with
//!   rip-up-and-reroute.
//! * [`pdn`] — power-plane generation and P/G via (TGV/TSV/PTH) counting.
//! * [`report`] — one-call [`report::place_and_route`] producing Table IV
//!   routing statistics.
//!
//! # Example
//!
//! ```
//! use interposer::report::place_and_route;
//! use techlib::spec::InterposerKind;
//!
//! let layout = place_and_route(InterposerKind::Glass3D)?;
//! // Glass 3D routes only the 68 inter-tile nets laterally; the
//! // 462 intra-tile connections are stacked-via columns.
//! assert_eq!(layout.routed_nets.len(), 68);
//! assert!(layout.stats.total_wl_mm < 100.0);
//! # Ok::<(), interposer::RouteError>(())
//! ```

pub mod bucket;
pub mod congestion;
pub mod diemap;
pub mod drc;
pub mod grid;
pub mod pdn;
pub mod report;
pub mod router;
pub mod stats;
pub mod svg;

pub use diemap::{DiePlacement, DieSite, NetSpec};
pub use report::InterposerLayout;
pub use stats::RoutingStats;

/// Errors produced by interposer placement and routing.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// A net could not be routed within the iteration budget.
    Unroutable {
        /// Net index that failed.
        net: usize,
    },
    /// The requested technology has no routed interposer (Silicon 3D,
    /// monolithic baseline).
    NoInterposer(techlib::spec::InterposerKind),
    /// Grid construction failed (zero dimensions).
    BadGrid {
        /// Explanation.
        reason: &'static str,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Unroutable { net } => write!(f, "net {net} is unroutable"),
            RouteError::NoInterposer(kind) => {
                write!(f, "{kind} has no routed interposer")
            }
            RouteError::BadGrid { reason } => write!(f, "bad routing grid: {reason}"),
        }
    }
}

impl std::error::Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!RouteError::Unroutable { net: 5 }.to_string().is_empty());
        assert!(
            !RouteError::NoInterposer(techlib::spec::InterposerKind::Silicon3D)
                .to_string()
                .is_empty()
        );
    }
}
