//! PathFinder-style congestion-negotiated A* routing.
//!
//! Every lateral net is routed by A* over the gcell grid; gcell usage is
//! tracked per layer, and rip-up-and-reroute iterations raise history
//! costs on over-subscribed gcells until the solution fits (or the
//! iteration budget is spent). Layers carry a small cost bias so routing
//! stays low in the stack unless congestion pushes it up — which is what
//! makes the "metal layers used" statistic of Table IV emerge from track
//! supply rather than being an input.
//!
//! # Hot-path architecture
//!
//! The A* inner loop is the whole runtime of the flow, so it is built
//! around these mechanisms (the exactness arguments live in DESIGN.md
//! §16):
//!
//! * **Monotone bucket frontier** ([`crate::bucket::BucketQueue`]) —
//!   the open set is a Dial-style ring of cost-tick slots scanned by a
//!   monotone cursor instead of a global binary heap, with per-slot
//!   mini-heaps reproducing the exact `(total_cmp f, node)` pop order
//!   of the historical `BinaryHeap`. The old heap survives behind the
//!   `frontier-oracle` test gate as a differential oracle.
//! * **Fused cost field** ([`crate::congestion::CostField`]) — the
//!   history + present-overflow penalty is folded into one per-node
//!   array maintained incrementally as paths commit (same expression,
//!   same rounding), halving the random-access traffic of the
//!   relaxation loop.
//! * **Corridor-scaled heuristic** — per window attempt, the cheapest
//!   lateral-entry excess over the window's gcells (layer bias +
//!   congestion floor, from `CostField::corridor_floor`) scales the
//!   octile/Manhattan distance into a sharper still-admissible lower
//!   bound: every in-window lateral step pays at least that excess on
//!   top of its geometric length. On uncongested corridors the floor is
//!   zero and the heuristic — and therefore every popped bit — is
//!   unchanged.
//! * **Reusable search scratch** (`SearchScratch`) — per-node search
//!   state and the read-footprint bitmap are allocated once per worker
//!   and *epoch-stamped*: a search begins by bumping a generation
//!   counter, so resetting costs O(1) instead of re-initialising
//!   `node_count` floats per net; the bucket frontier resets the same
//!   way. Frontier entries carry their `g` value and stale pops
//!   (entries superseded by a later relaxation) are skipped; `dist` is
//!   monotone non-increasing, so the skipped expansion would have
//!   relaxed nothing — results are bit-identical.
//! * **Windowed search** — each net searches a bounding box around its
//!   endpoints inflated by [`INITIAL_WINDOW_MARGIN`] gcells and takes
//!   the path it finds. Blockage and congestion are soft penalties, so a
//!   window containing both endpoints always contains *a* path; only if
//!   the window yields none does the margin grow geometrically
//!   ([`WINDOW_GROWTH`]) until it covers the grid — the windowed router
//!   therefore routes every net the full-grid search routes. The search
//!   still tracks a cost certificate (the smallest admissible f-value
//!   among the moves the window pruned): a goal cost strictly below that
//!   bound provably equals the full-grid optimum (see `astar`), and
//!   acceptances *without* that proof — windows that may have clipped a
//!   cheaper congestion detour — are surfaced as the
//!   `router.window_fallbacks` counter rather than paid for with a
//!   full-grid re-search. A detour wider than the margin cannot fix a
//!   fabric whose cut capacity is short; PathFinder history, not search
//!   breadth, is what resolves genuine overflow.
//! * **Overflow-driven incremental reroute** — after the first routing
//!   pass, only nets whose committed paths cross an over-capacity gcell
//!   are ripped up and re-negotiated against the still-committed usage
//!   of every other net; untouched nets keep their paths. Classic
//!   full-reroute PathFinder re-routes every net every iteration.
//!
//! # Parallel routing
//!
//! With more than one worker ([`techlib::par::thread_count`]),
//! [`route_all`] routes nets in *speculative batches*. The batch former
//! scans a bounded lookahead of the in-order net list for up to a
//! batch's worth of nets whose initial search windows are pairwise
//! disjoint (the historical former chunked contiguous nets, whose
//! interleaved bboxes essentially never qualified on real workloads —
//! the `batch_rounds == 0` bug). Every picked net runs A* concurrently
//! against a cost snapshot taken at batch formation, recording the set
//! of gcells whose congestion it examined (its *footprint*, plus each
//! window attempt's corridor-floor witness). Results are then committed
//! strictly in net order across the whole span the batch covers:
//! skipped-over nets route sequentially in place (their commits stamp
//! the round's epoch), and a speculative route is accepted only if
//! nothing committed since the snapshot dirtied a gcell in its
//! footprint — it is re-routed on the spot otherwise. A* is a
//! deterministic function of the cost values it reads, so an accepted
//! route is bit-identical to what the sequential pass would have
//! produced — `route_all` returns byte-identical results for any worker
//! count, only wall-clock changes. When a batch's conflict rate makes
//! speculation a net loss (half the batch or more had to be re-routed),
//! the router falls back to the sequential path for the rest of the
//! pass — a wall-clock policy that cannot change results. Per-worker
//! `SearchScratch` buffers live in a [`techlib::par::ScratchPool`]
//! so speculation allocates no per-net search state either.

use crate::bucket::{BucketQueue, FrontierItem, FrontierQueue};
use crate::congestion::CostField;
use crate::diemap::{DiePlacement, NetClass};
use crate::grid::{GridWindow, RoutingGrid};
use crate::RouteError;
use serde::{Deserialize, Serialize};

/// Cost of a via between adjacent layers, in µm-equivalent wirelength.
pub const VIA_COST_UM: f64 = 30.0;
/// Penalty multiplier for non-preferred-direction moves.
pub const NONPREF_PENALTY: f64 = 1.5;
/// Present-congestion penalty per unit overflow, µm-equivalent.
pub const PRESENT_PENALTY_UM: f64 = 200.0;
/// Per-layer cost bias, µm-equivalent per layer index: keeps routing low
/// in the stack unless congestion pushes it up.
pub const LAYER_BIAS_UM: f64 = 0.5;
/// History increment per overflowed gcell per iteration, µm-equivalent.
pub const HISTORY_INC_UM: f64 = 60.0;
/// Rip-up-and-reroute iterations.
pub const MAX_ITERATIONS: usize = 3;
/// Speculatively routed nets per worker per batch. Larger batches expose
/// more parallelism but raise the chance a footprint conflict forces a
/// sequential re-route.
pub const SPECULATIVE_BATCH_PER_WORKER: usize = 2;
/// How far past the current net (in multiples of the batch length) the
/// speculative batch former scans for window-disjoint partners. Nets in
/// the lookahead that overlap the batch stay in place and route
/// sequentially between the batch's ordered commits.
pub const BATCH_LOOKAHEAD_FACTOR: usize = 8;
/// Initial window margin: gcells added around a net's endpoint bounding
/// box for the first windowed A* attempt.
pub const INITIAL_WINDOW_MARGIN: usize = 8;
/// Geometric growth factor applied to the window margin when an attempt
/// fails its cost certificate (or finds no path at all).
pub const WINDOW_GROWTH: usize = 4;

/// One routed net.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutedNet {
    /// Net id (index into the placement's net list).
    pub id: usize,
    /// Lateral wirelength, µm.
    pub length_um: f64,
    /// Via count (layer changes plus the two bump microvias).
    pub vias: usize,
    /// Highest signal layer touched (0-based).
    pub max_layer: usize,
    /// Path as (x, y, layer) gcell steps.
    pub path: Vec<(usize, usize, usize)>,
}

/// Pre-seeds gcell usage with the blockage that exists before any signal
/// is routed: every bump pad occupies the top layer at its gcell, and
/// every P/G bump's stacked via (down to the power planes below the
/// routing stack) blocks all signal layers. On glass, one 22 µm via
/// consumes more than an entire gcell-layer of 4 µm-pitch tracks — the
/// physical cause of the serpentine escapes and long worst-case nets of
/// Table IV.
pub fn base_blockage(placement: &DiePlacement, grid: &RoutingGrid) -> Vec<f64> {
    let mut usage = vec![0.0; grid.node_count()];
    for die in &placement.dies {
        for bump in &die.bumps.bumps {
            let (gx, gy) = grid.gcell_of(die.origin_um.0 + bump.x_um, die.origin_um.1 + bump.y_um);
            // Pad on the top routing layer.
            usage[grid.index(gx, gy, 0)] += grid.pad_block_tracks;
            if !matches!(bump.role, chiplet::bumpmap::BumpRole::Signal(_)) {
                // P/G stacked via through every signal layer below.
                for l in 1..grid.layers {
                    usage[grid.index(gx, gy, l)] += grid.via_block_tracks;
                }
            }
        }
    }
    usage
}

/// Adds the track demand of one committed `path` to `usage`: a via step
/// blocks `via_block_tracks` on both layers, a lateral step one track on
/// its destination gcell. This is exactly what [`route_all`] commits per
/// net, shared here so congestion analysis and capacity checks stay in
/// sync with the router.
pub fn accumulate_path(grid: &RoutingGrid, path: &[(usize, usize, usize)], usage: &mut [f64]) {
    for w in path.windows(2) {
        let (x0, y0, l0) = w[0];
        let (x1, y1, l1) = w[1];
        if l0 != l1 {
            usage[grid.index(x0, y0, l0)] += grid.via_block_tracks;
            usage[grid.index(x1, y1, l1)] += grid.via_block_tracks;
        } else {
            usage[grid.index(x1, y1, l1)] += 1.0;
        }
    }
}

// ---------------------------------------------------------------------
// Reusable search state.
// ---------------------------------------------------------------------

/// Work counters accumulated locally per scratch and flushed to
/// [`techlib::obs`] once per [`route_all`] call (so the hot loop never
/// touches an atomic).
#[derive(Debug, Default, Clone, Copy)]
struct SearchCounters {
    pops: u64,
    expansions: u64,
    window_fallbacks: u64,
    bucket_pops: u64,
    heuristic_prunes: u64,
}

impl SearchCounters {
    fn merge(&mut self, other: SearchCounters) {
        self.pops += other.pops;
        self.expansions += other.expansions;
        self.window_fallbacks += other.window_fallbacks;
        self.bucket_pops += other.bucket_pops;
        self.heuristic_prunes += other.heuristic_prunes;
    }
}

/// Per-node search state, packed so one relaxation touches a single
/// 16-byte record instead of three parallel arrays (three cache lines).
/// `dist`/`prev` are valid only where `stamp` equals the scratch's
/// current generation.
#[derive(Clone, Copy)]
struct NodeState {
    dist: f64,
    prev: u32,
    stamp: u32,
}

/// Reusable, epoch-stamped A* state: one allocation per worker for the
/// lifetime of a [`route_all`] call instead of two `node_count`-sized
/// vectors per net.
///
/// `nodes[i]` is valid only where `nodes[i].stamp == generation`;
/// [`SearchScratch::begin_search`] bumps the generation, invalidating
/// the whole state in O(1) — and the frontier queue (the bucket ring by
/// default; the retained binary heap under the `frontier-oracle` gate)
/// resets the same way. The footprint bitmap records every node whose
/// congestion a speculative search read (across *all* window attempts
/// of a net — earlier attempts decide whether the window expands, so
/// their reads are part of the route's input), plus each attempt's
/// corridor-floor witness node; it is cleared in O(touched) by
/// [`SearchScratch::take_footprint`].
struct SearchScratch<Q: FrontierQueue = BucketQueue> {
    nodes: Vec<NodeState>,
    generation: u32,
    frontier: Q,
    fp_words: Vec<u64>,
    fp_touched: Vec<u32>,
    counters: SearchCounters,
}

impl<Q: FrontierQueue> SearchScratch<Q> {
    fn new(nodes: usize) -> SearchScratch<Q> {
        SearchScratch {
            nodes: vec![
                NodeState {
                    dist: f64::INFINITY,
                    prev: u32::MAX,
                    stamp: 0,
                };
                nodes
            ],
            generation: 0,
            frontier: Q::new(),
            fp_words: vec![0; nodes.div_ceil(64)],
            fp_touched: Vec::new(),
            counters: SearchCounters::default(),
        }
    }

    /// Invalidates all per-search state in O(1) (amortised: the stamp
    /// fields are re-zeroed only when the 32-bit generation wraps).
    fn begin_search(&mut self) {
        self.frontier.begin();
        if self.generation == u32::MAX {
            for state in &mut self.nodes {
                state.stamp = 0;
            }
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }

    /// Records `node` in the read footprint (idempotent per net).
    #[inline]
    fn mark_footprint(&mut self, node: usize) {
        let (w, b) = (node / 64, node % 64);
        if self.fp_words[w] & (1u64 << b) == 0 {
            self.fp_words[w] |= 1u64 << b;
            self.fp_touched.push(node as u32);
        }
    }

    /// Drains the footprint into a compact node list, clearing the
    /// bitmap in O(touched) so the scratch is ready for the next net.
    fn take_footprint(&mut self) -> Vec<u32> {
        let touched = std::mem::take(&mut self.fp_touched);
        for &node in &touched {
            self.fp_words[node as usize / 64] &= !(1u64 << (node % 64));
        }
        touched
    }
}

// ---------------------------------------------------------------------
// The A* kernel.
// ---------------------------------------------------------------------

/// Division by a loop-invariant divisor via the ceiling-reciprocal
/// trick (Granlund–Montgomery / Lemire): with `m = ⌈2⁶⁴ / d⌉`
/// (computed as `⌊(2⁶⁴−1)/d⌋ + 1` for `d ≥ 2`; exact for powers of
/// two), `⌊n / d⌋ == (m · n) >> 64` for every `n < 2³²` — the error
/// term `n·(m·d − 2⁶⁴)/(d·2⁶⁴)` stays below `1/d`. Node indices are far
/// below 2³², and the A* expansion loop decomposes one per pop — this
/// turns the three hardware divisions per expansion into two widening
/// multiplies (the release-build divisors are runtime grid dimensions,
/// so LLVM cannot strength-reduce them itself).
struct FastDiv {
    d: u64,
    m: u64,
}

impl FastDiv {
    fn new(d: u64) -> FastDiv {
        debug_assert!(d >= 2, "reciprocal needs d >= 2; d == 1 is identity");
        FastDiv {
            d,
            m: u64::MAX / d + 1,
        }
    }

    /// `n / self.d` for `n < 2³²`.
    #[inline]
    fn div(&self, n: u64) -> u64 {
        debug_assert!(n < (1 << 32));
        let q = ((u128::from(self.m) * u128::from(n)) >> 64) as u64;
        debug_assert_eq!(q, n / self.d);
        q
    }
}

/// One A* search from `start` to `goal`, restricted laterally to `win`.
/// Returns the goal's settled cost, leaving the `prev` chain in
/// `scratch` for reconstruction. Identical pop order and relaxation
/// sequence to the historical full-grid router when `win` covers the
/// grid and `hscale == 1.0`.
///
/// `hscale ≥ 1.0` multiplies the geometric heuristic into the corridor-
/// scaled lower bound of the caller (see [`route_with_margin`]); it
/// affects only the *queue keys*, never the relaxed `dist` values.
///
/// `pruned_min` is set to the smallest admissible f-value (`g` + step +
/// layer bias + plain `h`, congestion ≥ 0 dropped) among the moves the
/// *window* rejected — moves off the grid itself don't count, the
/// full-grid search rejects those too. It is the search's certificate:
/// with a consistent heuristic, any full-grid path cheaper than the
/// windowed result must cross a pruned boundary edge whose recorded
/// bound undercuts it, so a goal cost strictly below `pruned_min` *is*
/// the full-grid optimum (and, because equal-cost ties are excluded,
/// the reconstructed path is the one the full-grid search would have
/// returned, prev-pointer for prev-pointer). Under a sharpened
/// heuristic (`hscale > 1.0`) the corridor floor is window-local, so a
/// successful search additionally folds `dist + h` over every
/// *unpopped* frontier entry into `pruned_min`: any full-grid path the
/// sharpened search did not examine either crosses the window boundary
/// (recorded above) or passes through a relaxed-but-unexpanded node
/// still in the frontier (folded here), so the combined bound is a true
/// full-grid certificate — `window_fallbacks` semantics survive the
/// sharper heuristic.
#[allow(clippy::too_many_arguments)]
fn astar<Q: FrontierQueue>(
    scratch: &mut SearchScratch<Q>,
    grid: &RoutingGrid,
    cost: &CostField,
    start: usize,
    goal: usize,
    target: (usize, usize),
    win: &GridWindow,
    hscale: f64,
    record_footprint: bool,
    pruned_min: &mut f64,
) -> Option<f64> {
    *pruned_min = f64::INFINITY;
    scratch.begin_search();
    let SearchScratch {
        nodes,
        generation,
        frontier,
        fp_words,
        fp_touched,
        counters,
    } = scratch;
    let gen = *generation;
    let (tx, ty) = target;
    let penalty = &cost.penalty[..];

    // Integer |Δ| is exact for gcell coordinates (≪ 2^53), so this is
    // the bit-identical Manhattan/octile distance of the historical
    // float-subtract form, minus the float abs work.
    let h = |x: usize, y: usize| -> f64 {
        let dx = x.abs_diff(tx) as f64;
        let dy = y.abs_diff(ty) as f64;
        if grid.diagonal {
            (dx.max(dy) + (std::f64::consts::SQRT_2 - 1.0) * dx.min(dy)) * grid.gcell_um
        } else {
            (dx + dy) * grid.gcell_um
        }
    };

    nodes[start] = NodeState {
        dist: 0.0,
        prev: u32::MAX,
        stamp: gen,
    };
    frontier.push(FrontierItem {
        f: 0.0,
        g: 0.0,
        node: start,
    });

    // Reciprocal divisors for the per-pop index decomposition. `cols >= 2`
    // implies `per >= 2`, so both reciprocals are well-defined; degenerate
    // single-column grids (never produced by real footprints) fall back to
    // the hardware-division decompose.
    let per_layer = grid.rows * grid.cols;
    let fast = if grid.cols >= 2 {
        Some((
            FastDiv::new(per_layer as u64),
            FastDiv::new(grid.cols as u64),
        ))
    } else {
        None
    };

    let mut pops = 0u64;
    let mut expansions = 0u64;
    let mut found = None;
    while let Some(FrontierItem { f: _, g, node }) = frontier.pop() {
        pops += 1;
        if node == goal {
            found = Some(nodes[node].dist);
            break;
        }
        // Stale entry: a later relaxation already improved this node, so
        // its (earlier-popped) fresh entry performed every relaxation
        // this one could; skipping is result-identical.
        if g > nodes[node].dist {
            continue;
        }
        expansions += 1;
        let (x, y, layer) = match &fast {
            Some((fper, fcols)) => {
                let layer = fper.div(node as u64) as usize;
                let rem = node - layer * per_layer;
                let y = fcols.div(rem as u64) as usize;
                (rem - y * grid.cols, y, layer)
            }
            None => grid.decompose(node),
        };
        let d = nodes[node].dist;
        // `layer as f64 * LAYER_BIAS_UM`, hoisted: every probe of this
        // expansion but the two via moves adds exactly this term.
        let layer_bias = layer as f64 * LAYER_BIAS_UM;

        // Lateral probe: the destination layer is the popped node's, so
        // the layer bounds check is vacuous and the flattened index is
        // the popped node's plus a precomputed ±1 (x) / ±cols (y)
        // offset. Off-grid and off-window handling — and every float
        // operation — match the historical all-purpose try_move
        // bit-for-bit.
        let pruned_min = &mut *pruned_min;
        let mut lateral = |nx: i64, ny: i64, delta: i64, step: f64, frontier: &mut Q| {
            if nx < 0 || ny < 0 || nx >= grid.cols as i64 || ny >= grid.rows as i64 {
                return;
            }
            let (nx, ny) = (nx as usize, ny as usize);
            if nx < win.x0 || ny < win.y0 || nx > win.x1 || ny > win.y1 {
                // In the grid but outside the window: record the
                // certificate bound this pruned move witnesses (plain
                // h — outside the window the corridor floor is void).
                let lb = d + step + layer_bias + h(nx, ny);
                if lb < *pruned_min {
                    *pruned_min = lb;
                }
                return;
            }
            let ni = (node as i64 + delta) as usize;
            // Everything usage-dependent about this A* flows through the
            // fused penalty read below, so the footprint is exactly the
            // set of nodes it covers (plus the corridor witness the
            // caller marks).
            if record_footprint {
                let (w, b) = (ni / 64, ni % 64);
                if fp_words[w] & (1u64 << b) == 0 {
                    fp_words[w] |= 1u64 << b;
                    fp_touched.push(ni as u32);
                }
            }
            // Small upper-layer bias keeps routing low when uncongested.
            // `penalty[ni]` is the identical expression the historical
            // congestion closure computed (see `CostField`).
            let nd = d + step + penalty[ni] + layer_bias;
            let state = &mut nodes[ni];
            let cur = if state.stamp == gen {
                state.dist
            } else {
                f64::INFINITY
            };
            if nd < cur {
                *state = NodeState {
                    dist: nd,
                    prev: node as u32,
                    stamp: gen,
                };
                frontier.push(FrontierItem {
                    f: nd + h(nx, ny) * hscale,
                    g: nd,
                    node: ni,
                });
            }
        };

        let hp = grid.horizontal_preferred(layer);
        let hx = if hp { 1.0 } else { NONPREF_PENALTY };
        let hy = if hp { NONPREF_PENALTY } else { 1.0 };
        let g = grid.gcell_um;
        let cols = grid.cols as i64;
        lateral(x as i64 + 1, y as i64, 1, g * hx, frontier);
        lateral(x as i64 - 1, y as i64, -1, g * hx, frontier);
        lateral(x as i64, y as i64 + 1, cols, g * hy, frontier);
        lateral(x as i64, y as i64 - 1, -cols, g * hy, frontier);
        if grid.diagonal {
            let gd = g * std::f64::consts::SQRT_2;
            lateral(x as i64 + 1, y as i64 + 1, cols + 1, gd, frontier);
            lateral(x as i64 + 1, y as i64 - 1, -cols + 1, gd, frontier);
            lateral(x as i64 - 1, y as i64 + 1, cols - 1, gd, frontier);
            lateral(x as i64 - 1, y as i64 - 1, -cols - 1, gd, frontier);
        }

        // Via probe: (x, y) is unchanged and already in-window (it was
        // relaxed there), so the historical window check was vacuously
        // false for layer moves — only the layer bound remains. The
        // heuristic at the unchanged gcell is hoisted once for both
        // directions.
        let h_here = h(x, y);
        let per = (grid.cols * grid.rows) as i64;
        let mut via = |nl: i64, delta: i64, frontier: &mut Q| {
            if nl < 0 || nl >= grid.layers as i64 {
                return;
            }
            let ni = (node as i64 + delta) as usize;
            if record_footprint {
                let (w, b) = (ni / 64, ni % 64);
                if fp_words[w] & (1u64 << b) == 0 {
                    fp_words[w] |= 1u64 << b;
                    fp_touched.push(ni as u32);
                }
            }
            let nd = d + VIA_COST_UM + penalty[ni] + nl as f64 * LAYER_BIAS_UM;
            let state = &mut nodes[ni];
            let cur = if state.stamp == gen {
                state.dist
            } else {
                f64::INFINITY
            };
            if nd < cur {
                *state = NodeState {
                    dist: nd,
                    prev: node as u32,
                    stamp: gen,
                };
                frontier.push(FrontierItem {
                    f: nd + h_here * hscale,
                    g: nd,
                    node: ni,
                });
            }
        };
        via(layer as i64 + 1, per, frontier);
        via(layer as i64 - 1, -per, frontier);
    }
    counters.pops += pops;
    counters.expansions += expansions;
    if Q::IS_BUCKET {
        counters.bucket_pops += pops;
    }
    if hscale > 1.0 && found.is_some() {
        // Certificate repair for the sharpened heuristic: fold the
        // plain-h lower bound of every unexpanded frontier node into
        // the pruned minimum (see the doc comment). Every entry counted
        // here is an expansion the sharper bound saved.
        let mut remaining = 0u64;
        frontier.for_each(|item| {
            remaining += 1;
            let state = &nodes[item.node];
            if state.stamp == gen {
                let (ix, iy, _) = grid.decompose(item.node);
                let lb = state.dist + h(ix, iy);
                if lb < *pruned_min {
                    *pruned_min = lb;
                }
            }
        });
        counters.heuristic_prunes += remaining;
    }
    found
}

/// Routes one net with the windowed search: a bounding-box attempt whose
/// path is taken as found, with geometrically growing margins (up to the
/// full grid) only when a window yields no path at all. The pruned-
/// frontier cost certificate (see [`astar`]) classifies each acceptance
/// as provably-optimal or window-constrained for observability.
/// `initial_margin = usize::MAX` forces a single full-grid search (the
/// historical behaviour; used by the coverage tests as the reference).
///
/// Each window attempt sharpens the heuristic with the corridor floor:
/// the cheapest lateral-entry excess (layer bias + congestion penalty)
/// any in-window node charges. Every lateral step of an in-window path
/// pays at least `1 + floor / max_step` times its geometric cost — with
/// `max_step` the largest preferred-direction step length the heuristic
/// already assumes — so scaling `h` by that factor stays admissible and
/// consistent (DESIGN.md §16). On a fresh corridor the floor is 0, the
/// scale is exactly 1.0, and every search bit matches the historical
/// router. The floor's witness node joins the speculative footprint:
/// penalties only grow within a pass, so an untouched witness proves
/// the whole window minimum — and hence the scale — is unchanged.
#[allow(clippy::too_many_arguments)]
fn route_with_margin<Q: FrontierQueue>(
    placement: &DiePlacement,
    grid: &RoutingGrid,
    net: &crate::diemap::NetSpec,
    cost: &CostField,
    scratch: &mut SearchScratch<Q>,
    record_footprint: bool,
    initial_margin: usize,
) -> Option<RoutedNet> {
    let s = placement.dies[net.from.0].signal_position(net.from.1)?;
    let t = placement.dies[net.to.0].signal_position(net.to.1)?;
    let (sx, sy) = grid.gcell_of(s.0, s.1);
    let (tx, ty) = grid.gcell_of(t.0, t.1);
    let start = grid.index(sx, sy, 0);
    let goal = grid.index(tx, ty, 0);
    let max_step = if grid.diagonal {
        grid.gcell_um * std::f64::consts::SQRT_2
    } else {
        grid.gcell_um
    };

    let mut margin = initial_margin;
    loop {
        let win = grid.window((sx, sy), (tx, ty), margin);
        let full = win.covers(grid);
        let (floor, witness) = cost.corridor_floor(grid, &win);
        if record_footprint {
            scratch.mark_footprint(witness);
        }
        let hscale = if floor > 0.0 {
            1.0 + floor / max_step
        } else {
            1.0
        };
        let mut pruned_min = f64::INFINITY;
        let found = astar(
            scratch,
            grid,
            cost,
            start,
            goal,
            (tx, ty),
            &win,
            hscale,
            record_footprint,
            &mut pruned_min,
        );
        match found {
            Some(c) => {
                // The windowed path is taken as-is. When its cost beats
                // every pruned boundary bound it provably equals the
                // full-grid optimum (see `astar`); otherwise the window
                // may have constrained a congestion detour, which the
                // fallback counter records — PathFinder history, not a
                // wider search, resolves genuine overflow, and detours
                // wider than the margin cannot fix a fabric whose cut
                // capacity is simply short.
                if !full && c >= pruned_min {
                    scratch.counters.window_fallbacks += 1;
                }
                break;
            }
            None if full => return None,
            None => {
                // No path inside the window (unreachable on a connected
                // grid — blockage is soft — but the safety net keeps
                // windowing strictly weaker than the full search):
                // widen geometrically and retry. The footprint keeps
                // accumulating — the failed attempt's congestion reads
                // decided this expansion.
                scratch.counters.window_fallbacks += 1;
                margin = margin.saturating_mul(WINDOW_GROWTH).max(1);
            }
        }
    }

    // Reconstruct and measure in one pass: steps are single gcells, so a
    // lateral step is `gcell_um` long (× √2 when it moves both axes,
    // which only diagonal grids produce).
    let mut path = Vec::new();
    let mut cur = goal;
    loop {
        let (x, y, layer) = grid.decompose(cur);
        path.push((x, y, layer));
        if cur == start {
            break;
        }
        cur = scratch.nodes[cur].prev as usize;
    }
    path.reverse();

    let mut length = 0.0;
    let mut vias = 2; // bump microvia at each end
    let mut max_layer = 0;
    for w in path.windows(2) {
        let (x0, y0, l0) = w[0];
        let (x1, y1, l1) = w[1];
        if l0 != l1 {
            vias += 1;
        } else if x0 != x1 && y0 != y1 {
            length += std::f64::consts::SQRT_2 * grid.gcell_um;
        } else {
            length += grid.gcell_um;
        }
        max_layer = max_layer.max(l1).max(l0);
    }

    Some(RoutedNet {
        id: net.id,
        length_um: length,
        vias,
        max_layer,
        path,
    })
}

fn route_traced<Q: FrontierQueue>(
    placement: &DiePlacement,
    grid: &RoutingGrid,
    net: &crate::diemap::NetSpec,
    cost: &CostField,
    scratch: &mut SearchScratch<Q>,
    record_footprint: bool,
) -> Option<RoutedNet> {
    route_with_margin(
        placement,
        grid,
        net,
        cost,
        scratch,
        record_footprint,
        INITIAL_WINDOW_MARGIN,
    )
}

// ---------------------------------------------------------------------
// Commit bookkeeping.
// ---------------------------------------------------------------------

/// Adds `net`'s path to the usage map, stamping every modified node with
/// `epoch` so later speculative routes of the same batch can detect the
/// conflict.
fn commit(grid: &RoutingGrid, net: &RoutedNet, usage: &mut [f64], dirty: &mut [u32], epoch: u32) {
    for w in net.path.windows(2) {
        let (x0, y0, l0) = w[0];
        let (x1, y1, l1) = w[1];
        if l0 != l1 {
            // Vias consume track area on both layers.
            let a = grid.index(x0, y0, l0);
            let b = grid.index(x1, y1, l1);
            usage[a] += grid.via_block_tracks;
            usage[b] += grid.via_block_tracks;
            dirty[a] = epoch;
            dirty[b] = epoch;
        } else {
            let b = grid.index(x1, y1, l1);
            usage[b] += 1.0;
            dirty[b] = epoch;
        }
    }
}

/// Removes a previously committed path from the usage map (rip-up for
/// the incremental reroute). Exact mirror of [`commit`]'s additions, in
/// the same per-node order, so par and seq perform the identical
/// floating-point sequence.
fn uncommit(grid: &RoutingGrid, net: &RoutedNet, usage: &mut [f64]) {
    for w in net.path.windows(2) {
        let (x0, y0, l0) = w[0];
        let (x1, y1, l1) = w[1];
        if l0 != l1 {
            usage[grid.index(x0, y0, l0)] -= grid.via_block_tracks;
            usage[grid.index(x1, y1, l1)] -= grid.via_block_tracks;
        } else {
            usage[grid.index(x1, y1, l1)] -= 1.0;
        }
    }
}

/// True when `net`'s committed path touches any overflowed node — the
/// rip-up criterion of the incremental reroute. Checks exactly the
/// nodes [`commit`] charged.
fn crosses_overflow(grid: &RoutingGrid, net: &RoutedNet, overflowed: &[bool]) -> bool {
    net.path.windows(2).any(|w| {
        let (x0, y0, l0) = w[0];
        let (x1, y1, l1) = w[1];
        if l0 != l1 {
            overflowed[grid.index(x0, y0, l0)] || overflowed[grid.index(x1, y1, l1)]
        } else {
            overflowed[grid.index(x1, y1, l1)]
        }
    })
}

// ---------------------------------------------------------------------
// The negotiation loop.
// ---------------------------------------------------------------------

/// Rip-up policy of the negotiation loop; [`route_all`] always uses
/// [`Reroute::Incremental`], the full variant is kept for the
/// convergence-equivalence tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reroute {
    /// Rip up only nets crossing over-capacity gcells.
    Incremental,
    /// Reset usage and reroute every net each iteration (classic
    /// PathFinder, the pre-overhaul behaviour).
    #[cfg_attr(not(test), allow(dead_code))]
    Full,
}

/// Routes all lateral nets of `placement` on `grid`.
///
/// Uses [`techlib::par::thread_count`] workers; the result is
/// byte-identical for every worker count (see the module docs).
///
/// # Errors
///
/// Returns [`RouteError::Unroutable`] if a net has no path at all (should
/// not happen on a connected grid).
pub fn route_all(
    placement: &DiePlacement,
    grid: &RoutingGrid,
) -> Result<Vec<RoutedNet>, RouteError> {
    route_all_with_workers(placement, grid, techlib::par::thread_count())
}

/// [`route_all`] with an explicit worker count (for benchmarks and the
/// parallel-equals-sequential tests).
///
/// # Errors
///
/// Returns [`RouteError::Unroutable`] if a net has no path at all.
pub fn route_all_with_workers(
    placement: &DiePlacement,
    grid: &RoutingGrid,
    workers: usize,
) -> Result<Vec<RoutedNet>, RouteError> {
    Ok(route_all_impl(placement, grid, workers, Reroute::Incremental)?.0)
}

/// Batching telemetry of one [`route_all`] call (flushed to
/// [`techlib::obs`]; returned raw so tests can assert on it).
#[derive(Debug, Default, Clone, Copy)]
struct RouteStats {
    batch_rounds: u64,
    batch_candidates: u64,
    batch_window_rejects: u64,
    conflict_reroutes: u64,
    incremental_reroutes: u64,
}

/// Routes `order[k]` sequentially against the live cost field and
/// commits it, stamping `epoch` into the dirty map and refreshing the
/// fused penalties the commit changed. The single code path behind the
/// sequential pass, the between-batch nets, and conflict re-routes.
#[allow(clippy::too_many_arguments)]
fn route_and_commit(
    placement: &DiePlacement,
    grid: &RoutingGrid,
    net: &crate::diemap::NetSpec,
    usage: &mut [f64],
    history: &[f64],
    cost: &mut CostField,
    dirty: &mut [u32],
    epoch: u32,
    scratch: &mut SearchScratch,
) -> Result<RoutedNet, RouteError> {
    let r = route_traced(placement, grid, net, cost, scratch, false)
        .ok_or(RouteError::Unroutable { net: net.id })?;
    commit(grid, &r, usage, dirty, epoch);
    cost.refresh_path(grid, &r.path, usage, history);
    Ok(r)
}

/// `routed[k] = r`, growing the vector when `k` is the next slot (first
/// iteration) and overwriting in place on re-routes.
fn store_routed(routed: &mut Vec<RoutedNet>, k: usize, r: RoutedNet) {
    if k == routed.len() {
        routed.push(r);
    } else {
        routed[k] = r;
    }
}

fn route_all_impl(
    placement: &DiePlacement,
    grid: &RoutingGrid,
    workers: usize,
    strategy: Reroute,
) -> Result<(Vec<RoutedNet>, RouteStats), RouteError> {
    if techlib::faults::armed("router.escape") {
        // Injected fault: the escape/channel router gives up on the first
        // net, the same typed error a congested grid would produce.
        return Err(RouteError::Unroutable { net: 0 });
    }
    let n = grid.node_count();
    let base = base_blockage(placement, grid);
    let mut usage: Vec<f64> = base.clone();
    let mut history: Vec<f64> = vec![0.0; n];

    // Lateral nets only, longest first (hardest nets claim resources
    // first; PathFinder history resolves the rest).
    let mut order: Vec<&crate::diemap::NetSpec> = placement
        .nets
        .iter()
        .filter(|net| net.class != NetClass::IntraTileStackedVia)
        .collect();
    // `total_cmp` keeps this sort a strict weak ordering even for
    // degenerate lengths (a zero-length net whose endpoints share a
    // gcell still compares consistently); `sort_by` with an
    // inconsistent comparator may panic or scramble the deterministic
    // net order the whole flow depends on.
    order.sort_by(|a, b| {
        placement
            .net_manhattan_um(b)
            .total_cmp(&placement.net_manhattan_um(a))
            .then_with(|| a.id.cmp(&b.id))
    });

    // Per-net initial search windows, precomputed once: the batch former
    // admits only pairwise window-disjoint nets into a speculative
    // batch. `None` marks nets without placed endpoints (they route to
    // `Unroutable` on the sequential path).
    let windows: Vec<Option<GridWindow>> = order
        .iter()
        .map(|net| {
            let s = placement.dies[net.from.0].signal_position(net.from.1)?;
            let t = placement.dies[net.to.0].signal_position(net.to.1)?;
            Some(grid.window(
                grid.gcell_of(s.0, s.1),
                grid.gcell_of(t.0, t.1),
                INITIAL_WINDOW_MARGIN,
            ))
        })
        .collect();

    // Epoch-stamped dirty map: `dirty[i] == epoch` means node `i`'s usage
    // changed since the current speculative round's snapshot. Bumping the
    // epoch clears the map in O(1). Epoch 0 is reserved so commits made
    // before the first round never match a check.
    let mut dirty: Vec<u32> = vec![0; n];
    let mut epoch: u32 = 0;

    // The fused penalty field every search reads; maintained
    // incrementally per commit/rip-up and rebuilt at iteration
    // boundaries (history bumps touch arbitrary node sets).
    let mut cost = CostField::build(grid, &usage, &history);

    // One scratch for the sequential path and conflict re-routes; the
    // pool serves speculative workers across every batch of the call.
    let mut main_scratch = SearchScratch::new(n);
    let pool: techlib::par::ScratchPool<SearchScratch> = techlib::par::ScratchPool::new();

    // `routed[k]` stays aligned with `order[k]` until the final sort.
    let mut routed: Vec<RoutedNet> = Vec::with_capacity(order.len());
    let mut overflowed = vec![false; n];
    let mut stats = RouteStats::default();

    for iteration in 0..MAX_ITERATIONS {
        let targets: Vec<usize> = if iteration == 0 {
            (0..order.len()).collect()
        } else {
            // History rises wherever total demand exceeds capacity and
            // some of it is wire (the historical negotiation pressure);
            // rip-up targets only *wire-demand* overflow — a pad gcell
            // is over capacity from fixed blockage alone, and a net
            // cannot avoid its own endpoints, so re-routing it for that
            // would degenerate every iteration into a full reroute.
            let mut any = false;
            overflowed.fill(false);
            for i in 0..n {
                if usage[i] > grid.capacity && usage[i] > base[i] {
                    history[i] += HISTORY_INC_UM * (usage[i] - grid.capacity).min(10.0);
                    any = true;
                    if usage[i] - base[i] > grid.capacity {
                        overflowed[i] = true;
                    }
                }
            }
            if !any {
                break;
            }
            let targets = match strategy {
                Reroute::Full => {
                    usage.copy_from_slice(&base);
                    routed.clear();
                    (0..order.len()).collect()
                }
                Reroute::Incremental => {
                    let targets: Vec<usize> = (0..routed.len())
                        .filter(|&k| crosses_overflow(grid, &routed[k], &overflowed))
                        .collect();
                    if targets.is_empty() {
                        break;
                    }
                    // Rip up only the offenders; everyone else's demand
                    // stays committed and steers the re-negotiation.
                    for &k in &targets {
                        uncommit(grid, &routed[k], &mut usage);
                    }
                    stats.incremental_reroutes += targets.len() as u64;
                    targets
                }
            };
            // History bumps and rip-ups touched arbitrary nodes: rebuild
            // the fused field wholesale before the pass reads it.
            cost.rebuild(grid, &usage, &history);
            targets
        };

        // Speculation can be abandoned mid-pass when conflicts make it a
        // net loss; the sequential fallback produces identical bytes, so
        // this is purely a wall-clock policy.
        let mut speculate = workers > 1;
        let batch_len = (workers * SPECULATIVE_BATCH_PER_WORKER).max(1);
        let lookahead = batch_len * BATCH_LOOKAHEAD_FACTOR;
        let mut i = 0usize;
        while i < targets.len() {
            // Greedy batch former: scan the next `lookahead` in-order
            // nets for up to `batch_len` whose initial windows are
            // pairwise disjoint (nets that cannot read or dirty one
            // another's congestion unless a search escalates its
            // window — which the footprint validation still catches).
            // The historical former chunked *contiguous* nets, and the
            // longest-first order interleaves bbox-overlapping nets so
            // thoroughly that whole-chunk disjointness essentially
            // never held on the paper workload: `batch_rounds == 0`.
            let mut picked: Vec<usize> = vec![i];
            if speculate {
                stats.batch_candidates += 1;
                if let Some(w0) = windows[targets[i]] {
                    let mut wins: Vec<GridWindow> = vec![w0];
                    let end = (i + lookahead).min(targets.len());
                    for j in (i + 1)..end {
                        if picked.len() == batch_len {
                            break;
                        }
                        stats.batch_candidates += 1;
                        match windows[targets[j]] {
                            Some(w) if wins.iter().all(|p| p.disjoint(&w)) => {
                                picked.push(j);
                                wins.push(w);
                            }
                            _ => stats.batch_window_rejects += 1,
                        }
                    }
                }
            }
            if picked.len() < 2 {
                // No window-disjoint partner in the lookahead (or
                // speculation is off): plain sequential net.
                let k = targets[i];
                let r = route_and_commit(
                    placement,
                    grid,
                    order[k],
                    &mut usage,
                    &history,
                    &mut cost,
                    &mut dirty,
                    epoch,
                    &mut main_scratch,
                )?;
                store_routed(&mut routed, k, r);
                i += 1;
                continue;
            }

            // Route the batch against the current-state snapshot,
            // recording which nodes each A* read congestion from.
            epoch += 1;
            stats.batch_rounds += 1;
            let speculative = techlib::par::ordered_map_with(workers, &picked, |&j| {
                pool.with(
                    || SearchScratch::new(n),
                    |scratch| {
                        let r =
                            route_traced(placement, grid, order[targets[j]], &cost, scratch, true);
                        (r, scratch.take_footprint())
                    },
                )
            });

            // Commit walk, strictly in net order, over every position
            // the batch spans: batch members validate their footprint
            // against nodes dirtied since the snapshot, and the
            // in-between (window-overlapping) nets route sequentially —
            // their commits stamp the current epoch so later batch
            // members see their dirt. Net order is exactly the
            // sequential order, so results stay byte-identical.
            let last = *picked.last().unwrap_or(&i);
            let mut conflicts = 0usize;
            let mut spec = picked.iter().zip(speculative);
            let mut next = spec.next();
            for (pos, &k) in targets.iter().enumerate().take(last + 1).skip(i) {
                let is_spec = matches!(next.as_ref(), Some((j, _)) if **j == pos);
                let r = if is_spec {
                    let (r, footprint) = match next.take() {
                        Some((_, payload)) => payload,
                        None => (None, Vec::new()), // unreachable: is_spec
                    };
                    next = spec.next();
                    let clean = footprint.iter().all(|&node| dirty[node as usize] != epoch);
                    match r {
                        Some(r) if clean => {
                            commit(grid, &r, &mut usage, &mut dirty, epoch);
                            cost.refresh_path(grid, &r.path, &usage, &history);
                            r
                        }
                        _ => {
                            conflicts += 1;
                            route_and_commit(
                                placement,
                                grid,
                                order[k],
                                &mut usage,
                                &history,
                                &mut cost,
                                &mut dirty,
                                epoch,
                                &mut main_scratch,
                            )?
                        }
                    }
                } else {
                    route_and_commit(
                        placement,
                        grid,
                        order[k],
                        &mut usage,
                        &history,
                        &mut cost,
                        &mut dirty,
                        epoch,
                        &mut main_scratch,
                    )?
                };
                store_routed(&mut routed, k, r);
            }
            stats.conflict_reroutes += conflicts as u64;
            if 2 * conflicts >= picked.len() {
                speculate = false;
            }
            i = last + 1;
        }
    }
    routed.sort_by_key(|r| r.id);

    // Flush the locally accumulated work counters out-of-band.
    let mut totals = main_scratch.counters;
    for scratch in pool.drain() {
        totals.merge(scratch.counters);
    }
    techlib::obs::add(techlib::obs::ROUTER_NETS_ROUTED, routed.len() as u64);
    techlib::obs::add(techlib::obs::ROUTER_BATCH_ROUNDS, stats.batch_rounds);
    techlib::obs::add(techlib::obs::ROUTER_HEAP_POPS, totals.pops);
    techlib::obs::add(techlib::obs::ROUTER_EXPANSIONS, totals.expansions);
    techlib::obs::add(
        techlib::obs::ROUTER_WINDOW_FALLBACKS,
        totals.window_fallbacks,
    );
    techlib::obs::add(
        techlib::obs::ROUTER_INCREMENTAL_REROUTES,
        stats.incremental_reroutes,
    );
    techlib::obs::add(
        techlib::obs::ROUTER_CONFLICT_REROUTES,
        stats.conflict_reroutes,
    );
    techlib::obs::add(
        techlib::obs::ROUTER_BATCH_CANDIDATES,
        stats.batch_candidates,
    );
    techlib::obs::add(
        techlib::obs::ROUTER_BATCH_CONFLICT_REJECTS,
        stats.batch_window_rejects,
    );
    techlib::obs::add(techlib::obs::ROUTER_BUCKET_POPS, totals.bucket_pops);
    techlib::obs::add(
        techlib::obs::ROUTER_HEURISTIC_PRUNES,
        totals.heuristic_prunes,
    );
    Ok((routed, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diemap::place_dies;
    use proptest::prelude::*;
    use techlib::spec::{InterposerKind, InterposerSpec};

    fn route(tech: InterposerKind) -> (DiePlacement, Vec<RoutedNet>) {
        let l = crate::report::cached_layout(tech).unwrap();
        (l.placement.clone(), l.routed_nets.clone())
    }

    #[test]
    fn silicon_routes_all_530_nets() {
        let (p, r) = route(InterposerKind::Silicon25D);
        assert_eq!(r.len(), p.nets.len());
        for net in &r {
            assert!(net.length_um > 0.0);
            assert!(net.vias >= 2);
        }
    }

    #[test]
    fn glass_3d_routes_only_intertile_nets() {
        let (_, r) = route(InterposerKind::Glass3D);
        assert_eq!(r.len(), 68);
    }

    #[test]
    fn routed_length_at_least_manhattan() {
        let (p, r) = route(InterposerKind::Silicon25D);
        for net in &r {
            let spec = &p.nets[net.id];
            let manhattan = p.net_manhattan_um(spec);
            // Gcell quantisation allows ~2 gcells of slack.
            assert!(
                net.length_um + 2.0 * 20.0 >= manhattan * 0.8,
                "net {} routed {} vs manhattan {manhattan}",
                net.id,
                net.length_um
            );
        }
    }

    #[test]
    fn glass_uses_more_layers_than_silicon() {
        // 5 tracks/gcell/layer vs 25: glass must spill upward.
        let (_, rg) = route(InterposerKind::Glass25D);
        let (_, rs) = route(InterposerKind::Silicon25D);
        let max_g = rg.iter().map(|n| n.max_layer).max().unwrap();
        let max_s = rs.iter().map(|n| n.max_layer).max().unwrap();
        assert!(max_g > max_s, "glass {max_g} vs silicon {max_s}");
    }

    #[test]
    fn diagonal_shortens_organic_routes() {
        let (ps, rs) = route(InterposerKind::Shinko);
        let total: f64 = rs.iter().map(|n| n.length_um).sum();
        let manhattan: f64 = ps
            .nets
            .iter()
            .filter(|n| n.class != crate::diemap::NetClass::IntraTileStackedVia)
            .map(|n| ps.net_manhattan_um(n))
            .sum();
        // Diagonal routing beats pure Manhattan lower bound × detour.
        assert!(
            total < manhattan * 1.3,
            "total {total} vs manhattan {manhattan}"
        );
    }

    #[test]
    fn routing_is_deterministic() {
        let (_, a) = route(InterposerKind::Glass25D);
        let (_, b) = route(InterposerKind::Glass25D);
        let ta: f64 = a.iter().map(|n| n.length_um).sum();
        let tb: f64 = b.iter().map(|n| n.length_um).sum();
        assert_eq!(ta, tb);
    }

    #[test]
    fn speculative_batches_match_sequential_exactly() {
        // The heart of the determinism guarantee: batched parallel
        // routing must produce bit-identical paths to the one-net-at-a-
        // time pass, including on a congested grid where speculative
        // routes conflict and re-route.
        let p = wide_micro_placement(16);
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let seq = route_all_with_workers(&p, &grid, 1).unwrap();
        for workers in [2, 4, 7] {
            let par = route_all_with_workers(&p, &grid, workers).unwrap();
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.path, b.path, "net {} ({} workers)", a.id, workers);
                assert!(a.length_um == b.length_um && a.vias == b.vias);
            }
        }
    }

    #[test]
    fn speculative_batches_match_on_real_silicon_layout_and_fire() {
        // Byte-identity at workers {1, 2, 4, 7} on the paper workload,
        // AND the batch former must actually form batches at every
        // parallel width — `batch_rounds == 0` silently regressing the
        // parallel path to sequential is exactly the bug this PR fixes.
        let p = place_dies(InterposerKind::Silicon25D);
        let spec = InterposerSpec::for_kind(InterposerKind::Silicon25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let (seq, seq_stats) = route_all_impl(&p, &grid, 1, Reroute::Incremental).unwrap();
        assert_eq!(seq_stats.batch_rounds, 0, "sequential never speculates");
        for workers in [2, 4, 7] {
            let (par, stats) = route_all_impl(&p, &grid, workers, Reroute::Incremental).unwrap();
            assert!(
                stats.batch_rounds > 0,
                "speculative batching must fire at {workers} workers \
                 (candidates={}, window_rejects={})",
                stats.batch_candidates,
                stats.batch_window_rejects
            );
            assert_eq!(seq.len(), par.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.path, b.path, "net {} ({workers} workers)", a.id);
            }
        }
    }

    #[test]
    fn bucket_frontier_reproduces_heap_frontier_paths() {
        // Full-layout differential oracle: route every net of the glass
        // workload (serpentine congestion, the hardest frontier
        // schedules we have) with the bucket frontier and the retained
        // binary heap, committing the bucket result so both see
        // evolving congestion. Paths must match node-for-node.
        use crate::bucket::HeapFrontier;
        let p = place_dies(InterposerKind::Glass25D);
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let n = grid.node_count();
        let mut usage = base_blockage(&p, &grid);
        let history = vec![0.0; n];
        let mut cost = CostField::build(&grid, &usage, &history);
        let mut dirty = vec![0u32; n];
        let mut bucket: SearchScratch = SearchScratch::new(n);
        let mut heap: SearchScratch<HeapFrontier> = SearchScratch::new(n);
        for net in &p.nets {
            let a = route_traced(&p, &grid, net, &cost, &mut bucket, false);
            let b = route_traced(&p, &grid, net, &cost, &mut heap, false);
            match (&a, &b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.path, b.path, "net {}", net.id);
                    assert!(a.length_um == b.length_um && a.vias == b.vias);
                }
                (None, None) => {}
                _ => panic!("net {}: routability diverged", net.id),
            }
            if let Some(a) = a {
                commit(&grid, &a, &mut usage, &mut dirty, 0);
                cost.refresh_path(&grid, &a.path, &usage, &history);
            }
        }
        assert!(bucket.counters.pops > 0);
        assert_eq!(bucket.counters.pops, bucket.counters.bucket_pops);
        assert_eq!(heap.counters.bucket_pops, 0);
    }

    #[test]
    fn no_gcell_exceeds_capacity_after_negotiation_on_silicon() {
        let p = place_dies(InterposerKind::Silicon25D);
        let spec = InterposerSpec::for_kind(InterposerKind::Silicon25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let r = route_all(&p, &grid).unwrap();
        // Wire demand alone (pads and P/G stacks are fixed blockage the
        // router cannot avoid at its own endpoints) must fit the tracks.
        let mut usage = vec![0.0; grid.node_count()];
        for net in &r {
            accumulate_path(&grid, &net.path, &mut usage);
        }
        let overflow = usage.iter().filter(|&&u| u > grid.capacity).count();
        assert_eq!(overflow, 0, "silicon has 25 tracks/gcell: no overflow");
    }

    fn micro_placement() -> DiePlacement {
        wide_micro_placement(4)
    }

    fn wide_micro_placement(signals: usize) -> DiePlacement {
        // Two n-signal dies a few hundred µm apart on a tiny synthetic
        // package; every net crosses the same gap, so batched routing
        // sees real footprint conflicts.
        micro_placement_at(signals, 50.0, 350.0, (600.0, 300.0))
    }

    fn micro_placement_at(
        signals: usize,
        x0: f64,
        x1: f64,
        footprint_um: (f64, f64),
    ) -> DiePlacement {
        use chiplet::bumpmap::BumpPlan;
        use netlist::chiplet_netlist::ChipletKind;
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let bumps = BumpPlan::with_counts(signals, 2, &spec);
        let mk = |tile: usize, x: f64| crate::diemap::DieSite {
            tile,
            kind: ChipletKind::Logic,
            origin_um: (x, 50.0),
            width_um: bumps.bump_limited_width_um(),
            embedded: false,
            bumps: bumps.clone(),
            signal_map: (0..signals).collect(),
        };
        let nets = (0..signals)
            .map(|i| crate::diemap::NetSpec {
                id: i,
                class: crate::diemap::NetClass::IntraTileLateral,
                from: (0, i),
                to: (1, i),
            })
            .collect();
        DiePlacement {
            tech: InterposerKind::Glass25D,
            footprint_um,
            dies: vec![mk(0, x0), mk(1, x1)],
            nets,
        }
    }

    #[test]
    fn micro_placement_routes_every_net() {
        let p = micro_placement();
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let routed = route_all(&p, &grid).unwrap();
        assert_eq!(routed.len(), 4);
        for net in &routed {
            // Dies are ~300 µm apart: every route crosses the gap.
            assert!(net.length_um >= 200.0, "net {}: {}", net.id, net.length_um);
            assert!(net.vias >= 2);
        }
    }

    #[test]
    fn coincident_endpoints_route_to_zero_length() {
        // A net whose endpoints share a gcell must not panic and must
        // report zero lateral wire (bump vias only).
        let mut p = micro_placement();
        p.nets = vec![crate::diemap::NetSpec {
            id: 0,
            class: crate::diemap::NetClass::IntraTileLateral,
            from: (0, 0),
            to: (0, 0),
        }];
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let routed = route_all(&p, &grid).unwrap();
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].length_um, 0.0);
        assert_eq!(routed[0].vias, 2);
    }

    #[test]
    fn degenerate_net_ordering_is_total_and_deterministic() {
        // Several zero-length nets tie at Manhattan length 0 and rely
        // entirely on the id tiebreak; `total_cmp` guarantees the sort
        // comparator stays a strict weak ordering even for such
        // degenerate keys (the old `partial_cmp(..).unwrap_or(Equal)`
        // pattern could silently violate it for non-finite lengths).
        let mut p = micro_placement();
        let normal = p.nets.clone();
        p.nets = (0..3)
            .map(|i| crate::diemap::NetSpec {
                id: i,
                class: crate::diemap::NetClass::IntraTileLateral,
                from: (0, i),
                to: (0, i),
            })
            .collect();
        for (offset, net) in normal.into_iter().enumerate() {
            p.nets.push(crate::diemap::NetSpec {
                id: 3 + offset,
                ..net
            });
        }
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let seq = route_all_with_workers(&p, &grid, 1).unwrap();
        assert_eq!(seq.len(), 7);
        for net in &seq[..3] {
            assert_eq!(net.length_um, 0.0, "net {} is degenerate", net.id);
        }
        for workers in [2, 4] {
            let par = route_all_with_workers(&p, &grid, workers).unwrap();
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.path, b.path, "net {} ({workers} workers)", a.id);
            }
        }
    }

    #[test]
    fn glass_blockage_saturates_pad_gcells() {
        let p = place_dies(InterposerKind::Glass25D);
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let base = base_blockage(&p, &grid);
        // 22 µm vias on a 4 µm pitch: one pad exceeds a gcell-layer.
        assert!(grid.via_block_tracks > grid.capacity);
        let blocked = base.iter().filter(|&&u| u >= grid.capacity).count();
        assert!(blocked > 500, "blocked gcells = {blocked}");
    }

    #[test]
    fn glass_worst_net_detours_beyond_silicon() {
        // The Table IV / Table V effect: glass escapes serpentine around
        // blocked gcells, so its worst L2M net is much longer than
        // silicon's on the same die placement.
        let (pg, rg) = route(InterposerKind::Glass25D);
        let (ps, rs) = route(InterposerKind::Silicon25D);
        let worst = |p: &DiePlacement, r: &[RoutedNet]| -> f64 {
            r.iter()
                .filter(|n| p.nets[n.id].class == crate::diemap::NetClass::IntraTileLateral)
                .map(|n| n.length_um)
                .fold(0.0, f64::max)
        };
        assert!(
            worst(&pg, &rg) > worst(&ps, &rs),
            "glass {} vs silicon {}",
            worst(&pg, &rg),
            worst(&ps, &rs)
        );
    }

    // -----------------------------------------------------------------
    // Hot-path overhaul invariants.
    // -----------------------------------------------------------------

    /// Routes every net of `p` twice per net — windowed vs forced
    /// full-grid — asserting the windowed search routes exactly the nets
    /// the full-grid search routes, with well-formed paths between the
    /// same endpoints, while committing the (windowed) result so later
    /// nets see realistic congestion. Windowed paths may legitimately
    /// differ from full-grid ones when the window clips a congestion
    /// detour, so the aggregate wirelength is only required to stay
    /// within a band of the full-grid reference.
    fn assert_windowed_covers_full_grid(p: &DiePlacement) {
        let spec = InterposerSpec::for_kind(p.tech);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let n = grid.node_count();
        let base = base_blockage(p, &grid);
        let mut usage = base.clone();
        let history = vec![0.0; n];
        let mut cost = CostField::build(&grid, &usage, &history);
        let mut dirty = vec![0u32; n];
        let mut scratch: SearchScratch = SearchScratch::new(n);
        let (mut len_win, mut len_full) = (0.0f64, 0.0f64);
        for net in &p.nets {
            let windowed = route_traced(p, &grid, net, &cost, &mut scratch, false);
            let full = route_with_margin(p, &grid, net, &cost, &mut scratch, false, usize::MAX);
            match (&windowed, &full) {
                (Some(w), Some(f)) => {
                    assert_eq!(w.path.first(), f.path.first(), "net {} start", net.id);
                    assert_eq!(w.path.last(), f.path.last(), "net {} goal", net.id);
                    // Every step moves one gcell laterally or one layer.
                    for pair in w.path.windows(2) {
                        let (x0, y0, l0) = pair[0];
                        let (x1, y1, l1) = pair[1];
                        let lateral = x0.abs_diff(x1).max(y0.abs_diff(y1));
                        assert!(
                            (lateral == 1 && l0 == l1) || (lateral == 0 && l0.abs_diff(l1) == 1),
                            "net {}: malformed step {:?} -> {:?}",
                            net.id,
                            pair[0],
                            pair[1]
                        );
                    }
                    len_win += w.length_um;
                    len_full += f.length_um;
                }
                (None, None) => {}
                _ => panic!(
                    "net {}: windowed routability {} != full-grid routability {}",
                    net.id,
                    windowed.is_some(),
                    full.is_some()
                ),
            }
            if let Some(w) = windowed {
                commit(&grid, &w, &mut usage, &mut dirty, 0);
                cost.refresh_path(&grid, &w.path, &usage, &history);
            }
        }
        if len_full > 0.0 {
            let ratio = len_win / len_full;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "windowed aggregate wirelength drifted: {len_win:.0} vs {len_full:.0} ({ratio:.3}x)"
            );
        }
    }

    #[test]
    fn windowed_search_covers_full_grid_on_the_silicon_layout() {
        assert_windowed_covers_full_grid(&place_dies(InterposerKind::Silicon25D));
    }

    #[test]
    fn incremental_reroute_matches_full_reroute_overflow_on_silicon() {
        let p = place_dies(InterposerKind::Silicon25D);
        let spec = InterposerSpec::for_kind(InterposerKind::Silicon25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let overflow = |r: &[RoutedNet]| {
            let mut usage = vec![0.0; grid.node_count()];
            for net in r {
                accumulate_path(&grid, &net.path, &mut usage);
            }
            usage.iter().filter(|&&u| u > grid.capacity).count()
        };
        let inc = route_all_impl(&p, &grid, 1, Reroute::Incremental)
            .unwrap()
            .0;
        let full = route_all_impl(&p, &grid, 1, Reroute::Full).unwrap().0;
        assert_eq!(overflow(&inc), overflow(&full));
        assert_eq!(overflow(&inc), 0);
    }

    /// Deterministic PRNG for the randomized placements (the proptest
    /// stub's strategies are uniform ranges; this derives the rest).
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A randomized two-die micro placement: die positions, signal count
    /// and footprint all derived from `seed`.
    fn random_micro_placement(seed: u64) -> DiePlacement {
        let r = |k: u64| splitmix64(seed ^ k);
        let signals = 2 + (r(1) % 11) as usize; // 2..=12
        let x0 = 30.0 + (r(2) % 120) as f64; // 30..150
        let gap = 150.0 + (r(3) % 300) as f64; // 150..450
        let width = (x0 + gap + 400.0).max(600.0);
        let height = 240.0 + (r(4) % 200) as f64;
        micro_placement_at(signals, x0, x0 + gap, (width, height))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// (a) The windowed search + fallback routes exactly the nets
        /// the full-grid search routes — well-formed paths between the
        /// same endpoints, aggregate length within a band of the
        /// full-grid reference — on randomized placements under
        /// evolving congestion.
        #[test]
        fn windowed_covers_full_grid_on_random_placements(seed in 0u64..(1u64 << 48)) {
            assert_windowed_covers_full_grid(&random_micro_placement(seed));
        }

        /// (b) Incremental reroute converges to the same overflow count
        /// as classic full reroute on randomized placements.
        #[test]
        fn incremental_matches_full_reroute_overflow(seed in 0u64..(1u64 << 48)) {
            let p = random_micro_placement(seed);
            let spec = InterposerSpec::for_kind(p.tech);
            let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
            let overflow = |r: &[RoutedNet]| {
                let mut usage = vec![0.0; grid.node_count()];
                for net in r {
                    accumulate_path(&grid, &net.path, &mut usage);
                }
                usage.iter().filter(|&&u| u > grid.capacity).count()
            };
            let inc = route_all_impl(&p, &grid, 1, Reroute::Incremental).unwrap().0;
            let full = route_all_impl(&p, &grid, 1, Reroute::Full).unwrap().0;
            prop_assert_eq!(overflow(&inc), overflow(&full));
        }

        /// (c) Parallel speculative routing is byte-identical to the
        /// sequential pass at every worker count, on randomized
        /// placements (`CODESIGN_THREADS ∈ {1,2,4,7}` equivalent — the
        /// explicit-worker entry point is exactly what the env-driven
        /// path calls).
        #[test]
        fn par_matches_seq_on_random_placements(seed in 0u64..(1u64 << 48)) {
            let p = random_micro_placement(seed);
            let spec = InterposerSpec::for_kind(p.tech);
            let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
            let seq = route_all_with_workers(&p, &grid, 1).unwrap();
            for workers in [2usize, 4, 7] {
                let par = route_all_with_workers(&p, &grid, workers).unwrap();
                prop_assert_eq!(par.len(), seq.len());
                for (a, b) in par.iter().zip(&seq) {
                    prop_assert_eq!(a.id, b.id);
                    prop_assert_eq!(&a.path, &b.path);
                    prop_assert!(a.length_um == b.length_um && a.vias == b.vias);
                }
            }
        }
    }

    #[test]
    fn scratch_generations_isolate_searches() {
        let mut s: SearchScratch = SearchScratch::new(128);
        s.begin_search();
        let gen = s.generation;
        s.nodes[5].dist = 1.5;
        s.nodes[5].stamp = gen;
        s.begin_search();
        assert_ne!(s.nodes[5].stamp, s.generation, "stale stamp invalidated");
        // Footprint marks dedupe and drain clears the bitmap for reuse.
        s.mark_footprint(7);
        s.mark_footprint(7);
        assert_eq!(s.take_footprint(), vec![7]);
        assert_eq!(s.fp_words[0], 0);
        assert!(s.take_footprint().is_empty());
    }

    #[test]
    fn fast_div_is_exact_for_32_bit_operands() {
        // Exhaustive-ish sweep over awkward divisors (powers of two,
        // odd primes, grid-typical per-layer sizes) and boundary
        // numerators. The debug_assert inside `div` cross-checks every
        // call against hardware division as well.
        let divisors = [2u64, 3, 4, 7, 64, 110, 12100, 110 * 110 * 7, 65537];
        for &d in &divisors {
            let f = FastDiv::new(d);
            for n in [
                0u64,
                1,
                d - 1,
                d,
                d + 1,
                7 * d + 3,
                u32::MAX as u64 - 1,
                u32::MAX as u64,
            ] {
                assert_eq!(f.div(n), n / d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn certificate_distinguishes_full_grid_from_clipped_windows() {
        // The pruned-frontier certificate classifies acceptances for the
        // `router.window_fallbacks` counter: a window covering the grid
        // prunes nothing, so its bound is vacuously infinite (provably
        // optimal), while a tight window around distant endpoints must
        // prune boundary moves, giving a finite bound.
        let p = micro_placement();
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let n = grid.node_count();
        let usage = base_blockage(&p, &grid);
        let history = vec![0.0; n];
        let field = CostField::build(&grid, &usage, &history);
        let mut scratch: SearchScratch = SearchScratch::new(n);
        let s = grid.index(3, 3, 0);
        let t = grid.index(12, 9, 0);
        let full = grid.window((3, 3), (12, 9), usize::MAX);
        let mut pruned_min = 0.0;
        let cost = astar(
            &mut scratch,
            &grid,
            &field,
            s,
            t,
            (12, 9),
            &full,
            1.0,
            false,
            &mut pruned_min,
        );
        assert!(cost.is_some());
        assert_eq!(pruned_min, f64::INFINITY, "nothing pruned on full grid");
        // A tight window around distant endpoints must prune something,
        // giving a finite certificate bound.
        let tight = grid.window((3, 3), (12, 9), 1);
        let cost_tight = astar(
            &mut scratch,
            &grid,
            &field,
            s,
            t,
            (12, 9),
            &tight,
            1.0,
            false,
            &mut pruned_min,
        );
        assert!(cost_tight.is_some());
        assert!(pruned_min.is_finite(), "window boundary was reached");

        // A sharpened search on a congested window still terminates with
        // a sound certificate: the frontier fold leaves a finite bound
        // (the unexpanded entries are real full-grid candidates) and
        // counts them as heuristic prunes.
        let mut hot = usage.clone();
        for u in &mut hot {
            *u += 30.0; // every gcell over capacity → floor > 0
        }
        let hot_field = CostField::build(&grid, &hot, &history);
        let win = grid.window((3, 3), (12, 9), 2);
        let (floor, _) = hot_field.corridor_floor(&grid, &win);
        assert!(floor > 0.0, "saturated corridor must have a nonzero floor");
        let hscale = 1.0 + floor / grid.gcell_um;
        let before = scratch.counters.heuristic_prunes;
        let sharp = astar(
            &mut scratch,
            &grid,
            &hot_field,
            s,
            t,
            (12, 9),
            &win,
            hscale,
            false,
            &mut pruned_min,
        );
        assert!(sharp.is_some());
        assert!(
            scratch.counters.heuristic_prunes > before,
            "sharpened search should leave unexpanded frontier entries"
        );
    }
}
