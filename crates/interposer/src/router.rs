//! PathFinder-style congestion-negotiated A* routing.
//!
//! Every lateral net is routed by A* over the gcell grid; gcell usage is
//! tracked per layer, and rip-up-and-reroute iterations raise history
//! costs on over-subscribed gcells until the solution fits (or the
//! iteration budget is spent). Layers carry a small cost bias so routing
//! stays low in the stack unless congestion pushes it up — which is what
//! makes the "metal layers used" statistic of Table IV emerge from track
//! supply rather than being an input.
//!
//! # Parallel routing
//!
//! With more than one worker ([`techlib::par::thread_count`]),
//! [`route_all`] routes nets in *speculative batches*: every net of a
//! batch runs A* concurrently against a usage snapshot taken at the
//! batch boundary, recording the set of gcells whose congestion it
//! examined (its *footprint*). Batch results are then committed strictly
//! in net order; a speculative route is accepted only if no
//! earlier-committed net of the same batch dirtied a gcell in its
//! footprint, and is re-routed on the spot otherwise. A* is a
//! deterministic function of the usage values it reads, so an accepted
//! route is bit-identical to what the sequential pass would have
//! produced — `route_all` returns byte-identical results for any worker
//! count, only wall-clock changes.

use crate::diemap::{DiePlacement, NetClass};
use crate::grid::RoutingGrid;
use crate::RouteError;
use serde::Serialize;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Cost of a via between adjacent layers, in µm-equivalent wirelength.
pub const VIA_COST_UM: f64 = 30.0;
/// Penalty multiplier for non-preferred-direction moves.
pub const NONPREF_PENALTY: f64 = 1.5;
/// Present-congestion penalty per unit overflow, µm-equivalent.
pub const PRESENT_PENALTY_UM: f64 = 200.0;
/// History increment per overflowed gcell per iteration, µm-equivalent.
pub const HISTORY_INC_UM: f64 = 60.0;
/// Rip-up-and-reroute iterations.
pub const MAX_ITERATIONS: usize = 3;
/// Speculatively routed nets per worker per batch. Larger batches expose
/// more parallelism but raise the chance a footprint conflict forces a
/// sequential re-route.
pub const SPECULATIVE_BATCH_PER_WORKER: usize = 2;

/// One routed net.
#[derive(Debug, Clone, Serialize)]
pub struct RoutedNet {
    /// Net id (index into the placement's net list).
    pub id: usize,
    /// Lateral wirelength, µm.
    pub length_um: f64,
    /// Via count (layer changes plus the two bump microvias).
    pub vias: usize,
    /// Highest signal layer touched (0-based).
    pub max_layer: usize,
    /// Path as (x, y, layer) gcell steps.
    pub path: Vec<(usize, usize, usize)>,
}

#[derive(PartialEq)]
struct HeapItem {
    f: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f.
        other
            .f
            .partial_cmp(&self.f)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Pre-seeds gcell usage with the blockage that exists before any signal
/// is routed: every bump pad occupies the top layer at its gcell, and
/// every P/G bump's stacked via (down to the power planes below the
/// routing stack) blocks all signal layers. On glass, one 22 µm via
/// consumes more than an entire gcell-layer of 4 µm-pitch tracks — the
/// physical cause of the serpentine escapes and long worst-case nets of
/// Table IV.
pub fn base_blockage(placement: &DiePlacement, grid: &RoutingGrid) -> Vec<f64> {
    let mut usage = vec![0.0; grid.node_count()];
    for die in &placement.dies {
        for bump in &die.bumps.bumps {
            let (gx, gy) = grid.gcell_of(die.origin_um.0 + bump.x_um, die.origin_um.1 + bump.y_um);
            // Pad on the top routing layer.
            usage[grid.index(gx, gy, 0)] += grid.pad_block_tracks;
            if !matches!(bump.role, chiplet::bumpmap::BumpRole::Signal(_)) {
                // P/G stacked via through every signal layer below.
                for l in 1..grid.layers {
                    usage[grid.index(gx, gy, l)] += grid.via_block_tracks;
                }
            }
        }
    }
    usage
}

/// The set of gcell nodes whose congestion a speculative A* run read.
///
/// Bitmap + insertion list: `mark` is O(1), and validation walks only the
/// nodes actually touched rather than the whole grid.
struct Footprint {
    words: Vec<u64>,
    touched: Vec<u32>,
}

impl Footprint {
    fn new(nodes: usize) -> Footprint {
        Footprint {
            words: vec![0; nodes.div_ceil(64)],
            touched: Vec::new(),
        }
    }

    fn mark(&mut self, node: usize) {
        let (w, b) = (node / 64, node % 64);
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.touched.push(node as u32);
        }
    }
}

/// Adds `net`'s path to the usage map, stamping every modified node with
/// `epoch` so later speculative routes of the same batch can detect the
/// conflict.
fn commit(grid: &RoutingGrid, net: &RoutedNet, usage: &mut [f64], dirty: &mut [u32], epoch: u32) {
    for w in net.path.windows(2) {
        let (x0, y0, l0) = w[0];
        let (x1, y1, l1) = w[1];
        if l0 != l1 {
            // Vias consume track area on both layers.
            let a = grid.index(x0, y0, l0);
            let b = grid.index(x1, y1, l1);
            usage[a] += grid.via_block_tracks;
            usage[b] += grid.via_block_tracks;
            dirty[a] = epoch;
            dirty[b] = epoch;
        } else {
            let b = grid.index(x1, y1, l1);
            usage[b] += 1.0;
            dirty[b] = epoch;
        }
    }
}

/// Routes all lateral nets of `placement` on `grid`.
///
/// Uses [`techlib::par::thread_count`] workers; the result is
/// byte-identical for every worker count (see the module docs).
///
/// # Errors
///
/// Returns [`RouteError::Unroutable`] if a net has no path at all (should
/// not happen on a connected grid).
pub fn route_all(
    placement: &DiePlacement,
    grid: &RoutingGrid,
) -> Result<Vec<RoutedNet>, RouteError> {
    route_all_with_workers(placement, grid, techlib::par::thread_count())
}

/// [`route_all`] with an explicit worker count (for benchmarks and the
/// parallel-equals-sequential tests).
///
/// # Errors
///
/// Returns [`RouteError::Unroutable`] if a net has no path at all.
pub fn route_all_with_workers(
    placement: &DiePlacement,
    grid: &RoutingGrid,
    workers: usize,
) -> Result<Vec<RoutedNet>, RouteError> {
    if techlib::faults::armed("router.escape") {
        // Injected fault: the escape/channel router gives up on the first
        // net, the same typed error a congested grid would produce.
        return Err(RouteError::Unroutable { net: 0 });
    }
    let base = base_blockage(placement, grid);
    let mut usage: Vec<f64> = base.clone();
    let mut history: Vec<f64> = vec![0.0; grid.node_count()];

    // Lateral nets only, longest first (hardest nets claim resources
    // first; PathFinder history resolves the rest).
    let mut order: Vec<&crate::diemap::NetSpec> = placement
        .nets
        .iter()
        .filter(|n| n.class != NetClass::IntraTileStackedVia)
        .collect();
    order.sort_by(|a, b| {
        placement
            .net_manhattan_um(b)
            .partial_cmp(&placement.net_manhattan_um(a))
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });

    // Epoch-stamped dirty map: `dirty[i] == epoch` means node `i`'s usage
    // changed during the current batch. Bumping the epoch clears the map
    // in O(1). Epoch 0 is reserved so the sequential path's commits never
    // match a check.
    let mut dirty: Vec<u32> = vec![0; grid.node_count()];
    let mut epoch: u32 = 0;

    let mut routed: Vec<RoutedNet> = Vec::new();
    for iteration in 0..MAX_ITERATIONS {
        usage.copy_from_slice(&base);
        routed.clear();
        if workers <= 1 {
            for net in &order {
                let r = route_one(placement, grid, net, &usage, &history)
                    .ok_or(RouteError::Unroutable { net: net.id })?;
                commit(grid, &r, &mut usage, &mut dirty, 0);
                routed.push(r);
            }
        } else {
            for batch in order.chunks(workers * SPECULATIVE_BATCH_PER_WORKER) {
                epoch += 1;
                // Route the whole batch against the snapshot, recording
                // which nodes each A* read congestion from.
                let speculative = techlib::par::ordered_map_with(workers, batch, |net| {
                    let mut fp = Footprint::new(grid.node_count());
                    let r = route_traced(placement, grid, net, &usage, &history, Some(&mut fp));
                    (r, fp)
                });
                // Commit in net order, validating each speculative route
                // against the nodes dirtied by earlier commits.
                for (net, (r, fp)) in batch.iter().zip(speculative) {
                    let clean = fp.touched.iter().all(|&n| dirty[n as usize] != epoch);
                    let r = match r {
                        Some(r) if clean => r,
                        _ => route_one(placement, grid, net, &usage, &history)
                            .ok_or(RouteError::Unroutable { net: net.id })?,
                    };
                    commit(grid, &r, &mut usage, &mut dirty, epoch);
                    routed.push(r);
                }
            }
        }
        // Bump history where wire demand (beyond the fixed blockage)
        // exceeds capacity.
        let mut overflowed = false;
        for i in 0..usage.len() {
            if usage[i] > grid.capacity && usage[i] > base[i] {
                history[i] += HISTORY_INC_UM * (usage[i] - grid.capacity).min(10.0);
                overflowed = true;
            }
        }
        if !overflowed || iteration == MAX_ITERATIONS - 1 {
            break;
        }
    }
    routed.sort_by_key(|r| r.id);
    // Out-of-band work counters: nets in the final solution and how many
    // speculative batch rounds were run (0 on the sequential path).
    techlib::obs::add(techlib::obs::ROUTER_NETS_ROUTED, routed.len() as u64);
    techlib::obs::add(techlib::obs::ROUTER_BATCH_ROUNDS, u64::from(epoch));
    Ok(routed)
}

fn route_one(
    placement: &DiePlacement,
    grid: &RoutingGrid,
    net: &crate::diemap::NetSpec,
    usage: &[f64],
    history: &[f64],
) -> Option<RoutedNet> {
    route_traced(placement, grid, net, usage, history, None)
}

fn route_traced(
    placement: &DiePlacement,
    grid: &RoutingGrid,
    net: &crate::diemap::NetSpec,
    usage: &[f64],
    history: &[f64],
    mut footprint: Option<&mut Footprint>,
) -> Option<RoutedNet> {
    let s = placement.dies[net.from.0].signal_position(net.from.1)?;
    let t = placement.dies[net.to.0].signal_position(net.to.1)?;
    let (sx, sy) = grid.gcell_of(s.0, s.1);
    let (tx, ty) = grid.gcell_of(t.0, t.1);
    let start = grid.index(sx, sy, 0);
    let goal = grid.index(tx, ty, 0);

    let n = grid.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<u32> = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[start] = 0.0;
    heap.push(HeapItem {
        f: 0.0,
        node: start,
    });

    let h = |x: usize, y: usize| -> f64 {
        let dx = (x as f64 - tx as f64).abs();
        let dy = (y as f64 - ty as f64).abs();
        if grid.diagonal {
            (dx.max(dy) + (std::f64::consts::SQRT_2 - 1.0) * dx.min(dy)) * grid.gcell_um
        } else {
            (dx + dy) * grid.gcell_um
        }
    };

    let congestion = |node: usize| -> f64 {
        let over = (usage[node] + 1.0 - grid.capacity).max(0.0);
        history[node] + PRESENT_PENALTY_UM * over
    };

    while let Some(HeapItem { f: _, node }) = heap.pop() {
        if node == goal {
            break;
        }
        let layer = node / (grid.rows * grid.cols);
        let rem = node % (grid.rows * grid.cols);
        let y = rem / grid.cols;
        let x = rem % grid.cols;
        let d = dist[node];

        let mut try_move =
            |nx: i64, ny: i64, nl: i64, step: f64, heap: &mut BinaryHeap<HeapItem>| {
                if nx < 0
                    || ny < 0
                    || nl < 0
                    || nx >= grid.cols as i64
                    || ny >= grid.rows as i64
                    || nl >= grid.layers as i64
                {
                    return;
                }
                let (nx, ny, nl) = (nx as usize, ny as usize, nl as usize);
                let ni = grid.index(nx, ny, nl);
                // Everything usage-dependent about this A* flows through the
                // congestion read below, so the footprint is exactly the set
                // of nodes passed to it.
                if let Some(fp) = footprint.as_deref_mut() {
                    fp.mark(ni);
                }
                // Small upper-layer bias keeps routing low when uncongested.
                let nd = d + step + congestion(ni) + nl as f64 * 0.5;
                if nd < dist[ni] {
                    dist[ni] = nd;
                    prev[ni] = node as u32;
                    heap.push(HeapItem {
                        f: nd + h(nx, ny),
                        node: ni,
                    });
                }
            };

        let hp = grid.horizontal_preferred(layer);
        let hx = if hp { 1.0 } else { NONPREF_PENALTY };
        let hy = if hp { NONPREF_PENALTY } else { 1.0 };
        let g = grid.gcell_um;
        try_move(x as i64 + 1, y as i64, layer as i64, g * hx, &mut heap);
        try_move(x as i64 - 1, y as i64, layer as i64, g * hx, &mut heap);
        try_move(x as i64, y as i64 + 1, layer as i64, g * hy, &mut heap);
        try_move(x as i64, y as i64 - 1, layer as i64, g * hy, &mut heap);
        if grid.diagonal {
            let gd = g * std::f64::consts::SQRT_2;
            try_move(x as i64 + 1, y as i64 + 1, layer as i64, gd, &mut heap);
            try_move(x as i64 + 1, y as i64 - 1, layer as i64, gd, &mut heap);
            try_move(x as i64 - 1, y as i64 + 1, layer as i64, gd, &mut heap);
            try_move(x as i64 - 1, y as i64 - 1, layer as i64, gd, &mut heap);
        }
        try_move(x as i64, y as i64, layer as i64 + 1, VIA_COST_UM, &mut heap);
        try_move(x as i64, y as i64, layer as i64 - 1, VIA_COST_UM, &mut heap);
    }

    if dist[goal].is_infinite() {
        return None;
    }

    // Reconstruct.
    let mut path = Vec::new();
    let mut cur = goal;
    loop {
        let layer = cur / (grid.rows * grid.cols);
        let rem = cur % (grid.rows * grid.cols);
        path.push((rem % grid.cols, rem / grid.cols, layer));
        if cur == start {
            break;
        }
        cur = prev[cur] as usize;
    }
    path.reverse();

    let mut length = 0.0;
    let mut vias = 2; // bump microvia at each end
    let mut max_layer = 0;
    for w in path.windows(2) {
        let (x0, y0, l0) = w[0];
        let (x1, y1, l1) = w[1];
        if l0 != l1 {
            vias += 1;
        } else {
            let dx = (x1 as f64 - x0 as f64).abs();
            let dy = (y1 as f64 - y0 as f64).abs();
            length += (dx + dy).max(dx.hypot(dy).min(dx + dy)) * grid.gcell_um;
        }
        max_layer = max_layer.max(l1).max(l0);
    }
    // Diagonal steps measured euclidean.
    if grid.diagonal {
        length = 0.0;
        for w in path.windows(2) {
            let (x0, y0, l0) = w[0];
            let (x1, y1, l1) = w[1];
            if l0 == l1 {
                let dx = (x1 as f64 - x0 as f64) * grid.gcell_um;
                let dy = (y1 as f64 - y0 as f64) * grid.gcell_um;
                length += dx.hypot(dy);
            }
        }
    }

    Some(RoutedNet {
        id: net.id,
        length_um: length,
        vias,
        max_layer,
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diemap::place_dies;
    use techlib::spec::{InterposerKind, InterposerSpec};

    fn route(tech: InterposerKind) -> (DiePlacement, Vec<RoutedNet>) {
        let l = crate::report::cached_layout(tech).unwrap();
        (l.placement.clone(), l.routed_nets.clone())
    }

    #[test]
    fn silicon_routes_all_530_nets() {
        let (p, r) = route(InterposerKind::Silicon25D);
        assert_eq!(r.len(), p.nets.len());
        for net in &r {
            assert!(net.length_um > 0.0);
            assert!(net.vias >= 2);
        }
    }

    #[test]
    fn glass_3d_routes_only_intertile_nets() {
        let (_, r) = route(InterposerKind::Glass3D);
        assert_eq!(r.len(), 68);
    }

    #[test]
    fn routed_length_at_least_manhattan() {
        let (p, r) = route(InterposerKind::Silicon25D);
        for net in &r {
            let spec = &p.nets[net.id];
            let manhattan = p.net_manhattan_um(spec);
            // Gcell quantisation allows ~2 gcells of slack.
            assert!(
                net.length_um + 2.0 * 20.0 >= manhattan * 0.8,
                "net {} routed {} vs manhattan {manhattan}",
                net.id,
                net.length_um
            );
        }
    }

    #[test]
    fn glass_uses_more_layers_than_silicon() {
        // 5 tracks/gcell/layer vs 25: glass must spill upward.
        let (_, rg) = route(InterposerKind::Glass25D);
        let (_, rs) = route(InterposerKind::Silicon25D);
        let max_g = rg.iter().map(|n| n.max_layer).max().unwrap();
        let max_s = rs.iter().map(|n| n.max_layer).max().unwrap();
        assert!(max_g > max_s, "glass {max_g} vs silicon {max_s}");
    }

    #[test]
    fn diagonal_shortens_organic_routes() {
        let (ps, rs) = route(InterposerKind::Shinko);
        let total: f64 = rs.iter().map(|n| n.length_um).sum();
        let manhattan: f64 = ps
            .nets
            .iter()
            .filter(|n| n.class != crate::diemap::NetClass::IntraTileStackedVia)
            .map(|n| ps.net_manhattan_um(n))
            .sum();
        // Diagonal routing beats pure Manhattan lower bound × detour.
        assert!(
            total < manhattan * 1.3,
            "total {total} vs manhattan {manhattan}"
        );
    }

    #[test]
    fn routing_is_deterministic() {
        let (_, a) = route(InterposerKind::Glass25D);
        let (_, b) = route(InterposerKind::Glass25D);
        let ta: f64 = a.iter().map(|n| n.length_um).sum();
        let tb: f64 = b.iter().map(|n| n.length_um).sum();
        assert_eq!(ta, tb);
    }

    #[test]
    fn speculative_batches_match_sequential_exactly() {
        // The heart of the determinism guarantee: batched parallel
        // routing must produce bit-identical paths to the one-net-at-a-
        // time pass, including on a congested grid where speculative
        // routes conflict and re-route.
        let p = wide_micro_placement(16);
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let seq = route_all_with_workers(&p, &grid, 1).unwrap();
        for workers in [2, 4, 7] {
            let par = route_all_with_workers(&p, &grid, workers).unwrap();
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.path, b.path, "net {} ({} workers)", a.id, workers);
                assert!(a.length_um == b.length_um && a.vias == b.vias);
            }
        }
    }

    #[test]
    fn speculative_batches_match_on_real_silicon_layout() {
        let p = place_dies(InterposerKind::Silicon25D);
        let spec = InterposerSpec::for_kind(InterposerKind::Silicon25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let seq = route_all_with_workers(&p, &grid, 1).unwrap();
        let par = route_all_with_workers(&p, &grid, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.path, b.path, "net {}", a.id);
        }
    }

    #[test]
    fn no_gcell_exceeds_capacity_after_negotiation_on_silicon() {
        let p = place_dies(InterposerKind::Silicon25D);
        let spec = InterposerSpec::for_kind(InterposerKind::Silicon25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let r = route_all(&p, &grid).unwrap();
        // Wire demand alone (pads and P/G stacks are fixed blockage the
        // router cannot avoid at its own endpoints) must fit the tracks.
        let mut usage = vec![0.0; grid.node_count()];
        for net in &r {
            for w in net.path.windows(2) {
                let (x0, y0, l0) = w[0];
                let (x1, y1, l1) = w[1];
                if l0 != l1 {
                    usage[grid.index(x0, y0, l0)] += grid.via_block_tracks;
                    usage[grid.index(x1, y1, l1)] += grid.via_block_tracks;
                } else {
                    usage[grid.index(x1, y1, l1)] += 1.0;
                }
            }
        }
        let overflow = usage.iter().filter(|&&u| u > grid.capacity).count();
        assert_eq!(overflow, 0, "silicon has 25 tracks/gcell: no overflow");
    }

    fn micro_placement() -> DiePlacement {
        wide_micro_placement(4)
    }

    fn wide_micro_placement(signals: usize) -> DiePlacement {
        // Two n-signal dies a few hundred µm apart on a tiny synthetic
        // package; every net crosses the same gap, so batched routing
        // sees real footprint conflicts.
        use chiplet::bumpmap::BumpPlan;
        use netlist::chiplet_netlist::ChipletKind;
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let bumps = BumpPlan::with_counts(signals, 2, &spec);
        let mk = |tile: usize, x: f64| crate::diemap::DieSite {
            tile,
            kind: ChipletKind::Logic,
            origin_um: (x, 50.0),
            width_um: bumps.bump_limited_width_um(),
            embedded: false,
            bumps: bumps.clone(),
            signal_map: (0..signals).collect(),
        };
        let nets = (0..signals)
            .map(|i| crate::diemap::NetSpec {
                id: i,
                class: crate::diemap::NetClass::IntraTileLateral,
                from: (0, i),
                to: (1, i),
            })
            .collect();
        DiePlacement {
            tech: InterposerKind::Glass25D,
            footprint_um: (600.0, 300.0),
            dies: vec![mk(0, 50.0), mk(1, 350.0)],
            nets,
        }
    }

    #[test]
    fn micro_placement_routes_every_net() {
        let p = micro_placement();
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let routed = route_all(&p, &grid).unwrap();
        assert_eq!(routed.len(), 4);
        for net in &routed {
            // Dies are ~300 µm apart: every route crosses the gap.
            assert!(net.length_um >= 200.0, "net {}: {}", net.id, net.length_um);
            assert!(net.vias >= 2);
        }
    }

    #[test]
    fn coincident_endpoints_route_to_zero_length() {
        // A net whose endpoints share a gcell must not panic and must
        // report zero lateral wire (bump vias only).
        let mut p = micro_placement();
        p.nets = vec![crate::diemap::NetSpec {
            id: 0,
            class: crate::diemap::NetClass::IntraTileLateral,
            from: (0, 0),
            to: (0, 0),
        }];
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let routed = route_all(&p, &grid).unwrap();
        assert_eq!(routed.len(), 1);
        assert_eq!(routed[0].length_um, 0.0);
        assert_eq!(routed[0].vias, 2);
    }

    #[test]
    fn glass_blockage_saturates_pad_gcells() {
        let p = place_dies(InterposerKind::Glass25D);
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(p.footprint_um, &spec).unwrap();
        let base = base_blockage(&p, &grid);
        // 22 µm vias on a 4 µm pitch: one pad exceeds a gcell-layer.
        assert!(grid.via_block_tracks > grid.capacity);
        let blocked = base.iter().filter(|&&u| u >= grid.capacity).count();
        assert!(blocked > 500, "blocked gcells = {blocked}");
    }

    #[test]
    fn glass_worst_net_detours_beyond_silicon() {
        // The Table IV / Table V effect: glass escapes serpentine around
        // blocked gcells, so its worst L2M net is much longer than
        // silicon's on the same die placement.
        let (pg, rg) = route(InterposerKind::Glass25D);
        let (ps, rs) = route(InterposerKind::Silicon25D);
        let worst = |p: &DiePlacement, r: &[RoutedNet]| -> f64 {
            r.iter()
                .filter(|n| p.nets[n.id].class == crate::diemap::NetClass::IntraTileLateral)
                .map(|n| n.length_um)
                .fold(0.0, f64::max)
        };
        assert!(
            worst(&pg, &rg) > worst(&ps, &rs),
            "glass {} vs silicon {}",
            worst(&pg, &rg),
            worst(&ps, &rs)
        );
    }
}
