//! Congestion analysis and heat-map rendering of routed layouts.
//!
//! Complements [`crate::drc`]: instead of pass/fail, this reports *where*
//! the demand concentrates — the data behind the paper's observation that
//! glass routing congests around the bump fields — and renders it as an
//! SVG heat map per layer.

use crate::grid::RoutingGrid;
use crate::report::InterposerLayout;
use crate::router::{accumulate_path, base_blockage};
use crate::RouteError;
use serde::Serialize;
use std::fmt::Write as _;
use techlib::spec::InterposerSpec;

/// Per-layer congestion summary.
#[derive(Debug, Clone, Serialize)]
pub struct LayerCongestion {
    /// Layer index (0 = top signal metal).
    pub layer: usize,
    /// Mean utilisation of used gcells (demand / capacity).
    pub mean_utilisation: f64,
    /// Peak utilisation.
    pub peak_utilisation: f64,
    /// Gcells above 80 % utilisation.
    pub hot_gcells: usize,
}

/// The congestion analysis of one layout.
#[derive(Debug, Clone, Serialize)]
pub struct CongestionMap {
    /// Grid dimensions (cols, rows, layers).
    pub dims: (usize, usize, usize),
    /// Demand per node (wire tracks + via/pad blockage), `[layer][y*cols+x]`.
    pub demand: Vec<Vec<f64>>,
    /// Track capacity per gcell-layer.
    pub capacity: f64,
    /// Per-layer summaries.
    pub layers: Vec<LayerCongestion>,
}

/// Computes the congestion map of `layout`.
///
/// # Errors
///
/// Returns [`RouteError::BadGrid`] if the layout's footprint cannot host
/// a routing grid (degenerate dimensions).
pub fn analyze(layout: &InterposerLayout) -> Result<CongestionMap, RouteError> {
    let spec = InterposerSpec::for_kind(layout.placement.tech);
    let grid = RoutingGrid::new(layout.placement.footprint_um, &spec)
        .map_err(|reason| RouteError::BadGrid { reason })?;
    let mut usage = base_blockage(&layout.placement, &grid);
    for net in &layout.routed_nets {
        // Same accumulation the router commits, so the map cannot drift
        // from what negotiation actually charged.
        accumulate_path(&grid, &net.path, &mut usage);
    }
    let per = grid.cols * grid.rows;
    let mut demand = Vec::with_capacity(grid.layers);
    let mut layers = Vec::with_capacity(grid.layers);
    for l in 0..grid.layers {
        let slice: Vec<f64> = usage[l * per..(l + 1) * per].to_vec();
        let used: Vec<f64> = slice.iter().cloned().filter(|&u| u > 0.0).collect();
        let mean = if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<f64>() / used.len() as f64 / grid.capacity
        };
        let peak = slice.iter().cloned().fold(0.0, f64::max) / grid.capacity;
        let hot = slice.iter().filter(|&&u| u > 0.8 * grid.capacity).count();
        layers.push(LayerCongestion {
            layer: l,
            mean_utilisation: mean,
            peak_utilisation: peak,
            hot_gcells: hot,
        });
        demand.push(slice);
    }
    Ok(CongestionMap {
        dims: (grid.cols, grid.rows, grid.layers),
        demand,
        capacity: grid.capacity,
        layers,
    })
}

/// Renders one layer of the congestion map as an SVG heat map
/// (green → red at the capacity line).
pub fn render_layer(map: &CongestionMap, layer: usize, cell_px: f64) -> String {
    let (cols, rows, _) = map.dims;
    let (w, h) = (cols as f64 * cell_px, rows as f64 * cell_px);
    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.1} {h:.1}">"##
    );
    for y in 0..rows {
        for x in 0..cols {
            let u = (map.demand[layer][y * cols + x] / map.capacity).clamp(0.0, 1.5) / 1.5;
            if u <= 0.0 {
                continue;
            }
            let r = (255.0 * u) as u8;
            let g = (200.0 * (1.0 - u)) as u8;
            let _ = writeln!(
                out,
                r##"<rect x="{:.1}" y="{:.1}" width="{cell_px:.1}" height="{cell_px:.1}" fill="#{r:02x}{g:02x}30"/>"##,
                x as f64 * cell_px,
                y as f64 * cell_px,
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::cached_layout;
    use techlib::spec::InterposerKind;

    #[test]
    fn glass_is_more_congested_than_silicon() {
        let gl = analyze(&cached_layout(InterposerKind::Glass25D).unwrap()).unwrap();
        let si = analyze(&cached_layout(InterposerKind::Silicon25D).unwrap()).unwrap();
        let hot = |m: &CongestionMap| m.layers.iter().map(|l| l.hot_gcells).sum::<usize>();
        assert!(hot(&gl) > 3 * hot(&si), "{} vs {}", hot(&gl), hot(&si));
    }

    #[test]
    fn top_layer_carries_the_pad_blockage() {
        let m = analyze(&cached_layout(InterposerKind::Glass25D).unwrap()).unwrap();
        // Layer 0 holds every landing pad: it must show the most hot
        // gcells of any layer.
        let top = m.layers[0].hot_gcells;
        for l in &m.layers[1..] {
            assert!(
                top >= l.hot_gcells,
                "layer {}: {} vs {top}",
                l.layer,
                l.hot_gcells
            );
        }
    }

    #[test]
    fn svg_renders_only_used_cells() {
        let m = analyze(&cached_layout(InterposerKind::Glass3D).unwrap()).unwrap();
        let svg = render_layer(&m, 0, 4.0);
        assert!(svg.starts_with("<svg"));
        let rects = svg.matches("<rect").count();
        assert!(rects > 0);
        assert!(rects < m.dims.0 * m.dims.1, "empty cells must be skipped");
    }

    #[test]
    fn utilisation_stats_are_sane() {
        let m = analyze(&cached_layout(InterposerKind::Shinko).unwrap()).unwrap();
        for l in &m.layers {
            assert!(l.mean_utilisation >= 0.0);
            assert!(l.peak_utilisation >= l.mean_utilisation);
        }
    }
}
