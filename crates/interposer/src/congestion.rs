//! Congestion analysis and heat-map rendering of routed layouts.
//!
//! Complements [`crate::drc`]: instead of pass/fail, this reports *where*
//! the demand concentrates — the data behind the paper's observation that
//! glass routing congests around the bump fields — and renders it as an
//! SVG heat map per layer.

use crate::grid::{GridWindow, RoutingGrid};
use crate::report::InterposerLayout;
use crate::router::{accumulate_path, base_blockage, LAYER_BIAS_UM, PRESENT_PENALTY_UM};
use crate::RouteError;
use serde::Serialize;
use std::fmt::Write as _;
use techlib::spec::InterposerSpec;

// ---------------------------------------------------------------------
// The router's fused cost field.
// ---------------------------------------------------------------------

/// Fused congestion-cost field the router's A* reads in its inner loop.
///
/// The historical hot path recomputed `history[i] + PRESENT_PENALTY_UM ·
/// max(0, usage[i] + 1 − capacity)` from two arrays on every neighbor
/// probe; this folds the expression into one `penalty` array maintained
/// incrementally as paths commit, halving the random-access traffic of
/// the relaxation loop. The values are produced by the *identical*
/// floating-point expression, so search results stay bit-for-bit.
///
/// `floor2d` additionally caches, per lateral gcell, the cheapest
/// congestion-plus-layer-bias any layer of that gcell charges a lateral
/// entry — the ingredient of the corridor heuristic's admissible lower
/// bound (see `router::route_with_margin`). It is refreshed alongside
/// `penalty`, one `O(layers)` gcell recompute per touched node.
#[derive(Debug, Clone)]
pub struct CostField {
    /// Per node: `history + PRESENT_PENALTY_UM · max(0, usage + 1 − cap)`.
    pub penalty: Vec<f64>,
    /// Per lateral gcell (`y · cols + x`): `min` over layers of
    /// `LAYER_BIAS_UM · layer + penalty`.
    pub floor2d: Vec<f64>,
}

#[inline]
fn node_penalty(grid: &RoutingGrid, usage: &[f64], history: &[f64], node: usize) -> f64 {
    // Must stay the exact expression of the pre-fusion congestion
    // closure: same operations, same order, same rounding.
    let over = (usage[node] + 1.0 - grid.capacity).max(0.0);
    history[node] + PRESENT_PENALTY_UM * over
}

impl CostField {
    /// Builds the field from scratch (`O(nodes)`).
    pub fn build(grid: &RoutingGrid, usage: &[f64], history: &[f64]) -> CostField {
        let mut field = CostField {
            penalty: vec![0.0; grid.node_count()],
            floor2d: vec![0.0; grid.cols * grid.rows],
        };
        field.rebuild(grid, usage, history);
        field
    }

    /// Recomputes every entry (used at iteration boundaries, where
    /// history bumps and rip-ups touch arbitrary node sets).
    pub fn rebuild(&mut self, grid: &RoutingGrid, usage: &[f64], history: &[f64]) {
        for node in 0..grid.node_count() {
            self.penalty[node] = node_penalty(grid, usage, history, node);
        }
        let per = grid.cols * grid.rows;
        for gcell in 0..per {
            self.floor2d[gcell] = self.gcell_floor(grid, gcell);
        }
    }

    #[inline]
    fn gcell_floor(&self, grid: &RoutingGrid, gcell: usize) -> f64 {
        let per = grid.cols * grid.rows;
        let mut floor = f64::INFINITY;
        for l in 0..grid.layers {
            let v = l as f64 * LAYER_BIAS_UM + self.penalty[l * per + gcell];
            if v < floor {
                floor = v;
            }
        }
        floor
    }

    /// Refreshes one node's penalty (and its gcell's floor) after a
    /// usage change.
    #[inline]
    pub fn refresh_node(
        &mut self,
        grid: &RoutingGrid,
        usage: &[f64],
        history: &[f64],
        node: usize,
    ) {
        self.penalty[node] = node_penalty(grid, usage, history, node);
        let gcell = node % (grid.cols * grid.rows);
        self.floor2d[gcell] = self.gcell_floor(grid, gcell);
    }

    /// Refreshes exactly the nodes a path commit (or rip-up) charged —
    /// the same node set `router::accumulate_path` touches.
    pub fn refresh_path(
        &mut self,
        grid: &RoutingGrid,
        path: &[(usize, usize, usize)],
        usage: &[f64],
        history: &[f64],
    ) {
        for w in path.windows(2) {
            let (x0, y0, l0) = w[0];
            let (x1, y1, l1) = w[1];
            if l0 != l1 {
                self.refresh_node(grid, usage, history, grid.index(x0, y0, l0));
                self.refresh_node(grid, usage, history, grid.index(x1, y1, l1));
            } else {
                self.refresh_node(grid, usage, history, grid.index(x1, y1, l1));
            }
        }
    }

    /// The cheapest lateral-entry excess (layer bias + congestion
    /// penalty) over every gcell of `win`, and the first node (row-major
    /// gcell scan, then lowest layer) realising it.
    ///
    /// Every lateral step of a path confined to `win` pays at least this
    /// excess on top of its geometric step length, which is what makes
    /// the corridor-scaled heuristic admissible (see DESIGN.md §16). The
    /// returned node is the value's *witness*: as long as its penalty is
    /// unchanged, the window minimum is unchanged (penalties only grow
    /// within a routing pass), so speculative searches record just this
    /// node in their read footprint rather than the whole window scan.
    pub fn corridor_floor(&self, grid: &RoutingGrid, win: &GridWindow) -> (f64, usize) {
        let mut floor = f64::INFINITY;
        let mut at = (win.x0, win.y0);
        for y in win.y0..=win.y1 {
            let row = y * grid.cols;
            for x in win.x0..=win.x1 {
                let v = self.floor2d[row + x];
                if v < floor {
                    floor = v;
                    at = (x, y);
                }
            }
        }
        let per = grid.cols * grid.rows;
        let gcell = at.1 * grid.cols + at.0;
        for l in 0..grid.layers {
            if l as f64 * LAYER_BIAS_UM + self.penalty[l * per + gcell] == floor {
                return (floor, l * per + gcell);
            }
        }
        // Unreachable: floor2d[gcell] is the min of exactly these
        // values; the layer-0 fallback keeps the path panic-free.
        (floor, gcell)
    }
}

/// Per-layer congestion summary.
#[derive(Debug, Clone, Serialize)]
pub struct LayerCongestion {
    /// Layer index (0 = top signal metal).
    pub layer: usize,
    /// Mean utilisation of used gcells (demand / capacity).
    pub mean_utilisation: f64,
    /// Peak utilisation.
    pub peak_utilisation: f64,
    /// Gcells above 80 % utilisation.
    pub hot_gcells: usize,
}

/// The congestion analysis of one layout.
#[derive(Debug, Clone, Serialize)]
pub struct CongestionMap {
    /// Grid dimensions (cols, rows, layers).
    pub dims: (usize, usize, usize),
    /// Demand per node (wire tracks + via/pad blockage), `[layer][y*cols+x]`.
    pub demand: Vec<Vec<f64>>,
    /// Track capacity per gcell-layer.
    pub capacity: f64,
    /// Per-layer summaries.
    pub layers: Vec<LayerCongestion>,
}

/// Computes the congestion map of `layout`.
///
/// # Errors
///
/// Returns [`RouteError::BadGrid`] if the layout's footprint cannot host
/// a routing grid (degenerate dimensions).
pub fn analyze(layout: &InterposerLayout) -> Result<CongestionMap, RouteError> {
    let spec = InterposerSpec::for_kind(layout.placement.tech);
    let grid = RoutingGrid::new(layout.placement.footprint_um, &spec)
        .map_err(|reason| RouteError::BadGrid { reason })?;
    let mut usage = base_blockage(&layout.placement, &grid);
    for net in &layout.routed_nets {
        // Same accumulation the router commits, so the map cannot drift
        // from what negotiation actually charged.
        accumulate_path(&grid, &net.path, &mut usage);
    }
    let per = grid.cols * grid.rows;
    let mut demand = Vec::with_capacity(grid.layers);
    let mut layers = Vec::with_capacity(grid.layers);
    for l in 0..grid.layers {
        let slice: Vec<f64> = usage[l * per..(l + 1) * per].to_vec();
        let used: Vec<f64> = slice.iter().cloned().filter(|&u| u > 0.0).collect();
        let mean = if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<f64>() / used.len() as f64 / grid.capacity
        };
        let peak = slice.iter().cloned().fold(0.0, f64::max) / grid.capacity;
        let hot = slice.iter().filter(|&&u| u > 0.8 * grid.capacity).count();
        layers.push(LayerCongestion {
            layer: l,
            mean_utilisation: mean,
            peak_utilisation: peak,
            hot_gcells: hot,
        });
        demand.push(slice);
    }
    Ok(CongestionMap {
        dims: (grid.cols, grid.rows, grid.layers),
        demand,
        capacity: grid.capacity,
        layers,
    })
}

/// Renders one layer of the congestion map as an SVG heat map
/// (green → red at the capacity line).
pub fn render_layer(map: &CongestionMap, layer: usize, cell_px: f64) -> String {
    let (cols, rows, _) = map.dims;
    let (w, h) = (cols as f64 * cell_px, rows as f64 * cell_px);
    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.1} {h:.1}">"##
    );
    for y in 0..rows {
        for x in 0..cols {
            let u = (map.demand[layer][y * cols + x] / map.capacity).clamp(0.0, 1.5) / 1.5;
            if u <= 0.0 {
                continue;
            }
            let r = (255.0 * u) as u8;
            let g = (200.0 * (1.0 - u)) as u8;
            let _ = writeln!(
                out,
                r##"<rect x="{:.1}" y="{:.1}" width="{cell_px:.1}" height="{cell_px:.1}" fill="#{r:02x}{g:02x}30"/>"##,
                x as f64 * cell_px,
                y as f64 * cell_px,
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::cached_layout;
    use techlib::spec::InterposerKind;

    #[test]
    fn glass_is_more_congested_than_silicon() {
        let gl = analyze(&cached_layout(InterposerKind::Glass25D).unwrap()).unwrap();
        let si = analyze(&cached_layout(InterposerKind::Silicon25D).unwrap()).unwrap();
        let hot = |m: &CongestionMap| m.layers.iter().map(|l| l.hot_gcells).sum::<usize>();
        assert!(hot(&gl) > 3 * hot(&si), "{} vs {}", hot(&gl), hot(&si));
    }

    #[test]
    fn top_layer_carries_the_pad_blockage() {
        let m = analyze(&cached_layout(InterposerKind::Glass25D).unwrap()).unwrap();
        // Layer 0 holds every landing pad: it must show the most hot
        // gcells of any layer.
        let top = m.layers[0].hot_gcells;
        for l in &m.layers[1..] {
            assert!(
                top >= l.hot_gcells,
                "layer {}: {} vs {top}",
                l.layer,
                l.hot_gcells
            );
        }
    }

    #[test]
    fn svg_renders_only_used_cells() {
        let m = analyze(&cached_layout(InterposerKind::Glass3D).unwrap()).unwrap();
        let svg = render_layer(&m, 0, 4.0);
        assert!(svg.starts_with("<svg"));
        let rects = svg.matches("<rect").count();
        assert!(rects > 0);
        assert!(rects < m.dims.0 * m.dims.1, "empty cells must be skipped");
    }

    #[test]
    fn cost_field_tracks_usage_and_witnesses_the_corridor_floor() {
        let layout = cached_layout(InterposerKind::Glass25D).unwrap();
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let grid = RoutingGrid::new(layout.placement.footprint_um, &spec).unwrap();
        let mut usage = base_blockage(&layout.placement, &grid);
        let history = vec![0.0; grid.node_count()];
        let mut field = CostField::build(&grid, &usage, &history);
        // Every penalty is the exact fused expression.
        for node in (0..grid.node_count()).step_by(997) {
            let over = (usage[node] + 1.0 - grid.capacity).max(0.0);
            assert_eq!(field.penalty[node], history[node] + 200.0 * over);
        }
        // The corridor floor's witness realises the reported value, and
        // the full-grid floor on a fresh field is zero (some gcell has a
        // free layer-0 entry).
        let win = grid.window((0, 0), (grid.cols - 1, grid.rows - 1), 0);
        let (floor, witness) = field.corridor_floor(&grid, &win);
        let (_, _, wl) = grid.decompose(witness);
        assert_eq!(floor, wl as f64 * LAYER_BIAS_UM + field.penalty[witness]);
        assert_eq!(floor, 0.0);
        // An incremental refresh after a usage change matches a rebuild.
        let node = grid.index(grid.cols / 2, grid.rows / 2, 0);
        usage[node] += 40.0;
        field.refresh_node(&grid, &usage, &history, node);
        let fresh = CostField::build(&grid, &usage, &history);
        assert_eq!(field.penalty[node], fresh.penalty[node]);
        let gcell = node % (grid.cols * grid.rows);
        assert_eq!(field.floor2d[gcell], fresh.floor2d[gcell]);
    }

    #[test]
    fn utilisation_stats_are_sane() {
        let m = analyze(&cached_layout(InterposerKind::Shinko).unwrap()).unwrap();
        for l in &m.layers {
            assert!(l.mean_utilisation >= 0.0);
            assert!(l.peak_utilisation >= l.mean_utilisation);
        }
    }
}
