//! Die placement and global net list (Section VI-A, Fig. 10).
//!
//! The two-tile system has four chiplets. On 2.5D interposers they sit in
//! a 2×2 arrangement — logic dies in the left column (vertically adjacent,
//! since they carry the inter-tile link), memory dies in the right column,
//! each beside its tile's logic die. On Glass 3D each memory die is
//! embedded directly underneath its logic die, and the two stacks sit side
//! by side.

use chiplet::bumpmap::{paper_plan_with, BumpPlan};
use netlist::chiplet_netlist::ChipletKind;
use netlist::openpiton::INTRA_TILE_CUT;
use netlist::serdes::SerdesPlan;
use serde::{Deserialize, Serialize};
use techlib::spec::{InterposerKind, InterposerSpec, Stacking};

/// One placed die on (or in) the interposer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DieSite {
    /// Which tile the die belongs to (0 or 1).
    pub tile: usize,
    /// Logic or memory.
    pub kind: ChipletKind,
    /// Lower-left corner, µm.
    pub origin_um: (f64, f64),
    /// Die width (square), µm.
    pub width_um: f64,
    /// True if the die is embedded in a substrate cavity (Glass 3D mem).
    pub embedded: bool,
    /// The die's bump plan (local coordinates).
    pub bumps: BumpPlan,
    /// Signal-index → bump-signal-index permutation. The SerDes/AIB
    /// macros cluster the inter-tile interface at the die edge facing the
    /// partner logic die (Fig. 7), so those signals are remapped to
    /// edge-nearest bumps; everything else keeps the pattern order.
    pub signal_map: Vec<usize>,
}

impl DieSite {
    /// Global coordinates of signal bump `i`, µm.
    pub fn signal_position(&self, i: usize) -> Option<(f64, f64)> {
        let mapped = self.signal_map.get(i).copied().unwrap_or(i);
        self.bumps
            .signal_position(mapped)
            .map(|(x, y)| (self.origin_um.0 + x, self.origin_um.1 + y))
    }
}

/// Which die edge the inter-tile interface clusters toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Edge {
    Top,
    Bottom,
    Left,
    Right,
}

/// Remaps the logic die's inter-tile signals (indices 231..299) onto the
/// 68 signal bumps nearest `edge`, ordered along the edge so partner dies
/// pair up without crisscrossing. Intra-tile signals keep the remaining
/// bumps in pattern order.
fn edge_cluster_map(bumps: &BumpPlan, intra: usize, inter: usize, edge: Edge) -> Vec<usize> {
    let total = intra + inter;
    let mut sig_pos: Vec<(usize, f64, f64)> = (0..total)
        .filter_map(|i| bumps.signal_position(i).map(|(x, y)| (i, x, y)))
        .collect();
    // Distance from the chosen edge (smaller = closer).
    let key = |&(_, x, y): &(usize, f64, f64)| -> f64 {
        match edge {
            Edge::Top => -y,
            Edge::Bottom => y,
            Edge::Left => x,
            Edge::Right => -x,
        }
    };
    sig_pos.sort_by(|a, b| key(a).total_cmp(&key(b)));
    let mut edge_bumps: Vec<(usize, f64, f64)> = sig_pos[..inter].to_vec();
    // Order along the edge for rank matching between partner dies.
    edge_bumps.sort_by(|a, b| {
        let along = |p: &(usize, f64, f64)| match edge {
            Edge::Top | Edge::Bottom => p.1,
            Edge::Left | Edge::Right => p.2,
        };
        along(a).total_cmp(&along(b))
    });
    let mut rest: Vec<usize> = sig_pos[inter..].iter().map(|&(i, _, _)| i).collect();
    rest.sort_unstable();
    let mut map = vec![0usize; total];
    map[..intra].copy_from_slice(&rest);
    for (j, &(b, _, _)) in edge_bumps.iter().enumerate() {
        map[intra + j] = b;
    }
    map
}

/// How a net physically connects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetClass {
    /// Logic-to-memory within a tile, routed laterally on the RDL.
    IntraTileLateral,
    /// Logic-to-memory within a tile, as a vertical stacked-via column
    /// (Glass 3D embedding).
    IntraTileStackedVia,
    /// Logic-to-logic between tiles (serialised link).
    InterTile,
}

/// One global net to route.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetSpec {
    /// Net index.
    pub id: usize,
    /// Connection class.
    pub class: NetClass,
    /// Source (die index into [`DiePlacement::dies`], signal index).
    pub from: (usize, usize),
    /// Target (die index, signal index).
    pub to: (usize, usize),
}

/// The full die placement for one technology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiePlacement {
    /// Technology.
    pub tech: InterposerKind,
    /// Interposer outline, µm.
    pub footprint_um: (f64, f64),
    /// Placed dies: [logic0, mem0, logic1, mem1].
    pub dies: Vec<DieSite>,
    /// All signal nets.
    pub nets: Vec<NetSpec>,
}

impl DiePlacement {
    /// Interposer area, mm².
    pub fn area_mm2(&self) -> f64 {
        self.footprint_um.0 * self.footprint_um.1 / 1e6
    }

    /// Manhattan distance between the endpoints of `net`, µm (lateral
    /// nets; zero for stacked-via columns). Nets whose endpoint bumps do
    /// not exist contribute zero length — the router reports them as
    /// unroutable instead.
    pub fn net_manhattan_um(&self, net: &NetSpec) -> f64 {
        let (Some(a), Some(b)) = (
            self.dies[net.from.0].signal_position(net.from.1),
            self.dies[net.to.0].signal_position(net.to.1),
        ) else {
            return 0.0;
        };
        (a.0 - b.0).abs() + (a.1 - b.1).abs()
    }
}

/// Interposer edge margins (x, y) per side, µm — the C4/TGV escape ring,
/// back-solved from the Table IV footprints.
pub fn edge_margins_um(tech: InterposerKind) -> (f64, f64) {
    match tech {
        InterposerKind::Glass25D => (255.0, 230.0),
        InterposerKind::Glass3D => (50.0, 100.0),
        InterposerKind::Silicon25D => (170.0, 110.0),
        InterposerKind::Shinko => (320.0, 260.0),
        InterposerKind::Apx => (450.0, 125.0),
        InterposerKind::Silicon3D | InterposerKind::Monolithic2D => (0.0, 0.0),
    }
}

/// Builds the die placement for `tech` using the paper's chiplet bump
/// plans and footprints.
///
/// # Panics
///
/// Panics for [`InterposerKind::Silicon3D`] and
/// [`InterposerKind::Monolithic2D`], which have no interposer — check
/// [`techlib::spec::InterposerSpec::for_kind`] first or use
/// [`crate::report::place_and_route`], which returns an error instead.
pub fn place_dies(tech: InterposerKind) -> DiePlacement {
    place_dies_with(&InterposerSpec::for_kind(tech))
}

/// [`place_dies`] against an explicit (possibly overridden) spec — bump
/// plans, die spacing, and stacking arrangement all follow the spec's
/// fields; die widths and edge margins stay keyed on its `kind` (they
/// come from the chiplet physical design, not the interposer).
///
/// # Panics
///
/// Panics for specs whose stacking is [`Stacking::TsvStack`] or
/// [`Stacking::Monolithic`] — those have no routed interposer.
pub fn place_dies_with(spec: &InterposerSpec) -> DiePlacement {
    let tech = spec.kind;
    assert!(
        !matches!(spec.stacking, Stacking::TsvStack | Stacking::Monolithic),
        "{tech} has no routed interposer"
    );
    let logic_bumps = paper_plan_with(ChipletKind::Logic, spec);
    let mem_bumps = paper_plan_with(ChipletKind::Memory, spec);
    let w_logic = logic_width(tech);
    let w_mem = mem_width(tech);
    let spacing = spec.die_to_die_spacing_um;
    let (mx, my) = edge_margins_um(tech);

    let mut dies = Vec::with_capacity(4);
    let footprint = if spec.stacking == Stacking::Embedded {
        // Two logic-over-memory stacks, side by side (Fig. 10a).
        for tile in 0..2 {
            let x = mx + tile as f64 * (w_logic + spacing);
            let y = my;
            dies.push(DieSite {
                tile,
                kind: ChipletKind::Logic,
                origin_um: (x, y),
                width_um: w_logic,
                embedded: false,
                bumps: logic_bumps.clone(),
                signal_map: (0..logic_bumps.signal).collect(),
            });
            dies.push(DieSite {
                tile,
                kind: ChipletKind::Memory,
                origin_um: (x, y),
                width_um: w_logic, // matched footprint
                embedded: true,
                bumps: mem_bumps.clone(),
                signal_map: (0..mem_bumps.signal).collect(),
            });
        }
        (2.0 * mx + 2.0 * w_logic + spacing, 2.0 * my + w_logic)
    } else {
        // 2×2: logic column on the left, memory column on the right.
        for tile in 0..2 {
            let y = my + tile as f64 * (w_logic + spacing);
            dies.push(DieSite {
                tile,
                kind: ChipletKind::Logic,
                origin_um: (mx, y),
                width_um: w_logic,
                embedded: false,
                bumps: logic_bumps.clone(),
                signal_map: (0..logic_bumps.signal).collect(),
            });
            dies.push(DieSite {
                tile,
                kind: ChipletKind::Memory,
                origin_um: (mx + w_logic + spacing, y),
                width_um: w_mem,
                embedded: false,
                bumps: mem_bumps.clone(),
                signal_map: (0..mem_bumps.signal).collect(),
            });
        }
        (
            2.0 * mx + w_logic + spacing + w_mem,
            2.0 * my + 2.0 * w_logic + spacing,
        )
    };

    // Cluster the serialised inter-tile interface at the facing edges.
    let serdes = SerdesPlan::paper();
    for (i, die) in dies.iter_mut().enumerate() {
        if die.kind != ChipletKind::Logic {
            continue;
        }
        let edge = if spec.stacking == Stacking::Embedded {
            // Stacks sit side by side in x.
            if die.tile == 0 {
                Edge::Right
            } else {
                Edge::Left
            }
        } else {
            // Logic dies sit in a column: tile 0 below tile 1.
            if die.tile == 0 {
                Edge::Top
            } else {
                Edge::Bottom
            }
        };
        debug_assert_eq!(i % 2, 0, "logic dies at even indices");
        die.signal_map = edge_cluster_map(&die.bumps, INTRA_TILE_CUT, serdes.wires_after, edge);
    }

    let nets = build_nets(spec);
    DiePlacement {
        tech,
        footprint_um: footprint,
        dies,
        nets,
    }
}

/// Logic die width per technology (Table II / III).
fn logic_width(tech: InterposerKind) -> f64 {
    match tech {
        InterposerKind::Glass25D | InterposerKind::Glass3D => 820.0,
        InterposerKind::Silicon25D | InterposerKind::Silicon3D | InterposerKind::Shinko => 940.0,
        InterposerKind::Apx => 1150.0,
        InterposerKind::Monolithic2D => 1600.0,
    }
}

/// Memory die width per technology (Table II / III).
fn mem_width(tech: InterposerKind) -> f64 {
    match tech {
        InterposerKind::Glass25D => 775.0,
        InterposerKind::Glass3D => 820.0,
        InterposerKind::Silicon25D | InterposerKind::Shinko => 820.0,
        InterposerKind::Silicon3D => 940.0,
        InterposerKind::Apx => 1000.0,
        InterposerKind::Monolithic2D => 0.0,
    }
}

/// Builds the 530-net global net list: per tile, 231 logic↔memory signals;
/// between tiles, 68 serialised logic↔logic signals. The logic die's
/// signal indices place the intra-tile cut first (0..231) and the
/// serialised inter-tile interface after it (231..299).
fn build_nets(spec: &InterposerSpec) -> Vec<NetSpec> {
    let serdes = SerdesPlan::paper();
    let embedded = spec.stacking == Stacking::Embedded;
    let mut nets = Vec::new();
    let mut id = 0;
    // Die indices: [logic0 = 0, mem0 = 1, logic1 = 2, mem1 = 3].
    for tile in 0..2 {
        let logic_die = tile * 2;
        let mem_die = tile * 2 + 1;
        for sig in 0..INTRA_TILE_CUT {
            nets.push(NetSpec {
                id,
                class: if embedded {
                    NetClass::IntraTileStackedVia
                } else {
                    NetClass::IntraTileLateral
                },
                from: (logic_die, sig),
                to: (mem_die, sig),
            });
            id += 1;
        }
    }
    for sig in 0..serdes.wires_after {
        nets.push(NetSpec {
            id,
            class: NetClass::InterTile,
            from: (0, INTRA_TILE_CUT + sig),
            to: (2, INTRA_TILE_CUT + sig),
        });
        id += 1;
    }
    nets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glass_25d_footprint_matches_table4() {
        let p = place_dies(InterposerKind::Glass25D);
        assert!(
            (p.footprint_um.0 - 2200.0).abs() < 20.0,
            "{:?}",
            p.footprint_um
        );
        assert!((p.footprint_um.1 - 2200.0).abs() < 20.0);
        assert!((p.area_mm2() - 4.84).abs() < 0.15);
    }

    #[test]
    fn glass_3d_footprint_matches_table4() {
        let p = place_dies(InterposerKind::Glass3D);
        assert!((p.footprint_um.0 - 1840.0).abs() < 5.0);
        assert!((p.footprint_um.1 - 1020.0).abs() < 5.0);
        assert!((p.area_mm2() - 1.87).abs() < 0.05);
    }

    #[test]
    fn all_interposer_footprints_ordering() {
        let area = |k| place_dies(k).area_mm2();
        let g3 = area(InterposerKind::Glass3D);
        let g25 = area(InterposerKind::Glass25D);
        let si = area(InterposerKind::Silicon25D);
        let sh = area(InterposerKind::Shinko);
        let apx = area(InterposerKind::Apx);
        // Table IV: Glass 3D 1.87 < Glass 2.5D = Silicon 4.84 < Shinko 6.25
        // < APX 8.64.
        assert!(g3 < g25);
        assert!((g25 - si).abs() < 0.3);
        assert!(si < sh && sh < apx);
        assert!((apx - 8.64).abs() < 0.3, "apx = {apx}");
    }

    #[test]
    fn net_count_is_530() {
        let p = place_dies(InterposerKind::Silicon25D);
        assert_eq!(p.nets.len(), 2 * 231 + 68);
    }

    #[test]
    fn glass_3d_intra_nets_are_stacked_vias() {
        let p = place_dies(InterposerKind::Glass3D);
        let stacked = p
            .nets
            .iter()
            .filter(|n| n.class == NetClass::IntraTileStackedVia)
            .count();
        let lateral = p
            .nets
            .iter()
            .filter(|n| n.class == NetClass::InterTile)
            .count();
        assert_eq!(stacked, 462);
        assert_eq!(lateral, 68);
    }

    #[test]
    fn embedded_dies_share_xy_with_their_logic_die() {
        let p = place_dies(InterposerKind::Glass3D);
        assert_eq!(p.dies[0].origin_um, p.dies[1].origin_um);
        assert!(p.dies[1].embedded);
        assert!(!p.dies[0].embedded);
    }

    #[test]
    fn dies_do_not_overlap_in_2p5d() {
        for tech in [
            InterposerKind::Glass25D,
            InterposerKind::Silicon25D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            let p = place_dies(tech);
            for (i, a) in p.dies.iter().enumerate() {
                for b in p.dies.iter().skip(i + 1) {
                    let sep_x = a.origin_um.0 + a.width_um <= b.origin_um.0
                        || b.origin_um.0 + b.width_um <= a.origin_um.0;
                    let sep_y = a.origin_um.1 + a.width_um <= b.origin_um.1
                        || b.origin_um.1 + b.width_um <= a.origin_um.1;
                    assert!(sep_x || sep_y, "{tech}: dies overlap");
                }
            }
        }
    }

    #[test]
    fn dies_fit_inside_the_footprint() {
        for tech in InterposerKind::INTERPOSER_BASED {
            let p = place_dies(tech);
            for d in &p.dies {
                assert!(d.origin_um.0 >= 0.0 && d.origin_um.1 >= 0.0, "{tech}");
                assert!(
                    d.origin_um.0 + d.width_um <= p.footprint_um.0 + 1e-9,
                    "{tech}"
                );
                assert!(
                    d.origin_um.1 + d.width_um <= p.footprint_um.1 + 1e-9,
                    "{tech}"
                );
            }
        }
    }

    #[test]
    fn net_endpoints_resolve_to_bumps() {
        let p = place_dies(InterposerKind::Shinko);
        for net in &p.nets {
            assert!(p.dies[net.from.0].signal_position(net.from.1).is_some());
            assert!(p.dies[net.to.0].signal_position(net.to.1).is_some());
            let d = p.net_manhattan_um(net);
            assert!(d > 0.0 && d < 10_000.0);
        }
    }

    #[test]
    #[should_panic(expected = "no routed interposer")]
    fn silicon_3d_has_no_placement() {
        let _ = place_dies(InterposerKind::Silicon3D);
    }
}
