//! SVG rendering of interposer layouts (the paper's Fig. 10/12 views).
//!
//! Produces a top-down view: die outlines, bump fields, and routed nets
//! coloured by metal layer — the open-source stand-in for the GDS
//! screenshots the paper shows.

use crate::report::InterposerLayout;
use std::fmt::Write as _;

/// Colour palette per signal layer (cycled).
const LAYER_COLORS: [&str; 8] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
];

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Pixels per millimetre.
    pub scale_px_per_mm: f64,
    /// Draw individual bumps (slow for huge fields).
    pub draw_bumps: bool,
    /// Draw routed nets.
    pub draw_nets: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            scale_px_per_mm: 200.0,
            draw_bumps: true,
            draw_nets: true,
        }
    }
}

/// Renders the layout as an SVG document.
pub fn render(layout: &InterposerLayout, options: &SvgOptions) -> String {
    let s = options.scale_px_per_mm / 1e3; // px per µm
    let (w_um, h_um) = layout.placement.footprint_um;
    let (w, h) = (w_um * s, h_um * s);
    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.2} {h:.2}">"##
    );
    let _ = writeln!(
        out,
        r##"<rect x="0" y="0" width="{w:.2}" height="{h:.2}" fill="#f4f1e8" stroke="#555"/>"##
    );

    // Dies.
    for die in &layout.placement.dies {
        let (x, y) = (die.origin_um.0 * s, die.origin_um.1 * s);
        let dw = die.width_um * s;
        let fill = if die.embedded {
            "#c9b458"
        } else if die.kind == netlist::chiplet_netlist::ChipletKind::Logic {
            "#a8c6e8"
        } else {
            "#b8d8b8"
        };
        let dash = if die.embedded {
            r##" stroke-dasharray="4 3""##
        } else {
            ""
        };
        let _ = writeln!(
            out,
            r##"<rect x="{x:.2}" y="{y:.2}" width="{dw:.2}" height="{dw:.2}" fill="{fill}" fill-opacity="0.55" stroke="#333"{dash}/>"##
        );
        let _ = writeln!(
            out,
            r##"<text x="{:.2}" y="{:.2}" font-size="{:.1}" fill="#222">{} t{}</text>"##,
            x + 4.0,
            y + 14.0,
            12.0,
            die.kind.label(),
            die.tile
        );
        if options.draw_bumps {
            for bump in &die.bumps.bumps {
                let bx = (die.origin_um.0 + bump.x_um) * s;
                let by = (die.origin_um.1 + bump.y_um) * s;
                let color = match bump.role {
                    chiplet::bumpmap::BumpRole::Signal(_) => "#444",
                    chiplet::bumpmap::BumpRole::Power => "#c33",
                    chiplet::bumpmap::BumpRole::Ground => "#333cc3",
                };
                let _ = writeln!(
                    out,
                    r##"<circle cx="{bx:.2}" cy="{by:.2}" r="{:.2}" fill="{color}" fill-opacity="0.6"/>"##,
                    (die.bumps.pitch_um * 0.18 * s).max(0.6)
                );
            }
        }
    }

    // Routed nets, coloured by their deepest layer.
    if options.draw_nets {
        let g = 20.0 * s; // gcell size in px
        for net in &layout.routed_nets {
            let color = LAYER_COLORS[net.max_layer % LAYER_COLORS.len()];
            let mut path = String::new();
            for (i, &(x, y, _)) in net.path.iter().enumerate() {
                let px = (x as f64 + 0.5) * g;
                let py = (y as f64 + 0.5) * g;
                let _ = write!(path, "{}{px:.1},{py:.1} ", if i == 0 { "M" } else { "L" });
            }
            let _ = writeln!(
                out,
                r##"<path d="{path}" fill="none" stroke="{color}" stroke-width="0.8" stroke-opacity="0.7"/>"##
            );
        }
    }

    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::cached_layout;
    use techlib::spec::InterposerKind;

    #[test]
    fn renders_glass_3d_layout() {
        let layout = cached_layout(InterposerKind::Glass3D).unwrap();
        let svg = render(&layout, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // Four dies + bumps + 68 net paths.
        assert_eq!(svg.matches("<rect").count(), 5); // background + 4 dies
        assert!(svg.matches("<path").count() >= 68);
        assert!(svg.contains("stroke-dasharray"), "embedded dies dashed");
    }

    #[test]
    fn options_disable_layers() {
        let layout = cached_layout(InterposerKind::Glass3D).unwrap();
        let svg = render(
            &layout,
            &SvgOptions {
                draw_bumps: false,
                draw_nets: false,
                ..SvgOptions::default()
            },
        );
        assert_eq!(svg.matches("<circle").count(), 0);
        assert_eq!(svg.matches("<path").count(), 0);
    }

    #[test]
    fn svg_size_tracks_footprint() {
        let layout = cached_layout(InterposerKind::Glass3D).unwrap();
        let svg = render(&layout, &SvgOptions::default());
        // 1.84 mm × 200 px/mm = 368 px wide.
        assert!(svg.contains(r##"width="368""##), "{}", &svg[..120]);
    }
}
