//! Table IV routing statistics.

use crate::diemap::{DiePlacement, NetClass};
use crate::router::RoutedNet;
use serde::{Deserialize, Serialize};
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::via::stacked_via_column;

/// The routing statistics row of Table IV for one interposer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Technology.
    pub tech: InterposerKind,
    /// Signal metal layers actually used by routing.
    pub signal_layers_used: usize,
    /// Dedicated P/G plane layers (always 2).
    pub pg_layers: usize,
    /// Total lateral wirelength, mm.
    pub total_wl_mm: f64,
    /// Minimum net wirelength, mm.
    pub min_wl_mm: f64,
    /// Average net wirelength, mm.
    pub avg_wl_mm: f64,
    /// Maximum net wirelength, mm.
    pub max_wl_mm: f64,
    /// Signal via count (routing vias + bump microvias).
    pub signal_vias: usize,
    /// Stacked-via columns (Glass 3D intra-tile connections).
    pub stacked_via_columns: usize,
    /// Vias inside the stacked columns.
    pub stacked_vias: usize,
    /// Interposer footprint, mm.
    pub footprint_mm: (f64, f64),
    /// Interposer area, mm².
    pub area_mm2: f64,
}

impl RoutingStats {
    /// Builds the statistics from a placement and its routed nets.
    pub fn from_routing(placement: &DiePlacement, routed: &[RoutedNet]) -> RoutingStats {
        let lengths_mm: Vec<f64> = routed.iter().map(|n| n.length_um / 1e3).collect();
        let total: f64 = lengths_mm.iter().sum();
        let min = lengths_mm.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = lengths_mm.iter().cloned().fold(0.0, f64::max);
        let avg = if lengths_mm.is_empty() {
            0.0
        } else {
            total / lengths_mm.len() as f64
        };
        let stacked_columns = placement
            .nets
            .iter()
            .filter(|n| n.class == NetClass::IntraTileStackedVia)
            .count();
        let spec = InterposerSpec::for_kind(placement.tech);
        // Each stacked column descends through the build-up to the
        // embedded die: one via per metal level plus the landing via.
        let levels = 2;
        let (_, _, _, _col_len) = stacked_via_column(&spec, levels);
        RoutingStats {
            tech: placement.tech,
            signal_layers_used: routed.iter().map(|n| n.max_layer + 1).max().unwrap_or(0),
            pg_layers: 2,
            total_wl_mm: total,
            min_wl_mm: if min.is_finite() { min } else { 0.0 },
            avg_wl_mm: avg,
            max_wl_mm: max,
            signal_vias: routed.iter().map(|n| n.vias).sum(),
            stacked_via_columns: stacked_columns,
            stacked_vias: stacked_columns * levels,
            footprint_mm: (
                placement.footprint_um.0 / 1e3,
                placement.footprint_um.1 / 1e3,
            ),
            area_mm2: placement.area_mm2(),
        }
    }

    /// Total metal layers used (signal + P/G), the Table IV "metal layer
    /// used" entry.
    pub fn metal_layers_used(&self) -> usize {
        self.signal_layers_used + self.pg_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn stats(tech: InterposerKind) -> RoutingStats {
        crate::report::cached_layout(tech).unwrap().stats.clone()
    }

    #[test]
    fn glass_3d_wl_is_far_below_25d() {
        let g3 = stats(InterposerKind::Glass3D);
        let g25 = stats(InterposerKind::Glass25D);
        // Table IV: 29.69 mm vs 924 mm (only 68 lateral nets vs 530).
        assert!(g3.total_wl_mm * 5.0 < g25.total_wl_mm);
        assert_eq!(g3.stacked_via_columns, 462);
    }

    #[test]
    fn min_avg_max_are_ordered() {
        for tech in InterposerKind::INTERPOSER_BASED {
            let s = stats(tech);
            assert!(s.min_wl_mm <= s.avg_wl_mm, "{tech}");
            assert!(s.avg_wl_mm <= s.max_wl_mm, "{tech}");
            assert!(s.total_wl_mm >= s.max_wl_mm, "{tech}");
        }
    }

    #[test]
    fn glass_3d_uses_fewest_metal_layers() {
        let g3 = stats(InterposerKind::Glass3D);
        for other in [
            InterposerKind::Glass25D,
            InterposerKind::Silicon25D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            assert!(
                g3.metal_layers_used() <= stats(other).metal_layers_used(),
                "{other}"
            );
        }
        // Table IV: 1 + 2 for Glass 3D.
        assert!(g3.metal_layers_used() <= 4);
    }

    #[test]
    fn area_matches_placement() {
        let s = stats(InterposerKind::Apx);
        assert!((s.area_mm2 - 8.64).abs() < 0.3);
        assert!((s.footprint_mm.0 - 3.2).abs() < 0.1);
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    #[test]
    fn print_all_stats() {
        for tech in InterposerKind::INTERPOSER_BASED {
            let s = crate::report::cached_layout(tech).unwrap().stats.clone();
            eprintln!(
                "{tech}: layers {}+2 wl total {:.1} min {:.3} avg {:.3} max {:.3} vias {} area {:.2}",
                s.signal_layers_used, s.total_wl_mm, s.min_wl_mm, s.avg_wl_mm, s.max_wl_mm,
                s.signal_vias, s.area_mm2
            );
        }
    }
}
