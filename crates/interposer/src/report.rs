//! One-call interposer place-and-route, with scenario-scoped caching.
//!
//! [`place_and_route_with`] is the pure computation; [`LayoutCache`]
//! memoises one layout per technology for a single scenario (a study
//! context owns one cache per scenario). The process-wide
//! [`cached_layout`] shim serves the default paper configuration through
//! a shared [`LayoutCache`] handle — see [`default_layout_cache`] — so
//! legacy entry points and the default study context share one set of
//! routed layouts instead of routing twice.

use crate::diemap::{self, DiePlacement, NetClass};
use crate::grid::RoutingGrid;
use crate::pdn::PdnPlan;
use crate::router::{self, RoutedNet};
use crate::stats::RoutingStats;
use crate::RouteError;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use techlib::memo::ArcMemo;
use techlib::spec::{InterposerKind, InterposerSpec, Stacking};
use techlib::store::{ArtifactStore, Codec, SpecField, StoreKey};

/// The complete interposer layout for one technology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterposerLayout {
    /// The interposer spec the layout was placed and routed against
    /// (carries any scenario overrides into downstream length queries).
    pub spec: InterposerSpec,
    /// Die placement and global nets.
    pub placement: DiePlacement,
    /// Routed lateral nets.
    pub routed_nets: Vec<RoutedNet>,
    /// Table IV statistics.
    pub stats: RoutingStats,
    /// Power delivery network.
    pub pdn: PdnPlan,
}

impl InterposerLayout {
    /// The routed length of the worst (longest) net of `class`, µm.
    /// Stacked-via classes return the via-column height instead.
    pub fn worst_net_um(&self, class: NetClass) -> f64 {
        if class == NetClass::IntraTileStackedVia {
            let (_, _, _, len) = techlib::via::stacked_via_column(&self.spec, 3);
            return len;
        }
        self.routed_nets
            .iter()
            .filter(|n| self.placement.nets[n.id].class == class)
            .map(|n| n.length_um)
            .fold(0.0, f64::max)
    }

    /// Average routed length of nets of `class`, µm.
    pub fn average_net_um(&self, class: NetClass) -> f64 {
        let lens: Vec<f64> = self
            .routed_nets
            .iter()
            .filter(|n| self.placement.nets[n.id].class == class)
            .map(|n| n.length_um)
            .collect();
        if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<f64>() / lens.len() as f64
        }
    }
}

/// Algorithm version of the layout stage (place + route + PDN). Bump
/// whenever placement, routing, PDN generation, or the serialized shape
/// of [`InterposerLayout`] changes, so persisted artifacts from older
/// binaries miss instead of resurfacing stale results.
pub const LAYOUT_STAGE_VERSION: u32 = 1;

/// The spec fields place-and-route actually consumes: everything
/// *except* `loss_tangent`, which only the SI link simulation reads.
/// Placement reads the geometry fields, the routing grid reads the wire
/// rules, and the PDN plan reads `dielectric_constant` (plane
/// capacitance), so those all stay in the projection. A sweep that only
/// varies `loss_tangent` therefore shares one layout across scenarios.
pub const LAYOUT_PROJECTION: &[SpecField] = &[
    SpecField::Kind,
    SpecField::SignalMetalLayers,
    SpecField::MetalThicknessUm,
    SpecField::DielectricThicknessUm,
    SpecField::DielectricConstant,
    SpecField::MinWireWidthUm,
    SpecField::MinWireSpaceUm,
    SpecField::ViaSizeUm,
    SpecField::BumpSizeUm,
    SpecField::DieToDieSpacingUm,
    SpecField::MicrobumpPitchUm,
    SpecField::Stacking,
    SpecField::RoutingStyle,
    SpecField::CoreThicknessUm,
];

/// The layout stage's store key for `spec`.
pub fn layout_store_key(spec: &InterposerSpec) -> StoreKey {
    techlib::store::projection_key("layout", LAYOUT_STAGE_VERSION, spec, LAYOUT_PROJECTION, &[])
}

/// JSON codec for persisted layouts.
fn layout_codec() -> Codec<InterposerLayout> {
    Codec {
        encode: |layout| serde_json::to_string(layout).ok(),
        decode: |text| serde_json::from_str_typed(text).ok(),
    }
}

/// A per-scenario layout cache: one memo cell per technology, each
/// holding the routed layout for that scenario's spec. Placement and
/// routing are deterministic, so sharing a cache's results is safe;
/// downstream analyses (SI, PI, full-chip roll-ups, benches) reuse the
/// cached layout instead of re-routing.
///
/// Each technology has its own cell, so concurrent first calls for
/// *different* technologies place-and-route in parallel; concurrent
/// calls for the *same* technology block until the one computation
/// finishes. Only **successes** are memoised: an error is returned to
/// the caller and the next call re-runs place-and-route, so transient or
/// injected failures never poison the cache.
#[derive(Debug, Default)]
pub struct LayoutCache {
    cells: [ArcMemo<InterposerLayout>; InterposerKind::COUNT],
    computes: AtomicUsize,
}

impl LayoutCache {
    /// Creates an empty cache.
    pub const fn new() -> LayoutCache {
        LayoutCache {
            cells: [const { ArcMemo::new() }; InterposerKind::COUNT],
            computes: AtomicUsize::new(0),
        }
    }

    /// The cached layout for `spec` (keyed by `spec.kind`), computing it
    /// on first use.
    ///
    /// # Errors
    ///
    /// Same as [`place_and_route_with`]; errors are never cached.
    pub fn layout(&self, spec: &InterposerSpec) -> Result<Arc<InterposerLayout>, RouteError> {
        self.layout_via(spec, None)
    }

    /// [`layout`](LayoutCache::layout) with an optional shared artifact
    /// store behind this cache's own cell. On a local miss the store is
    /// consulted under the stage key ([`layout_store_key`]) before
    /// place-and-route runs, so scenarios whose specs agree on
    /// [`LAYOUT_PROJECTION`] share one routed layout — across contexts,
    /// and across processes when the store has a disk tier. The layout is
    /// deterministic in the projected fields, so a store hit is
    /// indistinguishable from recomputing.
    ///
    /// # Errors
    ///
    /// Same as [`place_and_route_with`]; errors reach neither the cache
    /// nor the store.
    pub fn layout_via(
        &self,
        spec: &InterposerSpec,
        store: Option<&ArtifactStore>,
    ) -> Result<Arc<InterposerLayout>, RouteError> {
        let cell = &self.cells[spec.kind.index()];
        let compute = || {
            self.computes.fetch_add(1, Ordering::Relaxed);
            place_and_route_with(spec)
        };
        match store {
            Some(store) => cell.get_or_try_arc(|| {
                store
                    .get_or_compute(layout_store_key(spec), &layout_codec(), compute)
                    .map(|(layout, _)| layout)
            }),
            None => cell.get_or_try_arc(|| compute().map(Arc::new)),
        }
    }

    /// How many place-and-route computations this cache has actually run
    /// (cache hits — local or store — don't count; failed computes do).
    pub fn compute_count(&self) -> usize {
        self.computes.load(Ordering::Relaxed)
    }

    /// Forgets every cached layout so the next call re-routes.
    /// Outstanding [`Arc`] handles stay valid on their own.
    pub fn reset(&self) {
        for cell in &self.cells {
            cell.reset();
        }
    }
}

/// The process-wide cache behind [`cached_layout`], serving the **paper
/// default** specs. The default study context clones this handle, so the
/// legacy path and the default-scenario path share one set of layouts.
pub fn default_layout_cache() -> Arc<LayoutCache> {
    static DEFAULT: OnceLock<Arc<LayoutCache>> = OnceLock::new();
    Arc::clone(DEFAULT.get_or_init(|| Arc::new(LayoutCache::new())))
}

/// Returns the shared default-configuration layout for `tech`, computing
/// it on first use. Shim over [`default_layout_cache`] — scenario code
/// uses a per-scenario [`LayoutCache`] instead.
///
/// # Errors
///
/// Same as [`place_and_route`].
pub fn cached_layout(tech: InterposerKind) -> Result<Arc<InterposerLayout>, RouteError> {
    default_layout_cache().layout(&InterposerSpec::for_kind(tech))
}

/// Forgets every layout in the **default** cache so the next
/// [`cached_layout`] call re-routes. Test-only escape hatch.
pub fn reset_layout_cache_for_tests() {
    default_layout_cache().reset();
}

/// Places the four chiplets and routes every lateral net for `tech`.
///
/// # Errors
///
/// Returns [`RouteError::NoInterposer`] for Silicon 3D and the monolithic
/// baseline, and routing errors from the router.
pub fn place_and_route(tech: InterposerKind) -> Result<InterposerLayout, RouteError> {
    place_and_route_with(&InterposerSpec::for_kind(tech))
}

/// [`place_and_route`] against an explicit (possibly overridden) spec,
/// the form scenario contexts use.
///
/// # Errors
///
/// Returns [`RouteError::NoInterposer`] for stacking styles with no
/// routed interposer, [`RouteError::BadGrid`] for specs whose overrides
/// produce an unusable routing grid, and routing errors from the router.
pub fn place_and_route_with(spec: &InterposerSpec) -> Result<InterposerLayout, RouteError> {
    if matches!(spec.stacking, Stacking::TsvStack | Stacking::Monolithic) {
        return Err(RouteError::NoInterposer(spec.kind));
    }
    let placement = {
        let _span = techlib::obs::span("route.place");
        diemap::place_dies_with(spec)
    };
    let grid = RoutingGrid::new(placement.footprint_um, spec)
        .map_err(|reason| RouteError::BadGrid { reason })?;
    let routed = {
        let _span = techlib::obs::span("route.nets");
        router::route_all(&placement, &grid)?
    };
    let stats = RoutingStats::from_routing(&placement, &routed);
    let pdn = {
        let _span = techlib::obs::span("route.pdn");
        PdnPlan::generate_with(spec, placement.footprint_um)
    };
    Ok(InterposerLayout {
        spec: spec.clone(),
        placement,
        routed_nets: routed,
        stats,
        pdn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_interposers_route() {
        for tech in InterposerKind::INTERPOSER_BASED {
            let layout = cached_layout(tech).unwrap();
            assert!(!layout.routed_nets.is_empty(), "{tech}");
            assert!(layout.stats.total_wl_mm > 0.0, "{tech}");
        }
    }

    #[test]
    fn silicon_3d_is_rejected() {
        assert!(matches!(
            place_and_route(InterposerKind::Silicon3D),
            Err(RouteError::NoInterposer(_))
        ));
    }

    #[test]
    fn worst_net_lengths_have_paper_ordering() {
        // Table V wirelengths: Glass 3D L2L 582 µm worst; Glass 2.5D L2M
        // 5,980 µm worst; Silicon 2.5D L2M 1,952 µm.
        let g3 = cached_layout(InterposerKind::Glass3D).unwrap();
        let g25 = cached_layout(InterposerKind::Glass25D).unwrap();
        let si = cached_layout(InterposerKind::Silicon25D).unwrap();
        let g3_l2l = g3.worst_net_um(NetClass::InterTile);
        let g3_l2m = g3.worst_net_um(NetClass::IntraTileStackedVia);
        let g25_l2m = g25.worst_net_um(NetClass::IntraTileLateral);
        let si_l2m = si.worst_net_um(NetClass::IntraTileLateral);
        assert!(g3_l2m < 100.0, "stacked via column: {g3_l2m}");
        assert!(g3_l2l < g25_l2m, "{g3_l2l} vs {g25_l2m}");
        assert!(si_l2m < g25_l2m, "{si_l2m} vs {g25_l2m}");
    }

    #[test]
    fn doc_example_works() {
        let layout = cached_layout(InterposerKind::Glass3D).unwrap();
        assert_eq!(layout.routed_nets.len(), 68);
        assert!(layout.stats.total_wl_mm < 100.0);
    }

    #[test]
    fn caches_are_isolated_and_count_computes() {
        let a = LayoutCache::new();
        let b = LayoutCache::new();
        let spec = InterposerSpec::for_kind(InterposerKind::Glass3D);
        let first = a.layout(&spec).unwrap();
        let again = a.layout(&spec).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "same cache shares the Arc");
        assert_eq!(a.compute_count(), 1);
        assert_eq!(b.compute_count(), 0, "sibling cache untouched");
        let other = b.layout(&spec).unwrap();
        assert!(!Arc::ptr_eq(&first, &other), "caches never share slots");
    }
}
