//! One-call interposer place-and-route.

use crate::diemap::{self, DiePlacement, NetClass};
use crate::grid::RoutingGrid;
use crate::pdn::PdnPlan;
use crate::router::{self, RoutedNet};
use crate::stats::RoutingStats;
use crate::RouteError;
use serde::Serialize;
use techlib::spec::{InterposerKind, InterposerSpec, Stacking};

/// The complete interposer layout for one technology.
#[derive(Debug, Clone, Serialize)]
pub struct InterposerLayout {
    /// Die placement and global nets.
    pub placement: DiePlacement,
    /// Routed lateral nets.
    pub routed_nets: Vec<RoutedNet>,
    /// Table IV statistics.
    pub stats: RoutingStats,
    /// Power delivery network.
    pub pdn: PdnPlan,
}

impl InterposerLayout {
    /// The routed length of the worst (longest) net of `class`, µm.
    /// Stacked-via classes return the via-column height instead.
    pub fn worst_net_um(&self, class: NetClass) -> f64 {
        if class == NetClass::IntraTileStackedVia {
            let spec = InterposerSpec::for_kind(self.placement.tech);
            let (_, _, _, len) = techlib::via::stacked_via_column(&spec, 3);
            return len;
        }
        self.routed_nets
            .iter()
            .filter(|n| self.placement.nets[n.id].class == class)
            .map(|n| n.length_um)
            .fold(0.0, f64::max)
    }

    /// Average routed length of nets of `class`, µm.
    pub fn average_net_um(&self, class: NetClass) -> f64 {
        let lens: Vec<f64> = self
            .routed_nets
            .iter()
            .filter(|n| self.placement.nets[n.id].class == class)
            .map(|n| n.length_um)
            .collect();
        if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<f64>() / lens.len() as f64
        }
    }
}

static LAYOUT_CELLS: [techlib::memo::MemoCell<InterposerLayout>; InterposerKind::COUNT] =
    [const { techlib::memo::MemoCell::new() }; InterposerKind::COUNT];

/// Returns a process-wide cached layout for `tech`, computing it on first
/// use. Placement and routing are deterministic, so sharing the result is
/// safe; downstream analyses (SI, PI, full-chip roll-ups, benches) reuse
/// these instead of re-routing.
///
/// Each technology has its own cache cell, so concurrent first calls for
/// *different* technologies place-and-route in parallel; concurrent calls
/// for the *same* technology block until the one computation finishes.
/// Only **successes** are memoised: an error is returned to the caller
/// and the next call re-runs place-and-route, so transient or injected
/// failures never poison the cache.
///
/// # Errors
///
/// Same as [`place_and_route`].
pub fn cached_layout(tech: InterposerKind) -> Result<&'static InterposerLayout, RouteError> {
    LAYOUT_CELLS[tech.index()].get_or_try(|| place_and_route(tech))
}

/// Forgets every cached layout so the next [`cached_layout`] call
/// re-routes. Test-only escape hatch (cached values are leaked, keeping
/// outstanding `&'static` borrows valid).
pub fn reset_layout_cache_for_tests() {
    for cell in &LAYOUT_CELLS {
        cell.reset();
    }
}

/// Places the four chiplets and routes every lateral net for `tech`.
///
/// # Errors
///
/// Returns [`RouteError::NoInterposer`] for Silicon 3D and the monolithic
/// baseline, and routing errors from the router.
pub fn place_and_route(tech: InterposerKind) -> Result<InterposerLayout, RouteError> {
    let spec = InterposerSpec::for_kind(tech);
    if matches!(spec.stacking, Stacking::TsvStack | Stacking::Monolithic) {
        return Err(RouteError::NoInterposer(tech));
    }
    let placement = diemap::place_dies(tech);
    let grid = RoutingGrid::new(placement.footprint_um, &spec)
        .map_err(|reason| RouteError::BadGrid { reason })?;
    let routed = router::route_all(&placement, &grid)?;
    let stats = RoutingStats::from_routing(&placement, &routed);
    let pdn = PdnPlan::generate(tech, placement.footprint_um);
    Ok(InterposerLayout {
        placement,
        routed_nets: routed,
        stats,
        pdn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_interposers_route() {
        for tech in InterposerKind::INTERPOSER_BASED {
            let layout = cached_layout(tech).unwrap();
            assert!(!layout.routed_nets.is_empty(), "{tech}");
            assert!(layout.stats.total_wl_mm > 0.0, "{tech}");
        }
    }

    #[test]
    fn silicon_3d_is_rejected() {
        assert!(matches!(
            place_and_route(InterposerKind::Silicon3D),
            Err(RouteError::NoInterposer(_))
        ));
    }

    #[test]
    fn worst_net_lengths_have_paper_ordering() {
        // Table V wirelengths: Glass 3D L2L 582 µm worst; Glass 2.5D L2M
        // 5,980 µm worst; Silicon 2.5D L2M 1,952 µm.
        let g3 = cached_layout(InterposerKind::Glass3D).unwrap();
        let g25 = cached_layout(InterposerKind::Glass25D).unwrap();
        let si = cached_layout(InterposerKind::Silicon25D).unwrap();
        let g3_l2l = g3.worst_net_um(NetClass::InterTile);
        let g3_l2m = g3.worst_net_um(NetClass::IntraTileStackedVia);
        let g25_l2m = g25.worst_net_um(NetClass::IntraTileLateral);
        let si_l2m = si.worst_net_um(NetClass::IntraTileLateral);
        assert!(g3_l2m < 100.0, "stacked via column: {g3_l2m}");
        assert!(g3_l2l < g25_l2m, "{g3_l2l} vs {g25_l2m}");
        assert!(si_l2m < g25_l2m, "{si_l2m} vs {g25_l2m}");
    }

    #[test]
    fn doc_example_works() {
        let layout = cached_layout(InterposerKind::Glass3D).unwrap();
        assert_eq!(layout.routed_nets.len(), 68);
        assert!(layout.stats.total_wl_mm < 100.0);
    }
}
