//! Monotone bucket (Dial-style) frontier for the router's A* loop.
//!
//! A* with a consistent heuristic pops keys in non-decreasing order, so
//! the frontier never spans more than one maximum-edge-cost worth of
//! key space at a time. [`BucketQueue`] exploits that: keys are
//! quantized into fixed-point *ticks* of [`TICK_UM`] µm and hashed into
//! a ring of `RING` tick slots; a pop scans forward from a monotone
//! cursor to the first occupied slot instead of sifting a global binary
//! heap. Each slot holds a tiny [`BinaryHeap`] ordered by the exact
//! `(f, node)` key, so ties *within* a tick (common: grid costs are
//! dyadic) still pop in the precise total order.
//!
//! # Exactness
//!
//! The pop order is **bit-for-bit identical** to a global
//! `BinaryHeap<FrontierItem>` (the pre-overhaul router's queue), not
//! merely equivalent-cost. Three invariants carry the argument:
//!
//! 1. *Quantization is monotone*: `f1 <= f2 ⇒ tick(f1) <= tick(f2)`, so
//!    slot order refines key order and the first occupied slot from the
//!    cursor holds the global minimum — which the slot-local heap then
//!    selects exactly.
//! 2. *Late cheap pushes clamp to the cursor*: floating-point rounding
//!    can push a key an ulp below the last popped one. Such entries
//!    join the slot the next pop scans first, where the slot heap
//!    restores their priority — the global heap would pop them next,
//!    and so does the ring.
//! 3. *The overflow tier is a strict suffix*: entries beyond the ring
//!    horizon wait in `overflow`, and once anything overflows, every
//!    later push at or past the smallest overflowed tick overflows too
//!    (`overflow_min`). Ring ticks therefore stay strictly below every
//!    overflow tick, so draining the ring before rebasing onto the
//!    overflow minimum preserves the global order.
//!
//! The retained binary heap (`HeapFrontier`, compiled for tests and
//! the `frontier-oracle` feature) is the differential oracle: the
//! proptests below drive both queues with the same random bounded-cost
//! push/pop schedules — tie storms included — and demand identical pop
//! sequences.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Quantization tick, µm of path cost per ring slot. `1/TICK_UM` must
/// be a power of two so the tick computation is exact (no rounding in
/// `f * TICK_INV`), keeping quantization a pure monotone function of
/// the key bits.
pub const TICK_UM: f64 = 0.5;
const TICK_INV: f64 = 1.0 / TICK_UM;
/// Ring capacity in ticks (8 192 µm of key span at [`TICK_UM`]). Wide
/// enough that congestion-priced edges rarely overflow; the overflow
/// tier keeps correctness when they do.
const RING: usize = 16_384;

/// One frontier entry: the A* key `f`, the `g` value it was pushed
/// with (stale-pop detection), and the node index.
#[derive(Debug, Clone, Copy)]
pub struct FrontierItem {
    /// Priority key (`g` + heuristic).
    pub f: f64,
    /// The `dist` value this entry was pushed with.
    pub g: f64,
    /// Flattened grid node index.
    pub node: usize,
}

impl PartialEq for FrontierItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for FrontierItem {}

impl Ord for FrontierItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-order on f (so a max-BinaryHeap pops the smallest f),
        // larger node index first among exact f ties. `g` is not part
        // of the key: two entries with equal (f, node) were pushed by
        // relaxations of the same node under the same heuristic, hence
        // carry equal g and are fully interchangeable.
        //
        // `total_cmp` keeps this a total order even for the NaN/-0.0
        // corners `Ord` must survive (see the HeapItem note this
        // ordering was lifted from).
        other
            .f
            .total_cmp(&self.f)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for FrontierItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The priority-queue interface the A* kernel is generic over. Both
/// implementations pop in the identical total order; only the constant
/// factors differ.
pub trait FrontierQueue {
    /// True for the bucket implementation (drives the
    /// `router.bucket_pops` counter attribution).
    const IS_BUCKET: bool;

    /// An empty queue. Allocation happens here; [`FrontierQueue::begin`]
    /// reuses it.
    fn new() -> Self;

    /// Resets for a fresh search in O(1) amortised (generation stamp).
    fn begin(&mut self);

    /// Inserts an entry. Keys must be finite and non-negative.
    fn push(&mut self, item: FrontierItem);

    /// Removes and returns the minimum entry by `(f` [`f64::total_cmp`]`,
    /// node descending)`, exactly as `BinaryHeap<FrontierItem>` would.
    fn pop(&mut self) -> Option<FrontierItem>;

    /// Entries currently queued.
    fn len(&self) -> usize;

    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every queued entry in unspecified order (the certificate
    /// fold over the unpopped frontier).
    fn for_each(&self, f: impl FnMut(&FrontierItem));
}

#[inline]
fn tick(f: f64) -> u64 {
    // `f * 2` is exact for finite f (power-of-two scale); the as-cast
    // floors, saturating NaN/negatives to 0 and +inf to u64::MAX —
    // callers promise finite non-negative keys, the saturation is just
    // the no-UB backstop.
    (f * TICK_INV) as u64
}

/// The monotone bucket queue: a generation-stamped ring of per-tick
/// mini-heaps plus an overflow tier for beyond-horizon entries. See the
/// module docs for the exactness argument.
pub struct BucketQueue {
    /// `ring[t % RING]` holds the entries of absolute tick `t` for the
    /// ticks inside the current horizon.
    ring: Vec<BinaryHeap<FrontierItem>>,
    /// Slot validity stamps: a slot is live only when its stamp equals
    /// `generation`, which makes [`BucketQueue::begin`] O(1).
    slot_gen: Vec<u32>,
    /// Slots stamped this generation (bounds the certificate fold to
    /// touched slots instead of the whole ring).
    active: Vec<u32>,
    generation: u32,
    /// Absolute tick the pop scan resumes from; monotone within one
    /// search.
    cursor: u64,
    /// Entries currently in the ring.
    ring_len: usize,
    /// Entries whose tick was beyond the ring horizon at push time.
    overflow: Vec<FrontierItem>,
    /// Smallest tick in `overflow` (`u64::MAX` when empty). Ring
    /// admission stays strictly below it so the ring is always a
    /// prefix of the key order.
    overflow_min: u64,
    len: usize,
}

impl BucketQueue {
    /// Moves every overflow entry inside the new horizon into the ring
    /// after advancing the cursor to the smallest overflowed tick.
    /// Called only when the ring is empty, so no ring entry can be
    /// overtaken.
    fn rebase(&mut self) {
        debug_assert_eq!(self.ring_len, 0);
        debug_assert!(!self.overflow.is_empty());
        self.cursor = self.overflow_min.max(self.cursor);
        let mut i = 0;
        while i < self.overflow.len() {
            let t = tick(self.overflow[i].f).max(self.cursor);
            if t - self.cursor < RING as u64 {
                let item = self.overflow.swap_remove(i);
                self.slot_push(t, item);
                self.ring_len += 1;
            } else {
                i += 1;
            }
        }
        // Everything retained is at or beyond the horizon, so the new
        // minimum is again an upper bound for ring admission.
        self.overflow_min = self
            .overflow
            .iter()
            .map(|it| tick(it.f))
            .min()
            .unwrap_or(u64::MAX);
    }

    #[inline]
    fn slot_push(&mut self, t: u64, item: FrontierItem) {
        let slot = (t % RING as u64) as usize;
        if self.slot_gen[slot] != self.generation {
            self.ring[slot].clear();
            self.slot_gen[slot] = self.generation;
            self.active.push(slot as u32);
        }
        self.ring[slot].push(item);
    }
}

impl FrontierQueue for BucketQueue {
    const IS_BUCKET: bool = true;

    fn new() -> Self {
        BucketQueue {
            ring: (0..RING).map(|_| BinaryHeap::new()).collect(),
            slot_gen: vec![0; RING],
            active: Vec::new(),
            generation: 1,
            cursor: 0,
            ring_len: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            len: 0,
        }
    }

    fn begin(&mut self) {
        if self.generation == u32::MAX {
            self.slot_gen.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
        self.active.clear();
        self.cursor = 0;
        self.ring_len = 0;
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, item: FrontierItem) {
        debug_assert!(
            item.f >= 0.0 && item.f.is_finite(),
            "frontier keys must be finite and non-negative, got {}",
            item.f
        );
        // A key an ulp below the cursor (floating-point slack on a
        // zero-slack edge) clamps to the cursor slot, which is scanned
        // next — the slot heap restores its priority exactly.
        let t = tick(item.f).max(self.cursor);
        if t - self.cursor >= RING as u64 || t >= self.overflow_min {
            self.overflow_min = self.overflow_min.min(t);
            self.overflow.push(item);
        } else {
            self.slot_push(t, item);
            self.ring_len += 1;
        }
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<FrontierItem> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.ring_len == 0 {
                self.rebase();
            }
            let slot = (self.cursor % RING as u64) as usize;
            if self.slot_gen[slot] == self.generation {
                if let Some(item) = self.ring[slot].pop() {
                    self.len -= 1;
                    self.ring_len -= 1;
                    return Some(item);
                }
            }
            self.cursor += 1;
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn for_each(&self, mut f: impl FnMut(&FrontierItem)) {
        for &slot in &self.active {
            for item in self.ring[slot as usize].iter() {
                f(item);
            }
        }
        for item in &self.overflow {
            f(item);
        }
    }
}

/// The retained global binary heap, kept as the differential oracle
/// behind a test/feature gate. Pop order is the reference the bucket
/// queue must reproduce bit-for-bit.
#[cfg(any(test, feature = "frontier-oracle"))]
pub struct HeapFrontier(BinaryHeap<FrontierItem>);

#[cfg(any(test, feature = "frontier-oracle"))]
impl FrontierQueue for HeapFrontier {
    const IS_BUCKET: bool = false;

    fn new() -> Self {
        HeapFrontier(BinaryHeap::new())
    }

    fn begin(&mut self) {
        self.0.clear();
    }

    fn push(&mut self, item: FrontierItem) {
        self.0.push(item);
    }

    fn pop(&mut self) -> Option<FrontierItem> {
        self.0.pop()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn for_each(&self, f: impl FnMut(&FrontierItem)) {
        self.0.iter().for_each(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(f: f64, node: usize) -> FrontierItem {
        // g derived from the key so equal (f, node) entries are fully
        // interchangeable, matching the router's invariant (g = f - h
        // for a fixed per-node h).
        FrontierItem {
            f,
            g: f * 0.5,
            node,
        }
    }

    fn assert_same_pop(b: &mut BucketQueue, h: &mut HeapFrontier) {
        let (x, y) = (b.pop(), h.pop());
        match (x, y) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert!(
                    a.f.to_bits() == b.f.to_bits()
                        && a.g.to_bits() == b.g.to_bits()
                        && a.node == b.node,
                    "bucket popped ({}, {}, {}), heap popped ({}, {}, {})",
                    a.f,
                    a.g,
                    a.node,
                    b.f,
                    b.g,
                    b.node
                );
            }
            (a, b) => panic!("bucket popped {a:?}, heap popped {b:?}"),
        }
    }

    #[test]
    fn pops_in_key_order_with_exact_tie_break() {
        let mut q = BucketQueue::new();
        q.begin();
        // A tie storm: many entries share f; larger node pops first.
        for node in [3usize, 9, 1, 7] {
            q.push(item(20.0, node));
        }
        q.push(item(19.5, 0));
        q.push(item(20.5, 100));
        let order: Vec<(f64, usize)> =
            std::iter::from_fn(|| q.pop().map(|i| (i.f, i.node))).collect();
        assert_eq!(
            order,
            vec![
                (19.5, 0),
                (20.0, 9),
                (20.0, 7),
                (20.0, 3),
                (20.0, 1),
                (20.5, 100)
            ]
        );
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn zero_length_degenerate_single_push() {
        // The coincident-endpoints net from PR 6: one push at f = 0,
        // popped immediately, then empty.
        let mut q = BucketQueue::new();
        q.begin();
        q.push(item(0.0, 42));
        let popped = q.pop().unwrap();
        assert_eq!((popped.f, popped.node), (0.0, 42));
        assert!(q.pop().is_none());
    }

    #[test]
    fn below_cursor_push_clamps_and_pops_first() {
        let mut q = BucketQueue::new();
        let mut h = HeapFrontier::new();
        q.begin();
        h.begin();
        for it in [item(100.0, 1), item(105.0, 2)] {
            q.push(it);
            h.push(it);
        }
        assert_same_pop(&mut q, &mut h); // 100 → cursor is now at tick 200
                                         // An ulp-ish late push below the cursor must still win the next
                                         // pop, exactly like the global heap.
        for it in [item(99.999, 3), item(101.0, 4)] {
            q.push(it);
            h.push(it);
        }
        for _ in 0..3 {
            assert_same_pop(&mut q, &mut h);
        }
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn overflow_and_rebase_preserve_order() {
        let mut q = BucketQueue::new();
        let mut h = HeapFrontier::new();
        q.begin();
        h.begin();
        // Span far beyond the 8 192 µm ring horizon, interleaved so the
        // overflow tier and its strict-suffix invariant are exercised.
        let keys = [
            0.0, 9_000.0, 3.5, 8_192.0, 8_191.5, 20_000.0, 16_500.0, 40.0,
        ];
        for (n, &f) in keys.iter().enumerate() {
            q.push(item(f, n));
            h.push(item(f, n));
        }
        // Pop a few, then push more past the (advanced) horizon.
        for _ in 0..3 {
            assert_same_pop(&mut q, &mut h);
        }
        for (n, &f) in [55.0, 30_000.0, 8_192.5].iter().enumerate() {
            q.push(item(f, 100 + n));
            h.push(item(f, 100 + n));
        }
        while q.len() > 0 || h.len() > 0 {
            assert_same_pop(&mut q, &mut h);
        }
    }

    #[test]
    fn begin_isolates_searches() {
        let mut q = BucketQueue::new();
        q.begin();
        q.push(item(7.0, 1));
        q.push(item(9_999.0, 2)); // parked in overflow
        q.begin();
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        q.push(item(1.0, 3));
        assert_eq!(q.pop().unwrap().node, 3);
        // for_each sees exactly the live entries.
        q.push(item(2.0, 4));
        q.push(item(50_000.0, 5));
        let mut seen: Vec<usize> = Vec::new();
        q.for_each(|it| seen.push(it.node));
        seen.sort_unstable();
        assert_eq!(seen, vec![4, 5]);
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Differential oracle: a random bounded-cost push/pop schedule
        /// — coarse dyadic keys for tie storms, occasional huge keys
        /// for the overflow tier, interleaved pops — must produce the
        /// bit-identical pop sequence from both queues, including the
        /// final drain.
        #[test]
        fn matches_binary_heap_on_random_schedules(seed in 0u64..(1u64 << 48)) {
            let mut q = BucketQueue::new();
            let mut h = HeapFrontier::new();
            q.begin();
            h.begin();
            for step in 0..400u64 {
                let r = splitmix64(seed ^ step);
                if r % 4 == 3 {
                    assert_same_pop(&mut q, &mut h);
                } else {
                    // Keys quantized to 0.25 µm so many collide exactly
                    // (the dyadic tie storm of real grid costs); ~6 % jump
                    // past the ring horizon.
                    let mut f = ((r >> 8) % 512) as f64 * 0.25;
                    if (r >> 24).is_multiple_of(16) {
                        f += 9_000.0 + ((r >> 28) % 4) as f64 * 8_192.0;
                    }
                    let node = ((r >> 40) % 64) as usize;
                    q.push(item(f, node));
                    h.push(item(f, node));
                }
                prop_assert_eq!(q.len(), h.len());
            }
            while q.len() > 0 || h.len() > 0 {
                assert_same_pop(&mut q, &mut h);
            }
            prop_assert!(q.pop().is_none() && h.pop().is_none());
        }
    }
}
