//! Power-delivery-network plane generation (Section VI-B, Fig. 11).
//!
//! Every interposer gets two dedicated plane layers (power directly above
//! ground). External power enters through technology-specific vertical
//! interconnects: TGVs through the glass core, TSVs through the silicon
//! interposer to C4 bumps, and plated through-holes through organic cores.

use serde::{Deserialize, Serialize};
use techlib::spec::{InterposerKind, InterposerSpec, Stacking};
use techlib::via::{ViaKind, ViaModel};

/// The P/G vertical-interconnect species per technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PgViaKind {
    /// Through-glass via.
    Tgv,
    /// Through-silicon via.
    Tsv,
    /// Plated through-hole (organic laminate).
    Pth,
}

/// The generated PDN of one interposer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PdnPlan {
    /// Technology.
    pub tech: InterposerKind,
    /// The interposer spec the planes were generated for (carries any
    /// scenario overrides into the electrical plane models below).
    pub spec: InterposerSpec,
    /// Dedicated plane layers (always 2: PWR + GND).
    pub plane_layers: usize,
    /// Plane area, mm² (the interposer footprint).
    pub plane_area_mm2: f64,
    /// Power-entry via species.
    pub via_kind: PgViaKind,
    /// Power-entry via count (split evenly between power and ground).
    pub via_count: usize,
    /// Electrical model of one power-entry via.
    pub via_model: ViaModel,
}

impl PdnPlan {
    /// Generates the PDN for an interposer of `footprint_um` on `tech`.
    ///
    /// TGVs ring the glass interposer's periphery on a 120 µm pitch;
    /// silicon TSVs form an area array on a 200 µm grid under the plane;
    /// organic PTHs sit on a 300 µm grid.
    pub fn generate(tech: InterposerKind, footprint_um: (f64, f64)) -> PdnPlan {
        PdnPlan::generate_with(&InterposerSpec::for_kind(tech), footprint_um)
    }

    /// [`PdnPlan::generate`] against an explicit (possibly overridden)
    /// spec; the spec is retained so the plane electrical models reflect
    /// its overrides.
    pub fn generate_with(spec: &InterposerSpec, footprint_um: (f64, f64)) -> PdnPlan {
        let tech = spec.kind;
        let (via_kind, count) = match tech {
            InterposerKind::Glass25D | InterposerKind::Glass3D => {
                let perimeter = 2.0 * (footprint_um.0 + footprint_um.1);
                (PgViaKind::Tgv, (perimeter / 120.0).floor() as usize)
            }
            InterposerKind::Silicon25D | InterposerKind::Silicon3D => {
                let nx = (footprint_um.0 / 200.0).floor().max(1.0);
                let ny = (footprint_um.1 / 200.0).floor().max(1.0);
                (PgViaKind::Tsv, (nx * ny) as usize)
            }
            _ => {
                let nx = (footprint_um.0 / 300.0).floor().max(1.0);
                let ny = (footprint_um.1 / 300.0).floor().max(1.0);
                (PgViaKind::Pth, (nx * ny) as usize)
            }
        };
        let via_model = match via_kind {
            PgViaKind::Tgv => ViaModel::canonical(ViaKind::Tgv, spec),
            PgViaKind::Tsv => ViaModel::canonical(ViaKind::Tsv, spec),
            // PTH: model as a fat, tall barrel through the organic core.
            PgViaKind::Pth => ViaModel::from_geometry(
                ViaKind::Tgv,
                100.0,
                spec.core_thickness_um.max(300.0),
                300.0,
                spec.core_material().rel_permittivity,
            ),
        };
        PdnPlan {
            tech,
            spec: spec.clone(),
            plane_layers: 2,
            plane_area_mm2: footprint_um.0 * footprint_um.1 / 1e6,
            via_kind,
            via_count: count.max(4),
            via_model,
        }
    }

    /// Plane-pair capacitance, F: parallel plates over the P/G dielectric.
    pub fn plane_pair_capacitance_f(&self) -> f64 {
        let eps = self.spec.dielectric_constant * techlib::units::EPSILON_0;
        eps * self.plane_area_mm2 * 1e-6 / (self.spec.dielectric_thickness_um * 1e-6)
    }

    /// Plane sheet resistance of one plane, Ω/sq.
    pub fn plane_sheet_resistance(&self) -> f64 {
        techlib::material::COPPER.sheet_resistance_ohm_sq(self.spec.metal_thickness_um)
    }

    /// Distance from the external supply to the chiplet bumps through the
    /// PDN, µm — the dominant term in the supply loop inductance. Glass 3D
    /// connects the embedded die directly at the RDL; everything else
    /// crosses its core and build-up stack.
    pub fn supply_path_length_um(&self) -> f64 {
        let Ok(stack) = techlib::stackup::Stackup::from_spec(&self.spec) else {
            // No package cross-section (monolithic baseline): the supply
            // reaches the die without crossing an interposer.
            return 0.0;
        };
        match self.spec.stacking {
            // Embedded memory die sits at the RDL: supply enters through
            // TGVs but reaches the dies after only the thin build-up.
            Stacking::Embedded => stack.total_thickness_um() - self.spec.core_thickness_um,
            _ => stack.total_thickness_um(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn via_species_match_technology() {
        assert_eq!(
            PdnPlan::generate(InterposerKind::Glass25D, (2200.0, 2200.0)).via_kind,
            PgViaKind::Tgv
        );
        assert_eq!(
            PdnPlan::generate(InterposerKind::Silicon25D, (2200.0, 2200.0)).via_kind,
            PgViaKind::Tsv
        );
        assert_eq!(
            PdnPlan::generate(InterposerKind::Apx, (3200.0, 2700.0)).via_kind,
            PgViaKind::Pth
        );
    }

    #[test]
    fn plane_capacitance_scales_with_area_over_thickness() {
        let glass = PdnPlan::generate(InterposerKind::Glass25D, (2200.0, 2200.0));
        let si = PdnPlan::generate(InterposerKind::Silicon25D, (2200.0, 2200.0));
        // Same area; silicon's 1 µm dielectric vs glass 15 µm => ~17x C.
        let ratio = si.plane_pair_capacitance_f() / glass.plane_pair_capacitance_f();
        assert!(ratio > 10.0 && ratio < 25.0, "ratio = {ratio}");
    }

    #[test]
    fn glass_3d_supply_path_is_shortest() {
        let g3 = PdnPlan::generate(InterposerKind::Glass3D, (1840.0, 1020.0));
        let g25 = PdnPlan::generate(InterposerKind::Glass25D, (2200.0, 2200.0));
        let sh = PdnPlan::generate(InterposerKind::Shinko, (2500.0, 2500.0));
        assert!(g3.supply_path_length_um() < g25.supply_path_length_um());
        assert!(g25.supply_path_length_um() < sh.supply_path_length_um());
    }

    #[test]
    fn via_counts_are_reasonable() {
        let g = PdnPlan::generate(InterposerKind::Glass25D, (2200.0, 2200.0));
        assert!((50..120).contains(&g.via_count), "{}", g.via_count);
        let s = PdnPlan::generate(InterposerKind::Silicon25D, (2200.0, 2200.0));
        assert!((80..160).contains(&s.via_count), "{}", s.via_count);
    }

    #[test]
    fn thicker_glass_metal_lowers_sheet_resistance() {
        let g = PdnPlan::generate(InterposerKind::Glass25D, (2200.0, 2200.0));
        let s = PdnPlan::generate(InterposerKind::Silicon25D, (2200.0, 2200.0));
        assert!(g.plane_sheet_resistance() < s.plane_sheet_resistance() / 3.0);
    }
}
