//! `codesign serve`: a bounded, deadline-aware sweep service.
//!
//! A long-running HTTP/1.1 JSON daemon over the batch engine, built on
//! `std` only (no async runtime, no HTTP library — the parser below
//! speaks exactly the subset the service needs). One process serves
//! many sweep requests and shares the warm artifact caches between
//! them, so repeated scenarios skip the cold front-end/route/thermal
//! work the one-shot CLI pays on every invocation.
//!
//! # Request pipeline
//!
//! ```text
//! accept → admission (bounded queue, 429 + Retry-After when full)
//!        → job queue (FIFO)
//!        → request worker: deadline scope → context pool → batch run
//!        → response (byte-identical to `codesign sweep --json`)
//! ```
//!
//! * **Admission** — the queue holds at most
//!   [`ServeConfig::queue_depth`] *waiting* jobs. A request arriving
//!   with the queue full is rejected immediately with `429 Too Many
//!   Requests` and a `Retry-After` header: explicit backpressure
//!   instead of unbounded memory growth.
//! * **Deadlines** — `X-Codesign-Deadline-Ms` (or the server-wide
//!   [`ServeConfig::default_deadline_ms`]) arms a
//!   [`techlib::cancel`] deadline scope around the request. The flow
//!   polls it at stage boundaries; an expired request surfaces
//!   per-scenario [`FlowError::Deadline`] rows in an otherwise normal
//!   response body, with status `504`. The worker pool and the shared
//!   caches stay fully reusable afterwards.
//! * **Context pool** — clean scenarios are keyed by their resolved
//!   [`techlib::spec::InterposerSpec`] array; repeated keys reuse one
//!   warm [`StudyContext`] (and all clean scenarios share one
//!   [`FrontEnd`]), so a repeated scenario is served from memoized
//!   artifacts. Scenarios with fault sites always get private,
//!   unpooled contexts — injected failures must never poison a shared
//!   cache.
//! * **Worker lease** — concurrent requests partition the machine
//!   through a [`techlib::par::LeasePool`] instead of each fanning out
//!   at full width. The granted width shapes wall-clock only; response
//!   bodies are byte-identical at any width.
//! * **Drain** — `POST /shutdown` (or `SIGTERM`) stops admission,
//!   finishes every queued and in-flight job, answers their clients,
//!   and lets [`Server::run`] return cleanly.
//!
//! # Endpoints
//!
//! | Endpoint          | Behaviour                                        |
//! |-------------------|--------------------------------------------------|
//! | `POST /sweep`     | body = `scenarios_from_json` document; returns the `codesign sweep --json` array |
//! | `GET /stats`      | queue depth, in-flight count, admission/deadline/cache counters, latency p50/p99 |
//! | `GET /healthz`    | liveness probe                                   |
//! | `POST /shutdown`  | graceful drain                                   |
//!
//! `POST /sweep` also honours `X-Codesign-Hold-Ms`, an artificial
//! service-time pad used by the load generator and the integration
//! tests to shape queue contention deterministically.

use crate::batch;
use crate::context::{FrontEnd, StudyContext};
use crate::scenario::{scenarios_from_json, Scenario};
use crate::FlowError;
use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::store::ArtifactStore;

/// Request header carrying a per-request deadline in milliseconds.
pub const DEADLINE_HEADER: &str = "X-Codesign-Deadline-Ms";
/// Request header adding an artificial service-time pad in milliseconds
/// (load shaping for tests and the bench driver).
pub const HOLD_HEADER: &str = "X-Codesign-Hold-Ms";

/// Tunables of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Request-execution workers (each runs one sweep at a time).
    pub workers: usize,
    /// Waiting jobs admitted beyond the ones already executing; the
    /// queue-full admission answer is `429`.
    pub queue_depth: usize,
    /// Deadline applied to requests that carry no
    /// [`DEADLINE_HEADER`], in milliseconds (`None` = no deadline).
    pub default_deadline_ms: Option<u64>,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// On-disk tier for the shared artifact store (`--cache-dir`). With
    /// a directory the warm pool survives restarts: a fresh server over
    /// the same directory answers its first request from persisted
    /// artifacts. `None` keeps the store in-memory only.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            default_deadline_ms: None,
            max_body_bytes: 4 << 20,
            cache_dir: None,
        }
    }
}

// ---------------------------------------------------------------------
// Context pool.
// ---------------------------------------------------------------------

/// A warm [`StudyContext`] pool keyed by resolved spec set.
///
/// Clean scenarios resolving to the same [`InterposerSpec`] array share
/// one context — and through it every memoized artifact — across
/// requests; all pooled contexts additionally share one [`FrontEnd`]
/// (the spec-independent design/split/chipletize chain). Faulty
/// scenarios always get fresh private contexts and are never pooled.
#[derive(Debug, Default)]
pub struct ContextPool {
    frontend: Arc<FrontEnd>,
    store: Option<Arc<ArtifactStore>>,
    contexts: Mutex<HashMap<String, Arc<StudyContext>>>,
}

impl ContextPool {
    /// An empty pool with no artifact store.
    pub fn new() -> ContextPool {
        ContextPool::default()
    }

    /// An empty pool whose clean contexts share `store` (in addition to
    /// the pool's own per-spec-set context reuse, the store shares
    /// stage-keyed artifacts *between* differently-specced contexts —
    /// and across restarts when it has a disk tier).
    pub fn with_store(store: Arc<ArtifactStore>) -> ContextPool {
        ContextPool {
            frontend: Arc::new(FrontEnd::with_store(Some(Arc::clone(&store)))),
            store: Some(store),
            contexts: Mutex::new(HashMap::new()),
        }
    }

    /// The pool's shared store, when one was attached.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_deref()
    }

    /// The context to run `scenario` in, plus whether it was a pool
    /// hit. The pooled context keeps the label of the first scenario
    /// that created it — labels only feed observability spans, never
    /// study bytes.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] if the scenario's resolved specs
    /// fail to serialize into a pool key (not reachable for valid
    /// scenarios).
    pub fn checkout(&self, scenario: &Scenario) -> Result<(Arc<StudyContext>, bool), FlowError> {
        if !scenario.is_clean() {
            return Ok((Arc::new(StudyContext::for_scenario(scenario)), false));
        }
        let key = spec_key(scenario)?;
        let mut map = self.contexts.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(ctx) = map.get(&key) {
            return Ok((Arc::clone(ctx), true));
        }
        let ctx = Arc::new(StudyContext::for_scenario_with(
            scenario,
            Arc::clone(&self.frontend),
            self.store.clone(),
        ));
        map.insert(key, Arc::clone(&ctx));
        Ok((ctx, false))
    }

    /// Distinct spec sets currently pooled.
    pub fn len(&self) -> usize {
        self.contexts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing is pooled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Pool key: the serialized resolved-spec array. `InterposerSpec` holds
/// `f64` fields, so it cannot be `Eq`/`Hash` itself; its JSON form is a
/// faithful stand-in (serde emits every field, and two scenarios whose
/// resolved specs print identically produce identical studies).
fn spec_key(scenario: &Scenario) -> Result<String, FlowError> {
    let specs: Vec<InterposerSpec> = InterposerKind::ALL
        .iter()
        .map(|&kind| scenario.spec_for(kind))
        .collect();
    serde_json::to_string(&specs).map_err(|e| FlowError::InvalidConfig {
        reason: format!("spec pool key serialization: {e}"),
    })
}

// ---------------------------------------------------------------------
// Server state.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct ServeStats {
    requests: AtomicU64,
    rejected: AtomicU64,
    deadline_hits: AtomicU64,
    completed: AtomicU64,
    context_hits: AtomicU64,
    context_misses: AtomicU64,
    in_flight: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

#[derive(Debug)]
struct Job {
    body: String,
    deadline: Option<Instant>,
    hold: Option<Duration>,
    reply: mpsc::Sender<Response>,
}

#[derive(Debug, Default)]
struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    queue: Mutex<Queue>,
    ready: Condvar,
    pool: ContextPool,
    lease: techlib::par::LeasePool,
    stats: ServeStats,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    fn new(config: ServeConfig) -> std::io::Result<Shared> {
        // The daemon always runs its pool over a shared store: clean
        // scenarios with coinciding stage keys share computations even
        // across differently-specced pooled contexts. A cache directory
        // upgrades the store with the persistent warm tier.
        let store = match &config.cache_dir {
            Some(dir) => Arc::new(ArtifactStore::with_disk(dir)?),
            None => Arc::new(ArtifactStore::in_memory()),
        };
        Ok(Shared {
            lease: techlib::par::LeasePool::new(techlib::par::thread_count()),
            config,
            queue: Mutex::new(Queue::default()),
            ready: Condvar::new(),
            pool: ContextPool::with_store(store),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        })
    }

    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug)]
struct Response {
    status: u16,
    body: String,
    retry_after_s: Option<u64>,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            retry_after_s: None,
        }
    }
}

fn error_body(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    push_json_string(&mut out, message);
    out.push_str("}\n");
    out
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// SIGTERM.
// ---------------------------------------------------------------------

static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    unsafe extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM_SEEN.store(true, Ordering::Relaxed);
    }
    extern "C" {
        // std already links libc on unix; declaring `signal` here avoids
        // a crate dependency the offline container cannot fetch.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM_NUM: i32 = 15;
    // SAFETY: the handler only stores to a static atomic, which is
    // async-signal-safe; `signal` is called once before any request
    // thread exists.
    unsafe {
        signal(SIGTERM_NUM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// A bound-but-not-yet-running sweep service. [`Server::bind`] claims
/// the socket (so callers can read [`Server::local_addr`] — e.g. after
/// binding port 0), [`Server::run`] serves until drained.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (any `host:port`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures, or an unusable
    /// [`ServeConfig::cache_dir`].
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept so the loop can poll the shutdown flags:
        // glibc installs signal handlers with SA_RESTART, so a blocking
        // accept would never observe SIGTERM.
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared::new(config)?),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until `POST /shutdown` or `SIGTERM`, then drains: stops
    /// accepting, finishes every queued and in-flight job (their
    /// clients still get full responses), joins all workers, and
    /// returns.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop I/O failures (`WouldBlock` is the poll idle
    /// path, not an error).
    pub fn run(self) -> std::io::Result<()> {
        install_sigterm_handler();
        let mut workers = Vec::new();
        for _ in 0..self.shared.config.workers.max(1) {
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if SIGTERM_SEEN.load(Ordering::Relaxed) {
                self.shared.shutdown.store(true, Ordering::Relaxed);
            }
            if self.shared.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    connections.push(std::thread::spawn(move || {
                        handle_connection(&shared, stream);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
            connections.retain(|handle| !handle.is_finished());
        }
        // Drain: close the queue so workers exit once it is empty, then
        // join them (finishing every queued job and sending its reply),
        // then join the connection threads (each is blocked at most on
        // the reply its worker just sent).
        self.shared.lock_queue().closed = true;
        self.shared.ready.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        for connection in connections {
            let _ = connection.join();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Request workers.
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.closed {
                    break None;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let response = execute(shared, &job);
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        shared
            .stats
            .latencies_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(elapsed_us);
        shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        techlib::obs::add(techlib::obs::SERVE_COMPLETED, 1);
        // A send failure means the client hung up; the work is done
        // either way and the next job proceeds normally.
        let _ = job.reply.send(response);
    }
}

/// Runs one admitted sweep job to a response. The deadline scope is
/// entered before anything else (including the artificial hold), so a
/// request that overstays while queued-plus-held starts failing at the
/// first stage boundary its scenarios reach.
fn execute(shared: &Shared, job: &Job) -> Response {
    let _span = techlib::obs::span("serve.request");
    let _deadline = job.deadline.map(techlib::cancel::deadline_at);
    if let Some(hold) = job.hold {
        std::thread::sleep(hold);
    }
    let scenarios = match scenarios_from_json(&job.body) {
        Ok(scenarios) => scenarios,
        Err(e) => return Response::json(400, error_body(&e.to_string())),
    };
    // Per-batch thread config: the daemon honours the *current*
    // environment (resolve_thread_count re-reads it), unlike one-shot
    // flows which memoise it per process.
    let width = match techlib::par::resolve_thread_count() {
        Ok(width) => width,
        Err(e) => return Response::json(500, error_body(&e.to_string())),
    };
    let mut contexts = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        match shared.pool.checkout(scenario) {
            Ok((ctx, hit)) => {
                if hit {
                    shared.stats.context_hits.fetch_add(1, Ordering::Relaxed);
                    techlib::obs::add(techlib::obs::SERVE_CONTEXT_HITS, 1);
                } else {
                    shared.stats.context_misses.fetch_add(1, Ordering::Relaxed);
                    techlib::obs::add(techlib::obs::SERVE_CONTEXT_MISSES, 1);
                }
                contexts.push(ctx);
            }
            Err(e) => return Response::json(500, error_body(&e.to_string())),
        }
    }
    // Lease a share of the machine for this request's fan-out. Width
    // never changes response bytes, so whatever the pool grants is safe.
    let lease = shared.lease.lease(width);
    let indices: Vec<usize> = (0..scenarios.len()).collect();
    let outcomes = techlib::par::ordered_map_with(lease.workers(), &indices, |&i| {
        batch::run_in_context(&contexts[i], &scenarios[i])
    });
    drop(lease);
    let deadline_hit = outcomes
        .iter()
        .any(|outcome| matches!(outcome, Err(FlowError::Deadline { .. })));
    if deadline_hit {
        shared.stats.deadline_hits.fetch_add(1, Ordering::Relaxed);
        techlib::obs::add(techlib::obs::SERVE_DEADLINE_HITS, 1);
    }
    match batch::sweep_json(&scenarios, &outcomes) {
        // `sweep --json` prints the array plus a newline; the response
        // body reproduces the CLI's stdout byte for byte.
        Ok(array) => Response::json(if deadline_hit { 504 } else { 200 }, array + "\n"),
        Err(e) => Response::json(500, error_body(&e.to_string())),
    }
}

// ---------------------------------------------------------------------
// HTTP handling.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    body: String,
}

fn header<'a>(request: &'a Request, name: &str) -> Option<&'a str> {
    request
        .headers
        .iter()
        .find(|(key, _)| key.eq_ignore_ascii_case(name))
        .map(|(_, value)| value.as_str())
}

fn header_ms(request: &Request, name: &str) -> Result<Option<u64>, String> {
    let Some(raw) = header(request, name) else {
        return Ok(None);
    };
    raw.trim()
        .parse::<u64>()
        .map(Some)
        .map_err(|_| format!("{name}: expected a millisecond count, got {raw:?}"))
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let response = match read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(request) => dispatch(shared, &request),
        Err(e) => Response::json(400, error_body(&format!("malformed request: {e}"))),
    };
    write_response(&mut stream, &response);
}

fn read_request(stream: &mut TcpStream, max_body: usize) -> std::io::Result<Request> {
    let bad = |message: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, message);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > 64 * 1024 {
            return Err(bad("header section too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed before the header section ended"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..header_end].to_vec())
        .map_err(|_| bad("header section is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let path = parts.next().ok_or_else(|| bad("missing path"))?.to_string();
    let headers: Vec<(String, String)> = lines
        .filter(|line| !line.is_empty())
        .filter_map(|line| {
            let (key, value) = line.split_once(':')?;
            Some((key.trim().to_string(), value.trim().to_string()))
        })
        .collect();
    let content_length = headers
        .iter()
        .find(|(key, _)| key.eq_ignore_ascii_case("content-length"))
        .map(|(_, value)| value.parse::<usize>())
        .transpose()
        .map_err(|_| bad("invalid Content-Length"))?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(bad("request body too large"));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|window| window == b"\r\n\r\n")
}

fn dispatch(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/sweep") => admit_sweep(shared, request),
        ("GET", "/stats") => Response::json(200, stats_body(shared)),
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}\n".to_string()),
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::Relaxed);
            Response::json(200, "{\"status\":\"draining\"}\n".to_string())
        }
        _ => Response::json(
            404,
            error_body(&format!("no route for {} {}", request.method, request.path)),
        ),
    }
}

/// Admission: counts the request, applies backpressure, enqueues, and
/// blocks this connection thread until a request worker replies.
fn admit_sweep(shared: &Shared, request: &Request) -> Response {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    techlib::obs::add(techlib::obs::SERVE_REQUESTS, 1);
    let deadline_ms = match header_ms(request, DEADLINE_HEADER) {
        Ok(ms) => ms.or(shared.config.default_deadline_ms),
        Err(e) => return Response::json(400, error_body(&e)),
    };
    let hold_ms = match header_ms(request, HOLD_HEADER) {
        Ok(ms) => ms,
        Err(e) => return Response::json(400, error_body(&e)),
    };
    let (reply, receiver) = mpsc::channel();
    // The deadline clock starts at admission: time spent waiting in the
    // queue counts against the request, which is what lets an
    // overloaded server shed expired work instead of executing it.
    let job = Job {
        body: request.body.clone(),
        deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        hold: hold_ms.map(Duration::from_millis),
        reply,
    };
    {
        let mut queue = shared.lock_queue();
        if queue.closed || shared.shutdown.load(Ordering::Relaxed) {
            return Response::json(503, error_body("server is draining"));
        }
        if queue.jobs.len() >= shared.config.queue_depth {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            techlib::obs::add(techlib::obs::SERVE_ADMISSION_REJECTS, 1);
            return Response {
                status: 429,
                body: error_body("queue full"),
                retry_after_s: Some(1),
            };
        }
        queue.jobs.push_back(job);
    }
    shared.ready.notify_one();
    match receiver.recv() {
        Ok(response) => response,
        Err(_) => Response::json(500, error_body("request worker dropped the job")),
    }
}

fn percentile_us(sorted: &[u64], percent: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((percent / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn stats_body(shared: &Shared) -> String {
    let queue_depth = shared.lock_queue().jobs.len();
    let mut latencies = shared
        .stats
        .latencies_us
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    latencies.sort_unstable();
    let stats = &shared.stats;
    let hits = stats.context_hits.load(Ordering::Relaxed);
    let misses = stats.context_misses.load(Ordering::Relaxed);
    let hit_ratio = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let store = shared
        .pool
        .store()
        .map(ArtifactStore::stats)
        .unwrap_or_default();
    format!(
        concat!(
            "{{\"queue_depth\":{},\"in_flight\":{},\"workers\":{},",
            "\"lease_total\":{},\"requests\":{},\"rejected\":{},",
            "\"deadline_hits\":{},\"completed\":{},\"context_hits\":{},",
            "\"context_misses\":{},\"context_hit_ratio\":{:.4},",
            "\"contexts_pooled\":{},\"store_mem_hits\":{},",
            "\"store_disk_hits\":{},\"store_misses\":{},",
            "\"store_writes\":{},\"store_invalid\":{},",
            "\"latency_p50_us\":{},",
            "\"latency_p99_us\":{},\"uptime_us\":{}}}\n"
        ),
        queue_depth,
        stats.in_flight.load(Ordering::Relaxed),
        shared.config.workers.max(1),
        shared.lease.total(),
        stats.requests.load(Ordering::Relaxed),
        stats.rejected.load(Ordering::Relaxed),
        stats.deadline_hits.load(Ordering::Relaxed),
        stats.completed.load(Ordering::Relaxed),
        hits,
        misses,
        hit_ratio,
        shared.pool.len(),
        store.mem_hits,
        store.disk_hits,
        store.misses,
        store.writes,
        store.invalid,
        percentile_us(&latencies, 50.0),
        percentile_us(&latencies, 99.0),
        u64::try_from(shared.started.elapsed().as_micros()).unwrap_or(u64::MAX),
    )
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        status_reason(response.status),
        response.body.len()
    );
    if let Some(seconds) = response.retry_after_s {
        use std::fmt::Write as _;
        let _ = write!(head, "Retry-After: {seconds}\r\n");
    }
    head.push_str("\r\n");
    // The client may already be gone; nothing useful to do about a
    // failed write on a connection we are about to close anyway.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOverrides;
    use crate::table5::MonitorLengths;

    #[test]
    fn context_pool_reuses_clean_specs_and_isolates_faulty_ones() {
        let pool = ContextPool::new();
        assert!(pool.is_empty());
        let a = Scenario::paper(InterposerKind::Glass3D);
        let (ctx1, hit1) = pool.checkout(&a).unwrap();
        let (ctx2, hit2) = pool.checkout(&a).unwrap();
        assert!(!hit1 && hit2, "second checkout is a pool hit");
        assert!(Arc::ptr_eq(&ctx1, &ctx2));
        assert_eq!(pool.len(), 1);

        // A different resolved spec pools separately…
        let wide = Scenario::new(
            "wide",
            InterposerKind::Glass3D,
            MonitorLengths::Routed,
            ScenarioOverrides {
                microbump_pitch_um: Some(70.0),
                ..Default::default()
            },
            Vec::new(),
        )
        .unwrap();
        let (ctx3, hit3) = pool.checkout(&wide).unwrap();
        assert!(!hit3);
        assert!(!Arc::ptr_eq(&ctx1, &ctx3));
        assert_eq!(pool.len(), 2);

        // …and a faulty scenario is never pooled.
        let faulty = Scenario::new(
            "faulty",
            InterposerKind::Glass3D,
            MonitorLengths::Routed,
            ScenarioOverrides::default(),
            vec!["thermal.solve".to_string()],
        )
        .unwrap();
        let (fa, hit_a) = pool.checkout(&faulty).unwrap();
        let (fb, hit_b) = pool.checkout(&faulty).unwrap();
        assert!(!hit_a && !hit_b);
        assert!(!Arc::ptr_eq(&fa, &fb));
        assert_eq!(pool.len(), 2, "faulty contexts never enter the pool");
    }

    #[test]
    fn http_requests_parse_over_a_real_socket() {
        // Round-trip a request through a real loopback socket pair.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(
                    b"POST /sweep HTTP/1.1\r\nHost: x\r\nX-Codesign-Deadline-Ms: 250\r\n\
                      Content-Length: 2\r\n\r\n[]",
                )
                .unwrap();
            stream.flush().unwrap();
            // Keep the socket open until the server side has parsed.
            std::thread::sleep(Duration::from_millis(50));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let request = read_request(&mut stream, 1024).unwrap();
        client.join().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/sweep");
        assert_eq!(request.body, "[]");
        assert_eq!(header(&request, "x-codesign-deadline-ms"), Some("250"));
        assert_eq!(header_ms(&request, DEADLINE_HEADER), Ok(Some(250)));
        assert_eq!(header_ms(&request, HOLD_HEADER), Ok(None));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile_us(&[], 50.0), 0);
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 50.0), 50);
        assert_eq!(percentile_us(&sorted, 99.0), 99);
        assert_eq!(percentile_us(&sorted, 100.0), 100);
        assert_eq!(percentile_us(&[7], 99.0), 7);
    }

    #[test]
    fn error_bodies_escape_json() {
        assert_eq!(
            error_body("bad \"x\"\n"),
            "{\"error\":\"bad \\\"x\\\"\\n\"}\n"
        );
    }
}
