//! `codesign serve`: a bounded, deadline-aware sweep service.
//!
//! A long-running HTTP/1.1 JSON daemon over the batch engine, built on
//! `std` only (no async runtime, no HTTP library — the parser below
//! speaks exactly the subset the service needs). One process serves
//! many sweep requests and shares the warm artifact caches between
//! them, so repeated scenarios skip the cold front-end/route/thermal
//! work the one-shot CLI pays on every invocation.
//!
//! # Request pipeline
//!
//! ```text
//! accept → connection pool (bounded, 503 + Retry-After at capacity)
//!        → read (whole-phase header/body budgets, size limits)
//!        → admission (bounded queue, 429 + Retry-After when full)
//!        → job queue (FIFO)
//!        → request worker: deadline scope → context pool → batch run
//!        → bounded write (abort-on-stall within the write budget)
//! ```
//!
//! # Network-edge hardening
//!
//! Every per-connection resource is explicitly bounded, so a
//! misbehaving client can never pin a thread or wedge the drain:
//!
//! * **Connection pool** — accepted sockets are handled by a
//!   fixed-size pool of [`ServeConfig::max_connections`] threads; the
//!   accept loop never spawns and never touches a socket itself. An
//!   accept beyond capacity goes to a dedicated rejection thread that
//!   answers `503` + `Retry-After` and closes the socket under hard
//!   deadlines and a drain byte cap, so neither a connect flood nor a
//!   byte-dripping rejected client can slow the accept loop. A panic
//!   inside a handler (or a request worker) is caught: the pools never
//!   shrink and the connection count never leaks.
//! * **Read budgets** — the header section must arrive within
//!   [`ServeConfig::header_read_ms`] and the body within
//!   [`ServeConfig::body_read_ms`], *in total*: the deadline is fixed
//!   when the phase starts, so a slowloris client dripping one byte
//!   per interval cannot reset it. Exhausting a budget aborts the
//!   connection with `408` and counts `serve.slow_client_aborts`.
//! * **Size limits** — header sections over 64 KiB answer `431`;
//!   bodies declared over [`ServeConfig::max_body_bytes`] answer
//!   `413` before any body byte is read.
//! * **Bounded writes** — a whole response must be accepted by the
//!   peer within [`ServeConfig::write_ms`]; a reader that stalls past
//!   the budget has its socket dropped (`serve.write_timeouts`), so
//!   graceful drain completes even against clients that never read.
//!
//! * **Admission** — the queue holds at most
//!   [`ServeConfig::queue_depth`] *waiting* jobs. A request arriving
//!   with the queue full is rejected immediately with `429 Too Many
//!   Requests` and a `Retry-After` header: explicit backpressure
//!   instead of unbounded memory growth.
//! * **Deadlines** — `X-Codesign-Deadline-Ms` (or the server-wide
//!   [`ServeConfig::default_deadline_ms`]) arms a
//!   [`techlib::cancel`] deadline scope around the request. The flow
//!   polls it at stage boundaries; an expired request surfaces
//!   per-scenario [`FlowError::Deadline`] rows in an otherwise normal
//!   response body, with status `504`. The worker pool and the shared
//!   caches stay fully reusable afterwards.
//! * **Context pool** — clean scenarios are keyed by their resolved
//!   [`techlib::spec::InterposerSpec`] array; repeated keys reuse one
//!   warm [`StudyContext`] (and all clean scenarios share one
//!   [`FrontEnd`]), so a repeated scenario is served from memoized
//!   artifacts. Scenarios with fault sites always get private,
//!   unpooled contexts — injected failures must never poison a shared
//!   cache.
//! * **Worker lease** — concurrent requests partition the machine
//!   through a [`techlib::par::LeasePool`] instead of each fanning out
//!   at full width. The granted width shapes wall-clock only; response
//!   bodies are byte-identical at any width.
//! * **Drain** — `POST /shutdown` (or `SIGTERM`) stops admission,
//!   finishes every queued and in-flight job, answers their clients,
//!   and lets [`Server::run`] return cleanly.
//!
//! # Endpoints
//!
//! | Endpoint          | Behaviour                                        |
//! |-------------------|--------------------------------------------------|
//! | `POST /sweep`     | body = `scenarios_from_json` document; returns the `codesign sweep --json` array |
//! | `GET /stats`      | queue depth, in-flight count, admission/deadline/cache counters, latency p50/p99 |
//! | `GET /healthz`    | liveness probe                                   |
//! | `POST /shutdown`  | graceful drain                                   |
//!
//! `POST /sweep` also honours `X-Codesign-Hold-Ms`, an artificial
//! service-time pad used by the load generator and the integration
//! tests to shape queue contention deterministically.

use crate::batch;
use crate::context::{FrontEnd, StudyContext};
use crate::scenario::{scenarios_from_json, Scenario};
use crate::FlowError;
use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::store::ArtifactStore;

/// Request header carrying a per-request deadline in milliseconds.
pub const DEADLINE_HEADER: &str = "X-Codesign-Deadline-Ms";
/// Request header adding an artificial service-time pad in milliseconds
/// (load shaping for tests and the bench driver).
pub const HOLD_HEADER: &str = "X-Codesign-Hold-Ms";

/// Tunables of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Request-execution workers (each runs one sweep at a time).
    pub workers: usize,
    /// Waiting jobs admitted beyond the ones already executing; the
    /// queue-full admission answer is `429`.
    pub queue_depth: usize,
    /// Deadline applied to requests that carry no
    /// [`DEADLINE_HEADER`], in milliseconds (`None` = no deadline).
    pub default_deadline_ms: Option<u64>,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// On-disk tier for the shared artifact store (`--cache-dir`). With
    /// a directory the warm pool survives restarts: a fresh server over
    /// the same directory answers its first request from persisted
    /// artifacts. `None` keeps the store in-memory only.
    pub cache_dir: Option<PathBuf>,
    /// Connection-handler pool size: the hard cap on sockets being
    /// read, executed, or answered at once. Accepts at capacity are
    /// answered `503` + `Retry-After` immediately instead of spawning.
    pub max_connections: usize,
    /// Whole-header read budget in milliseconds, fixed when the
    /// connection is picked up — drip-fed bytes never extend it.
    pub header_read_ms: u64,
    /// Whole-body read budget in milliseconds, fixed when the header
    /// section has parsed.
    pub body_read_ms: u64,
    /// Whole-response write budget in milliseconds. A reader stalling
    /// the send past this has its socket dropped (abort-on-stall).
    pub write_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            default_deadline_ms: None,
            max_body_bytes: 4 << 20,
            cache_dir: None,
            max_connections: 32,
            header_read_ms: 10_000,
            body_read_ms: 30_000,
            write_ms: 10_000,
        }
    }
}

// ---------------------------------------------------------------------
// Context pool.
// ---------------------------------------------------------------------

/// A warm [`StudyContext`] pool keyed by resolved spec set.
///
/// Clean scenarios resolving to the same [`InterposerSpec`] array share
/// one context — and through it every memoized artifact — across
/// requests; all pooled contexts additionally share one [`FrontEnd`]
/// (the spec-independent design/split/chipletize chain). Faulty
/// scenarios always get fresh private contexts and are never pooled.
#[derive(Debug, Default)]
pub struct ContextPool {
    frontend: Arc<FrontEnd>,
    store: Option<Arc<ArtifactStore>>,
    contexts: Mutex<HashMap<String, Arc<StudyContext>>>,
}

impl ContextPool {
    /// An empty pool with no artifact store.
    pub fn new() -> ContextPool {
        ContextPool::default()
    }

    /// An empty pool whose clean contexts share `store` (in addition to
    /// the pool's own per-spec-set context reuse, the store shares
    /// stage-keyed artifacts *between* differently-specced contexts —
    /// and across restarts when it has a disk tier).
    pub fn with_store(store: Arc<ArtifactStore>) -> ContextPool {
        ContextPool {
            frontend: Arc::new(FrontEnd::with_store(Some(Arc::clone(&store)))),
            store: Some(store),
            contexts: Mutex::new(HashMap::new()),
        }
    }

    /// The pool's shared store, when one was attached.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_deref()
    }

    /// The context to run `scenario` in, plus whether it was a pool
    /// hit. The pooled context keeps the label of the first scenario
    /// that created it — labels only feed observability spans, never
    /// study bytes.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] if the scenario's resolved specs
    /// fail to serialize into a pool key (not reachable for valid
    /// scenarios).
    pub fn checkout(&self, scenario: &Scenario) -> Result<(Arc<StudyContext>, bool), FlowError> {
        if !scenario.is_clean() {
            return Ok((Arc::new(StudyContext::for_scenario(scenario)), false));
        }
        let key = spec_key(scenario)?;
        let mut map = self.contexts.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(ctx) = map.get(&key) {
            return Ok((Arc::clone(ctx), true));
        }
        let ctx = Arc::new(StudyContext::for_scenario_with(
            scenario,
            Arc::clone(&self.frontend),
            self.store.clone(),
        ));
        map.insert(key, Arc::clone(&ctx));
        Ok((ctx, false))
    }

    /// Distinct spec sets currently pooled.
    pub fn len(&self) -> usize {
        self.contexts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing is pooled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Pool key: the serialized resolved-spec array. `InterposerSpec` holds
/// `f64` fields, so it cannot be `Eq`/`Hash` itself; its JSON form is a
/// faithful stand-in (serde emits every field, and two scenarios whose
/// resolved specs print identically produce identical studies).
fn spec_key(scenario: &Scenario) -> Result<String, FlowError> {
    let specs: Vec<InterposerSpec> = InterposerKind::ALL
        .iter()
        .map(|&kind| scenario.spec_for(kind))
        .collect();
    serde_json::to_string(&specs).map_err(|e| FlowError::InvalidConfig {
        reason: format!("spec pool key serialization: {e}"),
    })
}

// ---------------------------------------------------------------------
// Server state.
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct ServeStats {
    requests: AtomicU64,
    rejected: AtomicU64,
    conn_rejected: AtomicU64,
    slow_client_aborts: AtomicU64,
    write_timeouts: AtomicU64,
    deadline_hits: AtomicU64,
    completed: AtomicU64,
    context_hits: AtomicU64,
    context_misses: AtomicU64,
    in_flight: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

#[derive(Debug)]
struct Job {
    body: String,
    deadline: Option<Instant>,
    hold: Option<Duration>,
    reply: mpsc::Sender<Response>,
}

#[derive(Debug, Default)]
struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Accepted sockets waiting for a connection-pool thread. Bounded by
/// construction: the accept loop only enqueues while `open_conns` is
/// below [`ServeConfig::max_connections`].
#[derive(Debug, Default)]
struct ConnQueue {
    streams: VecDeque<TcpStream>,
    closed: bool,
}

/// Over-capacity sockets waiting for the rejection thread to answer
/// them `503`. Bounded to [`REJECT_QUEUE_DEPTH`]: past that the accept
/// loop drops the socket unanswered rather than queue without limit.
#[derive(Debug, Default)]
struct RejectQueue {
    streams: VecDeque<TcpStream>,
    closed: bool,
}

/// Most sockets waiting for the rejection thread at once. Beyond this
/// a connect flood is shedding faster than 503s can be written, and a
/// silent close beats unbounded queueing.
const REJECT_QUEUE_DEPTH: usize = 64;

/// Whole-phase budget for each half of a rejection (the `503` write,
/// then the graceful-close drain), in milliseconds.
const REJECT_IO_MS: u64 = 100;

/// Most bytes drained from a rejected socket before closing anyway.
/// Together with [`REJECT_IO_MS`] this bounds the drain absolutely: a
/// client dripping one byte per read-timeout can extend neither the
/// deadline nor the byte budget.
const REJECT_DRAIN_BYTES: usize = 64 * 1024;

#[derive(Debug)]
struct Shared {
    config: ServeConfig,
    queue: Mutex<Queue>,
    ready: Condvar,
    conns: Mutex<ConnQueue>,
    conn_ready: Condvar,
    rejects: Mutex<RejectQueue>,
    reject_ready: Condvar,
    /// Sockets accepted but not yet fully handled (queued + in
    /// handling). Only the accept thread increments, so the capacity
    /// check cannot overshoot.
    open_conns: AtomicU64,
    pool: ContextPool,
    lease: techlib::par::LeasePool,
    stats: ServeStats,
    shutdown: AtomicBool,
    started: Instant,
}

impl Shared {
    fn new(config: ServeConfig) -> std::io::Result<Shared> {
        // The daemon always runs its pool over a shared store: clean
        // scenarios with coinciding stage keys share computations even
        // across differently-specced pooled contexts. A cache directory
        // upgrades the store with the persistent warm tier.
        let store = match &config.cache_dir {
            Some(dir) => Arc::new(ArtifactStore::with_disk(dir)?),
            None => Arc::new(ArtifactStore::in_memory()),
        };
        Ok(Shared {
            lease: techlib::par::LeasePool::new(techlib::par::thread_count()),
            config,
            queue: Mutex::new(Queue::default()),
            ready: Condvar::new(),
            conns: Mutex::new(ConnQueue::default()),
            conn_ready: Condvar::new(),
            rejects: Mutex::new(RejectQueue::default()),
            reject_ready: Condvar::new(),
            open_conns: AtomicU64::new(0),
            pool: ContextPool::with_store(store),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        })
    }

    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_conns(&self) -> MutexGuard<'_, ConnQueue> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_rejects(&self) -> MutexGuard<'_, RejectQueue> {
        self.rejects.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug)]
struct Response {
    status: u16,
    body: String,
    retry_after_s: Option<u64>,
    allow: Option<&'static str>,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            retry_after_s: None,
            allow: None,
        }
    }
}

fn error_body(message: &str) -> String {
    let mut out = String::from("{\"error\":");
    push_json_string(&mut out, message);
    out.push_str("}\n");
    out
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// SIGTERM.
// ---------------------------------------------------------------------

static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_sigterm_handler() {
    unsafe extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM_SEEN.store(true, Ordering::Relaxed);
    }
    extern "C" {
        // std already links libc on unix; declaring `signal` here avoids
        // a crate dependency the offline container cannot fetch.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM_NUM: i32 = 15;
    // SAFETY: the handler only stores to a static atomic, which is
    // async-signal-safe; `signal` is called once before any request
    // thread exists.
    unsafe {
        signal(SIGTERM_NUM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// A bound-but-not-yet-running sweep service. [`Server::bind`] claims
/// the socket (so callers can read [`Server::local_addr`] — e.g. after
/// binding port 0), [`Server::run`] serves until drained.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (any `host:port`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures, or an unusable
    /// [`ServeConfig::cache_dir`].
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept so the loop can poll the shutdown flags:
        // glibc installs signal handlers with SA_RESTART, so a blocking
        // accept would never observe SIGTERM.
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared::new(config)?),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until `POST /shutdown` or `SIGTERM`, then drains: stops
    /// accepting, finishes every queued and in-flight job (their
    /// clients still get full responses), joins all workers, and
    /// returns. Every drain step is time-bounded: connection threads
    /// abort reads at the read budgets and writes at the write budget,
    /// so even a client that never reads its response cannot wedge the
    /// join.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop I/O failures (`WouldBlock` is the poll idle
    /// path, not an error). The drain still runs before the error
    /// returns.
    pub fn run(self) -> std::io::Result<()> {
        install_sigterm_handler();
        let mut workers = Vec::new();
        for _ in 0..self.shared.config.workers.max(1) {
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        // The fixed-size connection pool: reading, execution hand-off
        // and the response write for one socket all happen on one of
        // these threads. The accept loop never spawns, so a client
        // flood cannot grow the thread count past this cap.
        let mut handlers = Vec::new();
        for _ in 0..self.shared.config.max_connections.max(1) {
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || connection_loop(&shared)));
        }
        // Over-capacity 503s are written by this dedicated thread, so
        // the accept loop never performs per-socket I/O and a connect
        // flood cannot slow accepts or the shutdown poll below.
        let rejector = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || reject_loop(&shared))
        };
        let result = loop {
            if SIGTERM_SEEN.load(Ordering::Relaxed) {
                self.shared.shutdown.store(true, Ordering::Relaxed);
            }
            if self.shared.shutdown.load(Ordering::Relaxed) {
                break Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => accept_stream(&self.shared, stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    self.shared.shutdown.store(true, Ordering::Relaxed);
                    break Err(e);
                }
            }
        };
        // Drain, in dependency order. 1) Close the connection queue and
        // join the pool: handlers finish their queued and in-flight
        // sockets (late /sweep admissions answer 503 because the
        // shutdown flag is set; handlers blocked on a worker reply get
        // it because the workers are still running). 2) Close the job
        // queue and join the workers, which finish every admitted job.
        {
            self.shared.lock_conns().closed = true;
        }
        self.shared.conn_ready.notify_all();
        for handler in handlers {
            let _ = handler.join();
        }
        // The rejection thread's backlog is doubly bounded (queue depth
        // and per-socket I/O budgets), so this join is time-bounded too.
        {
            self.shared.lock_rejects().closed = true;
        }
        self.shared.reject_ready.notify_all();
        let _ = rejector.join();
        self.shared.lock_queue().closed = true;
        self.shared.ready.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        result
    }
}

/// Hands an accepted socket to the connection pool, or — when the pool
/// is at capacity — to the rejection thread for a `503`. Either way the
/// accept loop only accepts and enqueues; it never performs per-socket
/// I/O, so no client behaviour can stall it.
fn accept_stream(shared: &Shared, stream: TcpStream) {
    // Accepted sockets must block (with timeouts): Linux does not make
    // them inherit the listener's non-blocking flag, but that is
    // platform-specific, so pin it.
    let _ = stream.set_nonblocking(false);
    let capacity = shared.config.max_connections.max(1) as u64;
    if shared.open_conns.load(Ordering::Relaxed) >= capacity {
        shared.stats.conn_rejected.fetch_add(1, Ordering::Relaxed);
        techlib::obs::add(techlib::obs::SERVE_CONN_REJECTED, 1);
        // A full rejection queue means the flood is outpacing even the
        // bounded 503 writes; dropping the socket unanswered is the
        // only move that keeps every queue finite.
        {
            let mut rejects = shared.lock_rejects();
            if !rejects.closed && rejects.streams.len() < REJECT_QUEUE_DEPTH {
                rejects.streams.push_back(stream);
            }
        }
        shared.reject_ready.notify_one();
        return;
    }
    shared.open_conns.fetch_add(1, Ordering::Relaxed);
    shared.lock_conns().streams.push_back(stream);
    shared.conn_ready.notify_one();
}

/// The rejection thread: answers each over-capacity socket with `503`
/// + `Retry-After` and closes it gracefully, within hard bounds.
fn reject_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut rejects = shared.lock_rejects();
            loop {
                if let Some(stream) = rejects.streams.pop_front() {
                    break Some(stream);
                }
                if rejects.closed {
                    break None;
                }
                rejects = shared
                    .reject_ready
                    .wait(rejects)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(mut stream) = stream else { return };
        reject_connection(&mut stream);
    }
}

/// Writes the capacity `503`, then closes gracefully: half-close the
/// write side and drain whatever the client already sent, because
/// closing with unread data in the receive buffer makes the kernel
/// send RST, which can discard the buffered 503 before the client
/// reads it. The write and the drain each get a fixed whole-phase
/// deadline ([`REJECT_IO_MS`]) and the drain additionally a byte cap
/// ([`REJECT_DRAIN_BYTES`]) — a client dripping bytes just under the
/// read timeout extends neither, so a rejected socket can hold this
/// thread for at most ~2 × [`REJECT_IO_MS`].
fn reject_connection(stream: &mut TcpStream) {
    let reject = Response {
        status: 503,
        body: error_body("connection capacity reached"),
        retry_after_s: Some(1),
        allow: None,
    };
    let _ = write_response_within(stream, &reject, Duration::from_millis(REJECT_IO_MS));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + Duration::from_millis(REJECT_IO_MS);
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < REJECT_DRAIN_BYTES {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// One connection-pool thread: picks up accepted sockets until the
/// queue closes and empties, handling each within the read/write
/// budgets.
fn connection_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut conns = shared.lock_conns();
            loop {
                if let Some(stream) = conns.streams.pop_front() {
                    break Some(stream);
                }
                if conns.closed {
                    break None;
                }
                conns = shared
                    .conn_ready
                    .wait(conns)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(stream) = stream else { return };
        // Panic isolation: a panicking handler must neither kill this
        // pool thread nor skip the decrement below — either would
        // permanently shrink the effective pool until every accept is
        // answered 503. The socket dies with the unwind, which is the
        // right answer for the client of a broken request.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(shared, stream);
        }));
        shared.open_conns.fetch_sub(1, Ordering::Relaxed);
        drop(outcome);
    }
}

// ---------------------------------------------------------------------
// Request workers.
// ---------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.closed {
                    break None;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        // Panic isolation: a sweep that panics must not kill the
        // worker (its queued successors would wait on recv() forever)
        // or leave in_flight stuck — answer 500 and move on.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(shared, &job)));
        let response =
            outcome.unwrap_or_else(|_| Response::json(500, error_body("request worker panicked")));
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        shared
            .stats
            .latencies_us
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(elapsed_us);
        shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        techlib::obs::add(techlib::obs::SERVE_COMPLETED, 1);
        // A send failure means the client hung up; the work is done
        // either way and the next job proceeds normally.
        let _ = job.reply.send(response);
    }
}

/// Runs one admitted sweep job to a response. The deadline scope is
/// entered before anything else (including the artificial hold), so a
/// request that overstays while queued-plus-held starts failing at the
/// first stage boundary its scenarios reach.
fn execute(shared: &Shared, job: &Job) -> Response {
    // Test-only trigger for the worker panic-isolation test; release
    // builds carry no panic path here.
    #[cfg(test)]
    if job.body == "panic-for-tests" {
        panic!("test-injected worker panic");
    }
    let _span = techlib::obs::span("serve.request");
    let _deadline = job.deadline.map(techlib::cancel::deadline_at);
    if let Some(hold) = job.hold {
        std::thread::sleep(hold);
    }
    let scenarios = match scenarios_from_json(&job.body) {
        Ok(scenarios) => scenarios,
        Err(e) => return Response::json(400, error_body(&e.to_string())),
    };
    // Per-batch thread config: the daemon honours the *current*
    // environment (resolve_thread_count re-reads it), unlike one-shot
    // flows which memoise it per process.
    let width = match techlib::par::resolve_thread_count() {
        Ok(width) => width,
        Err(e) => return Response::json(500, error_body(&e.to_string())),
    };
    let mut contexts = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        match shared.pool.checkout(scenario) {
            Ok((ctx, hit)) => {
                if hit {
                    shared.stats.context_hits.fetch_add(1, Ordering::Relaxed);
                    techlib::obs::add(techlib::obs::SERVE_CONTEXT_HITS, 1);
                } else {
                    shared.stats.context_misses.fetch_add(1, Ordering::Relaxed);
                    techlib::obs::add(techlib::obs::SERVE_CONTEXT_MISSES, 1);
                }
                contexts.push(ctx);
            }
            Err(e) => return Response::json(500, error_body(&e.to_string())),
        }
    }
    // Lease a share of the machine for this request's fan-out. Width
    // never changes response bytes, so whatever the pool grants is safe.
    let lease = shared.lease.lease(width);
    let indices: Vec<usize> = (0..scenarios.len()).collect();
    let outcomes = techlib::par::ordered_map_with(lease.workers(), &indices, |&i| {
        batch::run_in_context(&contexts[i], &scenarios[i])
    });
    drop(lease);
    let deadline_hit = outcomes
        .iter()
        .any(|outcome| matches!(outcome, Err(FlowError::Deadline { .. })));
    if deadline_hit {
        shared.stats.deadline_hits.fetch_add(1, Ordering::Relaxed);
        techlib::obs::add(techlib::obs::SERVE_DEADLINE_HITS, 1);
    }
    match batch::sweep_json(&scenarios, &outcomes) {
        // `sweep --json` prints the array plus a newline; the response
        // body reproduces the CLI's stdout byte for byte.
        Ok(array) => Response::json(if deadline_hit { 504 } else { 200 }, array + "\n"),
        Err(e) => Response::json(500, error_body(&e.to_string())),
    }
}

// ---------------------------------------------------------------------
// HTTP handling.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    body: String,
}

fn header<'a>(request: &'a Request, name: &str) -> Option<&'a str> {
    request
        .headers
        .iter()
        .find(|(key, _)| key.eq_ignore_ascii_case(name))
        .map(|(_, value)| value.as_str())
}

fn header_ms(request: &Request, name: &str) -> Result<Option<u64>, String> {
    let Some(raw) = header(request, name) else {
        return Ok(None);
    };
    raw.trim()
        .parse::<u64>()
        .map(Some)
        .map_err(|_| format!("{name}: expected a millisecond count, got {raw:?}"))
}

/// Largest accepted header section, bytes. Larger requests answer
/// `431`.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// Why a request could not be read. Each variant maps to one response
/// (or, for [`ReadError::Disconnected`], to none at all).
#[derive(Debug)]
enum ReadError {
    /// A whole-phase read budget ran out: the client dripped bytes too
    /// slowly (slowloris) or simply stopped sending.
    Slow { phase: &'static str },
    /// The peer vanished before a full request arrived; there is
    /// nobody left to answer.
    Disconnected,
    /// The header section exceeded [`MAX_HEADER_BYTES`] (`431`).
    HeaderTooLarge,
    /// The declared body exceeds [`ServeConfig::max_body_bytes`]
    /// (`413`, before any body byte is read).
    BodyTooLarge { declared: usize, max: usize },
    /// Anything else unparseable (`400`).
    Malformed(String),
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let response = match read_request(&mut stream, &shared.config) {
        Ok(request) => dispatch(shared, &request),
        Err(ReadError::Disconnected) => return,
        Err(ReadError::Slow { phase }) => {
            shared
                .stats
                .slow_client_aborts
                .fetch_add(1, Ordering::Relaxed);
            techlib::obs::add(techlib::obs::SERVE_SLOW_CLIENT_ABORTS, 1);
            Response::json(408, error_body(&format!("{phase} read budget exhausted")))
        }
        Err(ReadError::HeaderTooLarge) => Response::json(
            431,
            error_body(&format!("header section exceeds {MAX_HEADER_BYTES} bytes")),
        ),
        Err(ReadError::BodyTooLarge { declared, max }) => Response::json(
            413,
            error_body(&format!(
                "request body of {declared} bytes exceeds the {max}-byte limit"
            )),
        ),
        Err(ReadError::Malformed(reason)) => {
            Response::json(400, error_body(&format!("malformed request: {reason}")))
        }
    };
    let budget = Duration::from_millis(shared.config.write_ms.max(1));
    if write_response_within(&mut stream, &response, budget) == WriteOutcome::TimedOut {
        shared.stats.write_timeouts.fetch_add(1, Ordering::Relaxed);
        techlib::obs::add(techlib::obs::SERVE_WRITE_TIMEOUTS, 1);
    }
}

/// One bounded read. The deadline is the *phase* deadline — it never
/// moves, no matter how many bytes trickle in — so the total time a
/// client can hold the socket in this phase is the configured budget.
fn read_within(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    deadline: Instant,
    phase: &'static str,
) -> Result<usize, ReadError> {
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ReadError::Slow { phase });
        }
        // `set_read_timeout(Some(ZERO))` is rejected by std; clamping
        // up a hair keeps the final slice of the budget enforceable.
        let _ = stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))));
        match stream.read(chunk) {
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return Err(ReadError::Disconnected),
        }
    }
}

fn read_request(stream: &mut TcpStream, config: &ServeConfig) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_deadline = Instant::now() + Duration::from_millis(config.header_read_ms.max(1));
    let mut scanned = 0usize;
    let header_end = loop {
        if let Some(pos) = find_header_end_from(&buf, scanned) {
            break pos;
        }
        // Resume the next scan where a terminator could first straddle
        // the old/new boundary — three bytes before the current end —
        // instead of rescanning the whole buffer per read.
        scanned = buf.len().saturating_sub(3);
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ReadError::HeaderTooLarge);
        }
        let n = read_within(stream, &mut chunk, header_deadline, "header")?;
        if n == 0 {
            return Err(ReadError::Disconnected);
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ReadError::Malformed("header section is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing method".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing path".to_string()))?
        .to_string();
    let headers: Vec<(String, String)> = lines
        .filter(|line| !line.is_empty())
        .filter_map(|line| {
            let (key, value) = line.split_once(':')?;
            Some((key.trim().to_string(), value.trim().to_string()))
        })
        .collect();
    let content_length = content_length(&headers)?;
    if content_length > config.max_body_bytes {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            max: config.max_body_bytes,
        });
    }
    let body_deadline = Instant::now() + Duration::from_millis(config.body_read_ms.max(1));
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = read_within(stream, &mut chunk, body_deadline, "body")?;
        if n == 0 {
            return Err(ReadError::Disconnected);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| ReadError::Malformed("request body is not UTF-8".to_string()))?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Finds `\r\n\r\n`, scanning only from `from` — the caller advances
/// `from` as the buffer grows, so repeated reads cost O(new bytes), not
/// O(buffer) each.
fn find_header_end_from(buf: &[u8], from: usize) -> Option<usize> {
    let from = from.min(buf.len());
    buf[from..]
        .windows(4)
        .position(|window| window == b"\r\n\r\n")
        .map(|pos| from + pos)
}

/// The request's declared body length. Exactly one `Content-Length`
/// header is accepted: duplicates — even agreeing ones — are
/// request-smuggling territory and rejected outright.
fn content_length(headers: &[(String, String)]) -> Result<usize, ReadError> {
    let mut values = headers
        .iter()
        .filter(|(key, _)| key.eq_ignore_ascii_case("content-length"))
        .map(|(_, value)| value.as_str());
    let Some(first) = values.next() else {
        return Ok(0);
    };
    if let Some(second) = values.next() {
        return Err(ReadError::Malformed(format!(
            "duplicate Content-Length headers ({first:?}, then {second:?})"
        )));
    }
    first
        .parse::<usize>()
        .map_err(|_| ReadError::Malformed(format!("invalid Content-Length {first:?}")))
}

fn dispatch(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        // Test-only trigger for the connection panic-isolation test;
        // release builds have no such route.
        #[cfg(test)]
        ("POST", "/panic-for-tests") => panic!("test-injected connection panic"),
        ("POST", "/sweep") => admit_sweep(shared, request),
        ("GET", "/stats") => Response::json(200, stats_body(shared)),
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}\n".to_string()),
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::Relaxed);
            Response::json(200, "{\"status\":\"draining\"}\n".to_string())
        }
        // Known paths answer a wrong method with 405 + Allow, not 404.
        (_, "/sweep" | "/shutdown") => method_not_allowed(request, "POST"),
        (_, "/stats" | "/healthz") => method_not_allowed(request, "GET"),
        _ => Response::json(
            404,
            error_body(&format!("no route for {} {}", request.method, request.path)),
        ),
    }
}

fn method_not_allowed(request: &Request, allow: &'static str) -> Response {
    Response {
        status: 405,
        body: error_body(&format!(
            "{} not allowed for {}; use {allow}",
            request.method, request.path
        )),
        retry_after_s: None,
        allow: Some(allow),
    }
}

/// Admission: counts the request, applies backpressure, enqueues, and
/// blocks this connection thread until a request worker replies.
fn admit_sweep(shared: &Shared, request: &Request) -> Response {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    techlib::obs::add(techlib::obs::SERVE_REQUESTS, 1);
    let deadline_ms = match header_ms(request, DEADLINE_HEADER) {
        Ok(ms) => ms.or(shared.config.default_deadline_ms),
        Err(e) => return Response::json(400, error_body(&e)),
    };
    let hold_ms = match header_ms(request, HOLD_HEADER) {
        Ok(ms) => ms,
        Err(e) => return Response::json(400, error_body(&e)),
    };
    let (reply, receiver) = mpsc::channel();
    // The deadline clock starts at admission: time spent waiting in the
    // queue counts against the request, which is what lets an
    // overloaded server shed expired work instead of executing it.
    let job = Job {
        body: request.body.clone(),
        deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        hold: hold_ms.map(Duration::from_millis),
        reply,
    };
    {
        let mut queue = shared.lock_queue();
        if queue.closed || shared.shutdown.load(Ordering::Relaxed) {
            return Response::json(503, error_body("server is draining"));
        }
        if queue.jobs.len() >= shared.config.queue_depth {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            techlib::obs::add(techlib::obs::SERVE_ADMISSION_REJECTS, 1);
            return Response {
                status: 429,
                body: error_body("queue full"),
                retry_after_s: Some(1),
                allow: None,
            };
        }
        queue.jobs.push_back(job);
    }
    shared.ready.notify_one();
    match receiver.recv() {
        Ok(response) => response,
        Err(_) => Response::json(500, error_body("request worker dropped the job")),
    }
}

fn percentile_us(sorted: &[u64], percent: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((percent / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn stats_body(shared: &Shared) -> String {
    let queue_depth = shared.lock_queue().jobs.len();
    let mut latencies = shared
        .stats
        .latencies_us
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    latencies.sort_unstable();
    let stats = &shared.stats;
    let hits = stats.context_hits.load(Ordering::Relaxed);
    let misses = stats.context_misses.load(Ordering::Relaxed);
    let hit_ratio = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let store = shared
        .pool
        .store()
        .map(ArtifactStore::stats)
        .unwrap_or_default();
    format!(
        concat!(
            "{{\"queue_depth\":{},\"in_flight\":{},\"workers\":{},",
            "\"open_connections\":{},\"max_connections\":{},",
            "\"lease_total\":{},\"requests\":{},\"rejected\":{},",
            "\"conn_rejected\":{},\"slow_client_aborts\":{},",
            "\"write_timeouts\":{},",
            "\"deadline_hits\":{},\"completed\":{},\"context_hits\":{},",
            "\"context_misses\":{},\"context_hit_ratio\":{:.4},",
            "\"contexts_pooled\":{},\"store_mem_hits\":{},",
            "\"store_disk_hits\":{},\"store_misses\":{},",
            "\"store_writes\":{},\"store_invalid\":{},",
            "\"latency_p50_us\":{},",
            "\"latency_p99_us\":{},\"uptime_us\":{}}}\n"
        ),
        queue_depth,
        stats.in_flight.load(Ordering::Relaxed),
        shared.config.workers.max(1),
        shared.open_conns.load(Ordering::Relaxed),
        shared.config.max_connections.max(1),
        shared.lease.total(),
        stats.requests.load(Ordering::Relaxed),
        stats.rejected.load(Ordering::Relaxed),
        stats.conn_rejected.load(Ordering::Relaxed),
        stats.slow_client_aborts.load(Ordering::Relaxed),
        stats.write_timeouts.load(Ordering::Relaxed),
        stats.deadline_hits.load(Ordering::Relaxed),
        stats.completed.load(Ordering::Relaxed),
        hits,
        misses,
        hit_ratio,
        shared.pool.len(),
        store.mem_hits,
        store.disk_hits,
        store.misses,
        store.writes,
        store.invalid,
        percentile_us(&latencies, 50.0),
        percentile_us(&latencies, 99.0),
        u64::try_from(shared.started.elapsed().as_micros()).unwrap_or(u64::MAX),
    )
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// How a bounded response write ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteOutcome {
    /// The whole response reached the peer's socket.
    Sent,
    /// The peer stopped draining its side and the whole-response
    /// budget ran out; the socket was shut down mid-response.
    TimedOut,
    /// The peer vanished mid-response; nothing left to bound.
    Disconnected,
}

/// Writes `response` with a whole-response budget. The deadline is
/// fixed up front: a reader that accepts a trickle of bytes per
/// timeout cannot stretch the send, and a reader that never reads is
/// abandoned when the budget expires — which is what keeps graceful
/// drain time-bounded.
fn write_response_within(
    stream: &mut TcpStream,
    response: &Response,
    budget: Duration,
) -> WriteOutcome {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        status_reason(response.status),
        response.body.len()
    );
    {
        use std::fmt::Write as _;
        if let Some(seconds) = response.retry_after_s {
            let _ = write!(head, "Retry-After: {seconds}\r\n");
        }
        if let Some(methods) = response.allow {
            let _ = write!(head, "Allow: {methods}\r\n");
        }
    }
    head.push_str("\r\n");
    let deadline = Instant::now() + budget;
    match write_all_within(stream, head.as_bytes(), deadline) {
        WriteOutcome::Sent => {}
        other => return other,
    }
    match write_all_within(stream, response.body.as_bytes(), deadline) {
        WriteOutcome::Sent => {}
        other => return other,
    }
    let _ = stream.flush();
    WriteOutcome::Sent
}

fn write_all_within(stream: &mut TcpStream, mut bytes: &[u8], deadline: Instant) -> WriteOutcome {
    while !bytes.is_empty() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            // Abort-on-stall: drop the socket rather than wait out a
            // reader that never drains its side.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return WriteOutcome::TimedOut;
        }
        let _ = stream.set_write_timeout(Some(remaining.max(Duration::from_millis(1))));
        match stream.write(bytes) {
            Ok(0) => return WriteOutcome::Disconnected,
            Ok(n) => bytes = &bytes[n..],
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return WriteOutcome::Disconnected,
        }
    }
    WriteOutcome::Sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOverrides;
    use crate::table5::MonitorLengths;

    #[test]
    fn context_pool_reuses_clean_specs_and_isolates_faulty_ones() {
        let pool = ContextPool::new();
        assert!(pool.is_empty());
        let a = Scenario::paper(InterposerKind::Glass3D);
        let (ctx1, hit1) = pool.checkout(&a).unwrap();
        let (ctx2, hit2) = pool.checkout(&a).unwrap();
        assert!(!hit1 && hit2, "second checkout is a pool hit");
        assert!(Arc::ptr_eq(&ctx1, &ctx2));
        assert_eq!(pool.len(), 1);

        // A different resolved spec pools separately…
        let wide = Scenario::new(
            "wide",
            InterposerKind::Glass3D,
            MonitorLengths::Routed,
            ScenarioOverrides {
                microbump_pitch_um: Some(70.0),
                ..Default::default()
            },
            Vec::new(),
        )
        .unwrap();
        let (ctx3, hit3) = pool.checkout(&wide).unwrap();
        assert!(!hit3);
        assert!(!Arc::ptr_eq(&ctx1, &ctx3));
        assert_eq!(pool.len(), 2);

        // …and a faulty scenario is never pooled.
        let faulty = Scenario::new(
            "faulty",
            InterposerKind::Glass3D,
            MonitorLengths::Routed,
            ScenarioOverrides::default(),
            vec!["thermal.solve".to_string()],
        )
        .unwrap();
        let (fa, hit_a) = pool.checkout(&faulty).unwrap();
        let (fb, hit_b) = pool.checkout(&faulty).unwrap();
        assert!(!hit_a && !hit_b);
        assert!(!Arc::ptr_eq(&fa, &fb));
        assert_eq!(pool.len(), 2, "faulty contexts never enter the pool");
    }

    #[test]
    fn http_requests_parse_over_a_real_socket() {
        // Round-trip a request through a real loopback socket pair.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(
                    b"POST /sweep HTTP/1.1\r\nHost: x\r\nX-Codesign-Deadline-Ms: 250\r\n\
                      Content-Length: 2\r\n\r\n[]",
                )
                .unwrap();
            stream.flush().unwrap();
            // Keep the socket open until the server side has parsed.
            std::thread::sleep(Duration::from_millis(50));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let config = ServeConfig {
            max_body_bytes: 1024,
            ..ServeConfig::default()
        };
        let request = read_request(&mut stream, &config).unwrap();
        client.join().unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/sweep");
        assert_eq!(request.body, "[]");
        assert_eq!(header(&request, "x-codesign-deadline-ms"), Some("250"));
        assert_eq!(header_ms(&request, DEADLINE_HEADER), Ok(Some(250)));
        assert_eq!(header_ms(&request, HOLD_HEADER), Ok(None));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile_us(&[], 50.0), 0);
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 50.0), 50);
        assert_eq!(percentile_us(&sorted, 99.0), 99);
        assert_eq!(percentile_us(&sorted, 100.0), 100);
        assert_eq!(percentile_us(&[7], 99.0), 7);
    }

    #[test]
    fn error_bodies_escape_json() {
        assert_eq!(
            error_body("bad \"x\"\n"),
            "{\"error\":\"bad \\\"x\\\"\\n\"}\n"
        );
    }

    #[test]
    fn header_scan_resumes_across_any_chunk_boundary() {
        let full = b"POST /sweep HTTP/1.1\r\nHost: x\r\n\r\ntrailing body";
        let end = find_header_end_from(full, 0).expect("terminator present");
        assert_eq!(&full[end..end + 4], b"\r\n\r\n");
        // Replay read_request's incremental protocol for every split
        // point: scan the first chunk from 0, then resume three bytes
        // before its end once the rest arrives. The resumed scan must
        // find the terminator wherever the split lands — including
        // splits inside the \r\n\r\n itself.
        for split in 0..=full.len() {
            let found = match find_header_end_from(&full[..split], 0) {
                Some(pos) => Some(pos),
                None => find_header_end_from(full, split.saturating_sub(3)),
            };
            assert_eq!(found, Some(end), "split at {split}");
        }
        // A cursor past the data is clamped, not a panic.
        assert_eq!(find_header_end_from(b"\r\n", 17), None);
        // Resuming past the terminator no longer sees it (that is what
        // makes the scan O(new bytes)).
        assert_eq!(find_header_end_from(full, end + 1), None);
    }

    #[test]
    fn content_length_accepts_exactly_one_header() {
        let headers = |pairs: &[(&str, &str)]| -> Vec<(String, String)> {
            pairs
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect()
        };
        assert_eq!(content_length(&headers(&[])).unwrap(), 0);
        assert_eq!(
            content_length(&headers(&[("Content-Length", "12"), ("Host", "x")])).unwrap(),
            12
        );
        assert_eq!(
            content_length(&headers(&[("content-LENGTH", "3")])).unwrap(),
            3
        );
        // Duplicates are rejected even when they agree…
        let dup = content_length(&headers(&[
            ("Content-Length", "2"),
            ("Content-Length", "2"),
        ]));
        assert!(
            matches!(&dup, Err(ReadError::Malformed(m)) if m.contains("Content-Length")),
            "{dup:?}"
        );
        // …as are conflicting values and garbage.
        assert!(matches!(
            content_length(&headers(&[
                ("Content-Length", "2"),
                ("content-length", "3"),
            ])),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            content_length(&headers(&[("Content-Length", "two")])),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            content_length(&headers(&[("Content-Length", "-1")])),
            Err(ReadError::Malformed(_))
        ));
    }

    /// Sends `payload` verbatim and reads whatever comes back. Read
    /// errors and empty reads are legitimate outcomes here (the panic
    /// tests drop the socket mid-connection), so they map to whatever
    /// bytes arrived rather than a test failure.
    fn raw_roundtrip(addr: SocketAddr, payload: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        stream.write_all(payload).expect("send request");
        let mut raw = Vec::new();
        let _ = stream.read_to_end(&mut raw);
        String::from_utf8_lossy(&raw).into_owned()
    }

    #[test]
    fn rejected_socket_drain_ends_at_its_deadline_despite_dripping() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Drip a byte every couple of ms: every server-side read
        // succeeds, so only the whole-drain deadline can end the loop.
        let dripper = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for _ in 0..2_000 {
                if stream.write_all(b"a").is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = Instant::now();
        reject_connection(&mut stream);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "the drain must end at its deadline even when every read succeeds, took {:?}",
            started.elapsed()
        );
        drop(stream);
        dripper.join().unwrap();
    }

    #[test]
    fn rejected_socket_drain_is_byte_capped_against_blasting_clients() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let blaster = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let chunk = vec![0u8; 1 << 20];
            for _ in 0..64 {
                if stream.write_all(&chunk).is_err() {
                    break;
                }
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = Instant::now();
        reject_connection(&mut stream);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "the drain must stop at its byte cap, took {:?}",
            started.elapsed()
        );
        drop(stream);
        blaster.join().unwrap();
    }

    #[test]
    fn panicking_connection_handlers_do_not_shrink_the_pool() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                max_connections: 1,
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        // Each of these panics inside dispatch, on the single pool
        // thread. Without catch_unwind one panic would kill the whole
        // pool; without the post-panic decrement it would leak the
        // open_conns slot — either way the recovery below would fail.
        for _ in 0..3 {
            let _ = raw_roundtrip(
                addr,
                b"POST /panic-for-tests HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
            );
        }
        // The decrement races the next connect, so poll: with a pool
        // of one, healthz only ever answers again if the thread
        // survived and the slot came back.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let raw = raw_roundtrip(addr, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
            if raw.starts_with("HTTP/1.1 200") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "pool never recovered after handler panics: {raw:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        let raw = raw_roundtrip(
            addr,
            b"POST /shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        handle.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn panicking_jobs_answer_500_and_the_worker_survives() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());
        let body = "panic-for-tests";
        let raw = raw_roundtrip(
            addr,
            format!(
                "POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        );
        assert!(raw.starts_with("HTTP/1.1 500"), "{raw}");
        assert!(raw.contains("request worker panicked"), "{raw}");
        // The single worker must still be alive to run a real job.
        let raw = raw_roundtrip(
            addr,
            b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n[]",
        );
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        let raw = raw_roundtrip(
            addr,
            b"POST /shutdown HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
        );
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
        handle.join().expect("server thread").expect("clean exit");
    }

    #[test]
    fn stalled_readers_abort_within_the_write_budget() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The client connects and never reads: once the kernel buffers
        // fill, the server's writes stall. 32 MiB comfortably exceeds
        // any default loopback send+receive buffering.
        let client = TcpStream::connect(addr).unwrap();
        let (mut stream, _) = listener.accept().unwrap();
        let response = Response::json(200, "x".repeat(32 << 20));
        let started = Instant::now();
        let outcome = write_response_within(&mut stream, &response, Duration::from_millis(250));
        assert_eq!(outcome, WriteOutcome::TimedOut);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "abort-on-stall must not wait for the reader"
        );
        assert!(
            started.elapsed() >= Duration::from_millis(250),
            "the whole budget is available before aborting"
        );
        drop(client);
    }

    #[test]
    fn responses_carry_allow_and_retry_after_headers() {
        // Round-trip a 405 through a socket pair and check the header
        // block the client sees.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut raw = Vec::new();
            stream.read_to_end(&mut raw).unwrap();
            String::from_utf8(raw).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        let request = Request {
            method: "GET".to_string(),
            path: "/sweep".to_string(),
            headers: Vec::new(),
            body: String::new(),
        };
        let response = method_not_allowed(&request, "POST");
        assert_eq!(response.status, 405);
        let outcome = write_response_within(&mut stream, &response, Duration::from_secs(5));
        assert_eq!(outcome, WriteOutcome::Sent);
        drop(stream);
        let raw = reader.join().unwrap();
        assert!(
            raw.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"),
            "{raw}"
        );
        assert!(raw.contains("\r\nAllow: POST\r\n"), "{raw}");
        assert!(raw.contains("use POST"), "{raw}");
    }
}
