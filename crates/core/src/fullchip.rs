//! Full-chip timing and power roll-up (Section VII-H, Table IV "Power").
//!
//! The paper's total: `P = P_chiplet + P_intra-tile + P_inter-tile`, where
//! each interconnect class is charged at its *worst monitored net's* link
//! power (back-solved from Table IV: e.g. Glass 2.5D = 376.8 mW chiplets
//! plus 462 × 227.07 µW plus 68 × 38.6 µW = 484.7 mW, matching the
//! reported 484.84 mW). System frequency is set by the slowest chiplet in
//! the pipelined mode, or by chiplet + off-chip delay in the
//! non-pipelined mode.

use crate::context::{default_context, StudyContext};
use crate::table5::{row_in, MonitorLengths, Table5Row};
use crate::FlowError;
use chiplet::report::ChipletReport;
use netlist::openpiton::INTRA_TILE_CUT;
use netlist::serdes::SerdesPlan;
use serde::Serialize;
use techlib::spec::InterposerKind;

/// Calibrated monolithic-baseline switching scale: a single-die
/// implementation needs no SerDes/AIB crossings and shortens the former
/// cut nets.
///
/// Provenance: back-solved from Table IV's 2D-monolithic 330.92 mW against
/// the 376.8 mW chiplet sum.
pub const MONO_SWITCHING_FACTOR: f64 = 0.745;

/// Timing mode of the architecture (Section VII-H).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TimingMode {
    /// Off-chip links are pipelined (one extra cycle): the clock is set by
    /// the slowest chiplet.
    Pipelined,
    /// Off-chip delay folds into the cycle.
    NonPipelined,
}

/// The full-chip roll-up for one technology.
#[derive(Debug, Clone, Serialize)]
pub struct FullChipReport {
    /// Technology.
    pub tech: InterposerKind,
    /// Sum of the four chiplets' power, mW.
    pub chiplet_power_mw: f64,
    /// Intra-tile interconnect power (462 links), mW.
    pub intra_tile_power_mw: f64,
    /// Inter-tile interconnect power (68 links), mW.
    pub inter_tile_power_mw: f64,
    /// Total system power, mW.
    pub total_power_mw: f64,
    /// System frequency, MHz (pipelined mode).
    pub system_fmax_mhz: f64,
    /// System frequency with off-chip delay in the cycle, MHz.
    pub nonpipelined_fmax_mhz: f64,
}

/// Rolls up the full chip from per-chiplet reports and the Table V links.
pub fn rollup(
    tech: InterposerKind,
    logic: &ChipletReport,
    memory: &ChipletReport,
    links: &Table5Row,
) -> FullChipReport {
    let serdes = SerdesPlan::paper();
    let chiplet_mw = 2.0 * (logic.total_power_mw() + memory.total_power_mw());
    let intra_mw = 2.0 * INTRA_TILE_CUT as f64 * links.l2m.total_power_uw() / 1e3;
    let inter_mw = serdes.wires_after as f64 * links.l2l.total_power_uw() / 1e3;

    let chiplet_fmax = logic.fmax_mhz.min(memory.fmax_mhz);
    let worst_link_ps = links.l2m.total_delay_ps().max(links.l2l.total_delay_ps());
    let nonpipelined = 1e6 / (1e6 / chiplet_fmax + worst_link_ps / 1e6);

    FullChipReport {
        tech,
        chiplet_power_mw: chiplet_mw,
        intra_tile_power_mw: intra_mw,
        inter_tile_power_mw: inter_mw,
        total_power_mw: chiplet_mw + intra_mw + inter_mw,
        system_fmax_mhz: chiplet_fmax,
        nonpipelined_fmax_mhz: nonpipelined,
    }
}

/// The 2D-monolithic baseline power, mW (Table IV column 1).
pub fn monolithic_power_mw(logic: &ChipletReport, memory: &ChipletReport) -> f64 {
    let internal_leak = 2.0
        * ((logic.power.internal_w + logic.power.leakage_w)
            + (memory.power.internal_w + memory.power.leakage_w))
        * 1e3;
    let switching =
        2.0 * (logic.power.switching_w + memory.power.switching_w) * 1e3 * MONO_SWITCHING_FACTOR;
    internal_leak + switching
}

/// Builds the roll-up for `tech` using our routed worst nets (default
/// context).
///
/// # Errors
///
/// Propagates netlist, routing and simulation failures.
pub fn fullchip(tech: InterposerKind, mode: MonitorLengths) -> Result<FullChipReport, FlowError> {
    fullchip_in(&default_context(), tech, mode)
}

/// [`fullchip`] against an explicit study context.
///
/// # Errors
///
/// Propagates netlist, routing and simulation failures.
pub fn fullchip_in(
    ctx: &StudyContext,
    tech: InterposerKind,
    mode: MonitorLengths,
) -> Result<FullChipReport, FlowError> {
    let reports = ctx.chiplet_reports(tech)?;
    let (logic, memory) = &*reports;
    let links = row_in(ctx, tech, mode)?;
    Ok(rollup(tech, logic, memory, &links))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(tech: InterposerKind) -> FullChipReport {
        fullchip(tech, MonitorLengths::Paper).unwrap()
    }

    #[test]
    fn chiplet_power_matches_table3_sum() {
        let r = report(InterposerKind::Glass25D);
        // 2 × (142.35 + 46.06) = 376.8 mW.
        assert!(
            (r.chiplet_power_mw - 376.8).abs() / 376.8 < 0.06,
            "{}",
            r.chiplet_power_mw
        );
    }

    #[test]
    fn glass_3d_beats_glass_25d_on_system_power() {
        // The abstract's 17.72 % reduction claim (direction + meaningful
        // magnitude; exact % depends on the monitored-net pathology).
        let g3 = report(InterposerKind::Glass3D);
        let g25 = report(InterposerKind::Glass25D);
        assert!(g3.total_power_mw < g25.total_power_mw);
        let reduction = 1.0 - g3.total_power_mw / g25.total_power_mw;
        assert!(reduction > 0.08, "reduction = {reduction} (paper: 0.177)");
    }

    #[test]
    fn silicon_3d_has_lowest_system_power() {
        let s3 = report(InterposerKind::Silicon3D);
        for tech in [
            InterposerKind::Glass25D,
            InterposerKind::Glass3D,
            InterposerKind::Silicon25D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            assert!(s3.total_power_mw < report(tech).total_power_mw, "{tech}");
        }
    }

    #[test]
    fn system_power_ordering_matches_table4() {
        // Paper: Si3D < Glass3D < Si2.5D < Shinko < Glass2.5D ~ APX.
        // (The paper puts APX above Glass 2.5D by 4 %; our capacitance
        // model lands them the other way round at similar separation —
        // both are asserted to be the two most power-hungry designs.)
        let p = |t| report(t).total_power_mw;
        assert!(p(InterposerKind::Silicon3D) < p(InterposerKind::Glass3D));
        assert!(p(InterposerKind::Glass3D) < p(InterposerKind::Silicon25D));
        assert!(p(InterposerKind::Silicon25D) < p(InterposerKind::Shinko));
        let top_two = p(InterposerKind::Glass25D).min(p(InterposerKind::Apx));
        assert!(p(InterposerKind::Shinko) < top_two);
    }

    #[test]
    fn monolithic_baseline_is_cheapest() {
        let design = netlist::openpiton::two_tile_openpiton();
        let split = netlist::partition::hierarchical_l3_split(&design).unwrap();
        let (l, m) = netlist::chiplet_netlist::chipletize(&design, &split, &SerdesPlan::paper());
        let (logic, memory) =
            chiplet::report::analyze_pair(&l, &m, InterposerKind::Glass25D).unwrap();
        let mono = monolithic_power_mw(&logic, &memory);
        // Paper: 330.92 mW.
        assert!((mono - 330.9).abs() / 330.9 < 0.08, "{mono}");
        assert!(mono < report(InterposerKind::Silicon3D).total_power_mw);
    }

    #[test]
    fn pipelined_frequency_is_the_slowest_chiplet() {
        let r = report(InterposerKind::Glass3D);
        assert!(
            (660.0..710.0).contains(&r.system_fmax_mhz),
            "{}",
            r.system_fmax_mhz
        );
        assert!(r.nonpipelined_fmax_mhz < r.system_fmax_mhz);
    }
}
