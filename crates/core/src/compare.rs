//! Headline cross-technology comparison (the abstract's claims).
//!
//! The paper's summary metrics, computed from the same roll-ups that
//! generate Tables II–VI:
//!
//! * **2.6× area** — Glass 3D interposer area versus Glass/Silicon 2.5D;
//! * **21× wirelength** — Glass 3D lateral wire versus the best 2.5D;
//! * **17.72 % power** — Glass 3D versus Glass 2.5D system power;
//! * **64.7 % signal integrity** — Glass 3D L2M eye width versus the
//!   narrowest 2.5D eye (Silicon 2.5D);
//! * **10× power integrity** — peak PDN impedance versus Silicon 2.5D;
//! * **+35 % thermal** — the embedded memory die's price.

use crate::FlowError;
use interposer::report::cached_layout;
use pi::impedance::ImpedanceProfile;
use serde::Serialize;
use si::eye::{lateral_eye, stacked_via_eye, EyeConfig};
use techlib::spec::InterposerKind;
use thermal::report::analyze_tech;

/// The headline metrics of the study.
#[derive(Debug, Clone, Serialize)]
pub struct Headline {
    /// Interposer area reduction, Glass 2.5D / Glass 3D.
    pub area_reduction_x: f64,
    /// Lateral wirelength reduction, best-2.5D / Glass 3D.
    pub wirelength_reduction_x: f64,
    /// System power reduction, Glass 3D vs Glass 2.5D, fraction.
    pub power_reduction_frac: f64,
    /// L2M eye-width gain, Glass 3D vs Silicon 2.5D, fraction.
    pub si_improvement_frac: f64,
    /// Peak-impedance improvement, Silicon 2.5D / Glass 3D.
    pub pi_improvement_x: f64,
    /// Memory-chiplet temperature increase, Glass 3D vs Silicon 2.5D,
    /// fraction (°C basis, as the paper quotes).
    pub thermal_increase_frac: f64,
}

/// Computes the headline metrics from the full study.
///
/// # Errors
///
/// Propagates routing and simulation failures.
pub fn headline() -> Result<Headline, FlowError> {
    let g3 = cached_layout(InterposerKind::Glass3D)?;
    let g25 = cached_layout(InterposerKind::Glass25D)?;
    let si = cached_layout(InterposerKind::Silicon25D)?;

    let area_reduction_x = g25.stats.area_mm2 / g3.stats.area_mm2;
    let wirelength_reduction_x = si.stats.total_wl_mm / g3.stats.total_wl_mm;

    let p_g3 = crate::fullchip::fullchip(
        InterposerKind::Glass3D,
        crate::table5::MonitorLengths::Paper,
    )?;
    let p_g25 = crate::fullchip::fullchip(
        InterposerKind::Glass25D,
        crate::table5::MonitorLengths::Paper,
    )?;
    let power_reduction_frac = 1.0 - p_g3.total_power_mw / p_g25.total_power_mw;

    // The paper's eye decks drive a 50 Ω receiver (Section VII-A); the
    // resulting resistive divider against the line resistance is what
    // separates the eye heights, so the headline SI metric uses that deck
    // and compares the eye-opening area (width × height), which is what
    // the paper's 64.7 % figure tracks.
    let cfg = EyeConfig::paper_deck();
    let eye_g3 = stacked_via_eye(&cfg)?;
    let si_l2m = si.worst_net_um(interposer::diemap::NetClass::IntraTileLateral);
    let eye_si = lateral_eye(InterposerKind::Silicon25D, si_l2m, &cfg)?;
    let si_improvement_frac =
        (eye_g3.width_ns * eye_g3.height_v) / (eye_si.width_ns * eye_si.height_v) - 1.0;

    let z_g3 = ImpedanceProfile::sweep(InterposerKind::Glass3D, 41)?.peak_ohm();
    let z_si = ImpedanceProfile::sweep(InterposerKind::Silicon25D, 41)?.peak_ohm();
    let pi_improvement_x = z_si / z_g3;

    let t_g3 = analyze_tech(InterposerKind::Glass3D)?;
    let t_si = analyze_tech(InterposerKind::Silicon25D)?;
    let thermal_increase_frac = t_g3.mem_peak_c / t_si.mem_peak_c - 1.0;

    Ok(Headline {
        area_reduction_x,
        wirelength_reduction_x,
        power_reduction_frac,
        si_improvement_frac,
        pi_improvement_x,
        thermal_increase_frac,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_directions_match_the_abstract() {
        let h = headline().unwrap();
        // 2.6× area.
        assert!(
            (2.0..3.2).contains(&h.area_reduction_x),
            "{}",
            h.area_reduction_x
        );
        // 21× wirelength.
        assert!(
            h.wirelength_reduction_x > 10.0,
            "{}",
            h.wirelength_reduction_x
        );
        // Power reduction positive (paper: 17.72 %).
        assert!(h.power_reduction_frac > 0.03, "{}", h.power_reduction_frac);
        // SI improvement positive (paper: 64.7 %).
        assert!(h.si_improvement_frac > 0.0, "{}", h.si_improvement_frac);
        // PI ~10x class.
        assert!(h.pi_improvement_x > 3.0, "{}", h.pi_improvement_x);
        // Thermal penalty positive (paper: ~35 %).
        assert!(h.thermal_increase_frac > 0.1, "{}", h.thermal_increase_frac);
    }
}
