//! Packaging cost model (the paper's cost discussion, quantified).
//!
//! The paper argues glass interposers are the *cost-effective* route to
//! 3D stacking: glass processes on large panels (≈510×515 mm) rather than
//! 300 mm wafers, needs no TSV-middle process for 2.5D routing, and the
//! 5.5D configuration avoids the substrate thinning that makes TSV-based
//! Silicon 3D expensive. This module turns those qualitative claims into
//! a parametric model in *relative cost units* (RCU — normalised so one
//! Glass 2.5D interposer substrate-mm² ≈ 1). Constants are engineering
//! estimates in the public domain (panel vs wafer amortisation, process
//! adders), documented inline; the model's value is the *ordering* and
//! sensitivity, not absolute dollars.

use interposer::report::cached_layout;
use serde::Serialize;
use techlib::spec::{InterposerKind, InterposerSpec, Stacking};

/// Substrate + RDL patterning cost per mm², RCU/mm².
///
/// Glass panels amortise fab cost over ~50x the area of a 300 mm wafer;
/// silicon interposer mm² carry dual-damascene BEOL cost; organic
/// build-up is the cheapest patterned area but coarse.
pub fn substrate_cost_per_mm2(tech: InterposerKind) -> f64 {
    match tech {
        InterposerKind::Glass25D | InterposerKind::Glass3D => 1.0,
        InterposerKind::Silicon25D | InterposerKind::Silicon3D => 4.5,
        InterposerKind::Shinko => 0.8,
        InterposerKind::Apx => 0.5,
        InterposerKind::Monolithic2D => 0.0,
    }
}

/// Per-RDL-layer patterning multiplier (each extra metal = one litho +
/// plate + planarise pass).
pub const RDL_LAYER_COST_FACTOR: f64 = 0.35;

/// Process adders, RCU per interposer.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ProcessAdders {
    /// TSV/TGV formation for power delivery.
    pub through_vias: f64,
    /// Cavity etch + die embedding (glass 3D only).
    pub embedding: f64,
    /// Wafer/substrate thinning (Silicon 3D's 20 µm tiers).
    pub thinning: f64,
    /// Die attach / bonding steps (per die).
    pub bonding_per_die: f64,
}

/// Defect density for the area-yield model, defects/mm².
///
/// Yield = exp(-D·A) (Poisson). Fine-pitch silicon BEOL carries the
/// highest D; coarse organic the lowest.
pub fn defect_density(tech: InterposerKind) -> f64 {
    match tech {
        InterposerKind::Glass25D | InterposerKind::Glass3D => 0.010,
        InterposerKind::Silicon25D | InterposerKind::Silicon3D => 0.015,
        InterposerKind::Shinko => 0.008,
        InterposerKind::Apx => 0.005,
        InterposerKind::Monolithic2D => 0.012,
    }
}

/// The cost roll-up for one technology.
#[derive(Debug, Clone, Serialize)]
pub struct CostReport {
    /// Technology.
    pub tech: InterposerKind,
    /// Patterned substrate cost, RCU.
    pub substrate_rcu: f64,
    /// Process adders, RCU.
    pub adders: ProcessAdders,
    /// Area yield (0–1).
    pub yield_frac: f64,
    /// Total cost per good assembled interposer, RCU.
    pub total_rcu: f64,
}

/// Computes the cost report for `tech`.
///
/// # Errors
///
/// Propagates routing failures (the interposer area comes from the
/// routed layout).
pub fn cost(tech: InterposerKind) -> Result<CostReport, interposer::RouteError> {
    let spec = InterposerSpec::for_kind(tech);
    let area_mm2 = match tech {
        InterposerKind::Silicon3D => 0.94 * 0.94,
        InterposerKind::Monolithic2D => 1.6 * 1.6,
        _ => cached_layout(tech)?.stats.area_mm2,
    };
    let layers = spec.signal_metal_layers as f64 + 2.0;
    let substrate =
        substrate_cost_per_mm2(tech) * area_mm2 * (1.0 + RDL_LAYER_COST_FACTOR * layers);

    let adders = match spec.stacking {
        Stacking::Embedded => ProcessAdders {
            through_vias: 0.8,
            embedding: 1.5, // cavity etch + DAF placement per stack ×2
            thinning: 0.0,
            bonding_per_die: 0.4,
        },
        Stacking::TsvStack => ProcessAdders {
            through_vias: 2.5, // mini-TSV middle process per tier
            embedding: 0.0,
            thinning: 4.0, // 3 tiers thinned to 20 µm: the paper's "costly substrate thinning"
            bonding_per_die: 0.8,
        },
        Stacking::SideBySide => ProcessAdders {
            through_vias: if matches!(tech, InterposerKind::Silicon25D | InterposerKind::Silicon3D)
            {
                2.0 // TSV-middle on the silicon interposer
            } else {
                0.8 // TGV / PTH
            },
            embedding: 0.0,
            thinning: 0.0,
            bonding_per_die: 0.4,
        },
        Stacking::Monolithic => ProcessAdders {
            through_vias: 0.0,
            embedding: 0.0,
            thinning: 0.0,
            bonding_per_die: 0.0,
        },
    };
    let n_dies = 4.0;
    let yield_frac = (-defect_density(tech) * area_mm2).exp();
    let gross = substrate
        + adders.through_vias
        + adders.embedding
        + adders.thinning
        + adders.bonding_per_die * n_dies;
    Ok(CostReport {
        tech,
        substrate_rcu: substrate,
        adders,
        yield_frac,
        total_rcu: gross / yield_frac,
    })
}

/// Cost reports for all six packaged technologies.
///
/// # Errors
///
/// Propagates per-technology failures.
pub fn cost_all() -> Result<Vec<CostReport>, interposer::RouteError> {
    InterposerKind::PACKAGED.iter().map(|&t| cost(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rcu(tech: InterposerKind) -> f64 {
        cost(tech).unwrap().total_rcu
    }

    #[test]
    fn glass_3d_is_cheaper_than_both_silicon_options() {
        // The conclusion's claim: glass "remains a cost-effective solution
        // for 3D chiplet stacking".
        let g3 = rcu(InterposerKind::Glass3D);
        assert!(g3 < rcu(InterposerKind::Silicon25D), "{g3}");
        assert!(g3 < rcu(InterposerKind::Silicon3D), "{g3}");
    }

    #[test]
    fn silicon_3d_pays_for_thinning() {
        let s3 = cost(InterposerKind::Silicon3D).unwrap();
        let s25 = cost(InterposerKind::Silicon25D).unwrap();
        assert!(s3.adders.thinning > 0.0);
        assert_eq!(s25.adders.thinning, 0.0);
    }

    #[test]
    fn glass_3d_beats_glass_25d_via_area() {
        // Half the substrate area more than pays for the embedding step.
        assert!(rcu(InterposerKind::Glass3D) < rcu(InterposerKind::Glass25D));
    }

    #[test]
    fn yields_are_physical() {
        for r in cost_all().unwrap() {
            assert!(r.yield_frac > 0.8 && r.yield_frac <= 1.0, "{:?}", r.tech);
            assert!(r.total_rcu > 0.0);
        }
    }

    #[test]
    fn organic_substrate_is_cheapest_per_area() {
        assert!(
            substrate_cost_per_mm2(InterposerKind::Apx)
                < substrate_cost_per_mm2(InterposerKind::Glass25D)
        );
        assert!(
            substrate_cost_per_mm2(InterposerKind::Glass25D)
                < substrate_cost_per_mm2(InterposerKind::Silicon25D)
        );
    }
}
