//! Deterministic parallel execution for the flow.
//!
//! Thin, flow-facing wrapper over [`techlib::par`] (the primitive lives at
//! the bottom of the crate graph so `si`, `interposer` and `thermal` can
//! use it too). Everything here preserves **input order** in outputs and
//! error selection, which is what makes parallel runs byte-identical to
//! sequential ones:
//!
//! * [`ordered_map`] — fan a slice out across scoped threads, results in
//!   input order;
//! * [`try_ordered_map`] — same for fallible tasks; when several fail, the
//!   error reported is the *first failing input's* error, exactly as a
//!   sequential loop would report (later tasks' work is discarded);
//! * [`join`] — run two closures concurrently, results in argument order;
//! * [`ScratchPool`] — reusable per-worker scratch buffers that survive
//!   across fan-out calls (the router's A* search state, for example).
//!
//! Thread count is controlled by the `CODESIGN_THREADS` environment
//! variable (see [`THREADS_ENV`]); `CODESIGN_THREADS=1` degenerates every
//! helper to a plain in-order loop on the calling thread.

pub use techlib::par::{
    join, ordered_map, ordered_map_with, thread_count, ScratchPool, THREADS_ENV,
};

/// Applies a fallible `f` to every item in parallel. On success returns
/// the results in input order; on failure returns the error belonging to
/// the earliest failing input — matching what a sequential
/// `items.iter().map(f).collect::<Result<_, _>>()` reports, so error
/// behaviour is deterministic too.
///
/// Unlike the sequential collect, items after a failing one *are* still
/// evaluated (they may already be running on other workers); their
/// results are dropped.
///
/// # Errors
///
/// The first (by input order) error produced by `f`.
pub fn try_ordered_map<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    ordered_map(items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_ordered_map_keeps_order() {
        let items: Vec<u32> = (0..20).collect();
        let out: Result<Vec<u32>, ()> = try_ordered_map(&items, |&i| Ok(i * 2));
        assert_eq!(out.unwrap(), (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_ordered_map_reports_first_failing_input() {
        let items: Vec<u32> = (0..20).collect();
        // Items 7 and 3 both fail; input order means 3 wins, regardless
        // of completion order.
        let out: Result<Vec<u32>, u32> =
            try_ordered_map(&items, |&i| if i == 7 || i == 3 { Err(i) } else { Ok(i) });
        assert_eq!(out.unwrap_err(), 3);
    }
}
