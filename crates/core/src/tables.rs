//! Text renderers for the paper's tables.
//!
//! Each function regenerates one table as formatted text; the bench
//! binaries print these next to the paper's values (EXPERIMENTS.md).

use crate::flow::TechStudy;
use crate::table5::Table5Row;
use crate::FlowError;
use std::fmt::Write as _;
use techlib::spec::{InterposerKind, InterposerSpec};

/// Table I — interposer specifications (inputs).
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22}{:>12}{:>12}{:>12}{:>10}{:>10}",
        "Table I", "Glass", "Silicon", "Shinko", "APX", ""
    );
    let g = InterposerSpec::for_kind(InterposerKind::Glass25D);
    let s = InterposerSpec::for_kind(InterposerKind::Silicon25D);
    let sh = InterposerSpec::for_kind(InterposerKind::Shinko);
    let a = InterposerSpec::for_kind(InterposerKind::Apx);
    let row = |label: &str, f: &dyn Fn(&InterposerSpec) -> String| {
        format!(
            "{:<22}{:>12}{:>12}{:>12}{:>10}\n",
            label,
            f(&g),
            f(&s),
            f(&sh),
            f(&a)
        )
    };
    out.push_str(&row("# metal layers", &|x| {
        x.signal_metal_layers.to_string()
    }));
    out.push_str(&row("metal thickness", &|x| {
        format!("{}µm", x.metal_thickness_um)
    }));
    out.push_str(&row("dielectric thick.", &|x| {
        format!("{}µm", x.dielectric_thickness_um)
    }));
    out.push_str(&row("dielectric const.", &|x| {
        format!("{}", x.dielectric_constant)
    }));
    out.push_str(&row("min wire W/S", &|x| {
        format!("{}/{}µm", x.min_wire_width_um, x.min_wire_space_um)
    }));
    out.push_str(&row("via size", &|x| format!("{}µm", x.via_size_um)));
    out.push_str(&row("bump size", &|x| format!("{}µm", x.bump_size_um)));
    out.push_str(&row("µbump pitch", &|x| {
        format!("{}µm", x.microbump_pitch_um)
    }));
    out
}

/// Table II — bump usage and chiplet areas.
pub fn table2(studies: &[TechStudy]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:>8}{:>8}{:>8}{:>8}{:>10}{:>10}{:>10}",
        "Table II", "chip", "signal", "P/G", "total", "width mm", "area mm²", "ratio"
    );
    let glass_logic_area = studies
        .iter()
        .find(|s| s.tech == InterposerKind::Glass25D)
        .map(|s| s.logic.footprint.area_mm2())
        .unwrap_or(1.0);
    for s in studies {
        for (label, r) in [("logic", &s.logic), ("mem", &s.memory)] {
            let _ = writeln!(
                out,
                "{:<14}{:>8}{:>8}{:>8}{:>8}{:>10.2}{:>10.2}{:>10.2}",
                s.tech.label(),
                label,
                r.bumps.signal,
                r.bumps.pg,
                r.bumps.total(),
                r.footprint_mm,
                r.footprint.area_mm2(),
                r.footprint.area_mm2() / glass_logic_area,
            );
        }
    }
    out
}

/// Table III — chiplet PPA.
pub fn table3(studies: &[TechStudy]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:>7}{:>8}{:>9}{:>8}{:>8}{:>9}{:>9}{:>9}{:>9}",
        "Table III",
        "chip",
        "Fmax",
        "FP mm",
        "util%",
        "WL m",
        "total mW",
        "int mW",
        "sw mW",
        "leak mW"
    );
    for s in studies {
        for (label, r) in [("logic", &s.logic), ("mem", &s.memory)] {
            let _ = writeln!(
                out,
                "{:<14}{:>7}{:>8.0}{:>9.2}{:>8.1}{:>8.2}{:>9.2}{:>9.2}{:>9.2}{:>9.2}",
                s.tech.label(),
                label,
                r.fmax_mhz,
                r.footprint_mm,
                r.utilization * 100.0,
                r.wirelength_m,
                r.total_power_mw(),
                r.power.internal_w * 1e3,
                r.power.switching_w * 1e3,
                r.power.leakage_w * 1e3,
            );
        }
    }
    out
}

/// Table IV — interposer design results.
pub fn table4(studies: &[TechStudy]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:>9}{:>10}{:>9}{:>9}{:>9}{:>8}{:>11}{:>10}",
        "Table IV", "layers", "WL mm", "min", "avg", "max", "vias", "area mm²", "P_sys mW"
    );
    for s in studies {
        match &s.routing {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "{:<14}{:>6}+{:<2}{:>10.1}{:>9.2}{:>9.2}{:>9.2}{:>8}{:>11.2}{:>10.1}",
                    s.tech.label(),
                    r.signal_layers_used,
                    r.pg_layers,
                    r.total_wl_mm,
                    r.min_wl_mm,
                    r.avg_wl_mm,
                    r.max_wl_mm,
                    r.signal_vias + r.stacked_vias,
                    r.area_mm2,
                    s.fullchip.total_power_mw,
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<14}{:>9}{:>10}{:>9}{:>9}{:>9}{:>8}{:>11.2}{:>10.1}",
                    s.tech.label(),
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    0.88,
                    s.fullchip.total_power_mw,
                );
            }
        }
    }
    out
}

/// Table V — worst-net link delay and power.
pub fn table5_text(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:>9}{:>10}{:>12}{:>12}{:>12}{:>12}",
        "Table V", "link", "WL µm", "drv ps", "wire ps", "drv µW", "wire µW"
    );
    for r in rows {
        for (label, l) in [("L2M", &r.l2m), ("L2L", &r.l2l)] {
            let _ = writeln!(
                out,
                "{:<14}{:>9}{:>10.0}{:>12.2}{:>12.2}{:>12.2}{:>12.2}",
                r.tech.label(),
                label,
                l.length_um,
                l.driver_delay_ps,
                l.interconnect_delay_ps,
                l.driver_power_uw,
                l.interconnect_power_uw,
            );
        }
    }
    out
}

/// Table VI — fixed-length material comparison.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn table6_text() -> Result<String, FlowError> {
    let rows = si::material_study::table6()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14}{:>12}{:>12}",
        "Table VI", "delay ps", "power µW"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14}{:>12.2}{:>12.2}",
            r.tech.label(),
            r.delay_ps,
            r.power_uw
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_all_columns() {
        let t = table1();
        assert!(t.contains("µbump pitch"));
        assert!(t.contains("35µm"));
        assert!(t.contains("50µm"));
        assert!(t.lines().count() >= 8);
    }

    #[test]
    fn table6_renders() {
        let t = table6_text().unwrap();
        assert!(t.contains("Glass 2.5D"));
        assert!(t.contains("APX"));
    }
}
