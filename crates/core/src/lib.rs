//! End-to-end chiplet/interposer co-design flow (Fig. 4 of the paper).
//!
//! This crate is the facade over the whole study. It wires together:
//!
//! 1. [`netlist`] — the two-tile OpenPiton-like design, hierarchical
//!    partitioning and SerDes insertion;
//! 2. [`chiplet`] — bump planning, footprints, placement, timing, power
//!    (Tables II/III);
//! 3. [`interposer`] — die placement, routing, PDN (Table IV);
//! 4. [`si`] — link delay/power and eye diagrams (Tables V/VI, Fig. 14);
//! 5. [`pi`] — PDN impedance, IR drop, settling (Fig. 15, Table IV);
//! 6. [`thermal`] — steady-state temperatures (Figs. 16–18);
//!
//! and produces the full-chip roll-ups ([`fullchip`]), the headline
//! cross-technology comparison ([`compare`]) and printable tables
//! ([`tables`]).
//!
//! # Example
//!
//! ```no_run
//! let study = codesign::flow::run_tech(techlib::spec::InterposerKind::Glass3D)?;
//! println!("system power: {:.1} mW", study.fullchip.total_power_mw);
//! # Ok::<(), codesign::FlowError>(())
//! ```

pub mod artifacts;
pub mod compare;
pub mod cost;
pub mod exec;
pub mod flow;
pub mod fullchip;
pub mod sensitivity;
pub mod table5;
pub mod tables;

pub use flow::{run_tech, TechStudy};
pub use fullchip::FullChipReport;

/// Errors produced by the end-to-end flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Netlist construction or partitioning failed.
    Netlist(netlist::NetlistError),
    /// Interposer routing failed.
    Route(interposer::RouteError),
    /// Circuit simulation failed.
    Circuit(circuit::CircuitError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist: {e}"),
            FlowError::Route(e) => write!(f, "routing: {e}"),
            FlowError::Circuit(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<netlist::NetlistError> for FlowError {
    fn from(e: netlist::NetlistError) -> FlowError {
        FlowError::Netlist(e)
    }
}

impl From<interposer::RouteError> for FlowError {
    fn from(e: interposer::RouteError) -> FlowError {
        FlowError::Route(e)
    }
}

impl From<circuit::CircuitError> for FlowError {
    fn from(e: circuit::CircuitError) -> FlowError {
        FlowError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_convert_and_display() {
        let e: FlowError = netlist::NetlistError::EmptySide.into();
        assert!(!e.to_string().is_empty());
        let e: FlowError = interposer::RouteError::Unroutable { net: 1 }.into();
        assert!(e.to_string().contains("net 1"));
        let e: FlowError = circuit::CircuitError::InvalidParameter { parameter: "dt" }.into();
        assert!(e.to_string().contains("dt"));
    }
}
