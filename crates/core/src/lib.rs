//! End-to-end chiplet/interposer co-design flow (Fig. 4 of the paper).
//!
//! This crate is the facade over the whole study. It wires together:
//!
//! 1. [`netlist`] — the two-tile OpenPiton-like design, hierarchical
//!    partitioning and SerDes insertion;
//! 2. [`chiplet`] — bump planning, footprints, placement, timing, power
//!    (Tables II/III);
//! 3. [`interposer`] — die placement, routing, PDN (Table IV);
//! 4. [`si`] — link delay/power and eye diagrams (Tables V/VI, Fig. 14);
//! 5. [`pi`] — PDN impedance, IR drop, settling (Fig. 15, Table IV);
//! 6. [`thermal`] — steady-state temperatures (Figs. 16–18);
//!
//! and produces the full-chip roll-ups ([`fullchip`]), the headline
//! cross-technology comparison ([`compare`]) and printable tables
//! ([`tables`]).
//!
//! # Example
//!
//! ```no_run
//! let study = codesign::flow::run_tech(techlib::spec::InterposerKind::Glass3D)?;
//! println!("system power: {:.1} mW", study.fullchip.total_power_mw);
//! # Ok::<(), codesign::FlowError>(())
//! ```

pub mod artifacts;
pub mod batch;
pub mod compare;
pub mod context;
pub mod cost;
pub mod exec;
pub mod flow;
pub mod fullchip;
pub mod scenario;
pub mod sensitivity;
pub mod serve;
pub mod table5;
pub mod tables;

pub use context::{default_context, StudyContext};
pub use flow::{run_scenario, run_tech, TechStudy};
pub use fullchip::FullChipReport;
pub use scenario::{Scenario, ScenarioOverrides};

/// Errors produced by the end-to-end flow.
///
/// Stage-specific errors fold into the flow-level vocabulary on
/// conversion: a singular MNA system becomes [`FlowError::Singular`], an
/// unroutable net becomes [`FlowError::Unroutable`], a thermal solver
/// that hits its iteration cap becomes [`FlowError::NoConvergence`] —
/// so callers can match on what went wrong without knowing which crate
/// detected it. Everything else keeps its source enum.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Netlist construction or partitioning failed.
    Netlist(netlist::NetlistError),
    /// Interposer routing failed (other than an unroutable net).
    Route(interposer::RouteError),
    /// Circuit simulation failed (other than a singular system).
    Circuit(circuit::CircuitError),
    /// A SPICE-lite deck failed to parse.
    Parse(circuit::parser::ParseError),
    /// A linear system was singular.
    Singular {
        /// Pivot index where elimination failed.
        pivot: usize,
    },
    /// An iterative solver hit its iteration cap.
    NoConvergence {
        /// Which stage failed to converge.
        stage: &'static str,
        /// Iterations performed.
        iterations: usize,
    },
    /// A net could not be routed.
    Unroutable {
        /// Net id.
        net: usize,
    },
    /// The flow configuration itself was invalid (bad environment
    /// variable, infeasible placement request, unsupported technology).
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// A request deadline expired and the flow abandoned the run at a
    /// stage boundary ([`techlib::cancel`] cooperative cancellation —
    /// the `codesign serve` per-request deadline path).
    Deadline {
        /// The stage boundary where the expiry was observed.
        stage: &'static str,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist: {e}"),
            FlowError::Route(e) => write!(f, "routing: {e}"),
            FlowError::Circuit(e) => write!(f, "simulation: {e}"),
            FlowError::Parse(e) => write!(f, "parse: {e}"),
            FlowError::Singular { pivot } => {
                write!(f, "singular system at pivot {pivot}")
            }
            FlowError::NoConvergence { stage, iterations } => {
                write!(f, "{stage} did not converge after {iterations} iterations")
            }
            FlowError::Unroutable { net } => write!(f, "net {net} is unroutable"),
            FlowError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            FlowError::Deadline { stage } => {
                write!(f, "deadline exceeded at {stage}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<netlist::NetlistError> for FlowError {
    fn from(e: netlist::NetlistError) -> FlowError {
        FlowError::Netlist(e)
    }
}

impl From<interposer::RouteError> for FlowError {
    fn from(e: interposer::RouteError) -> FlowError {
        match e {
            interposer::RouteError::Unroutable { net } => FlowError::Unroutable { net },
            other => FlowError::Route(other),
        }
    }
}

impl From<circuit::CircuitError> for FlowError {
    fn from(e: circuit::CircuitError) -> FlowError {
        match e {
            circuit::CircuitError::SingularMatrix { pivot } => FlowError::Singular { pivot },
            other => FlowError::Circuit(other),
        }
    }
}

impl From<circuit::parser::ParseError> for FlowError {
    fn from(e: circuit::parser::ParseError) -> FlowError {
        FlowError::Parse(e)
    }
}

impl From<thermal::ThermalError> for FlowError {
    fn from(e: thermal::ThermalError) -> FlowError {
        match e {
            thermal::ThermalError::NoConvergence { iterations, .. } => FlowError::NoConvergence {
                stage: "thermal SOR",
                iterations,
            },
            thermal::ThermalError::UnsupportedTech(_) => FlowError::InvalidConfig {
                reason: e.to_string(),
            },
        }
    }
}

impl From<chiplet::ChipletError> for FlowError {
    fn from(e: chiplet::ChipletError) -> FlowError {
        FlowError::InvalidConfig {
            reason: e.to_string(),
        }
    }
}

impl From<techlib::par::ThreadsConfigError> for FlowError {
    fn from(e: techlib::par::ThreadsConfigError) -> FlowError {
        FlowError::InvalidConfig {
            reason: e.to_string(),
        }
    }
}

impl From<techlib::cancel::DeadlineExceeded> for FlowError {
    fn from(e: techlib::cancel::DeadlineExceeded) -> FlowError {
        FlowError::Deadline { stage: e.stage }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_convert_and_display() {
        let e: FlowError = netlist::NetlistError::EmptySide.into();
        assert!(!e.to_string().is_empty());
        let e: FlowError = interposer::RouteError::Unroutable { net: 1 }.into();
        assert!(e.to_string().contains("net 1"));
        let e: FlowError = circuit::CircuitError::InvalidParameter { parameter: "dt" }.into();
        assert!(e.to_string().contains("dt"));
    }

    #[test]
    fn stage_errors_fold_into_flow_vocabulary() {
        // Singular systems and unroutable nets are promoted to their own
        // flow-level variants; other source errors keep their enum.
        assert_eq!(
            FlowError::from(circuit::CircuitError::SingularMatrix { pivot: 4 }),
            FlowError::Singular { pivot: 4 }
        );
        assert_eq!(
            FlowError::from(interposer::RouteError::Unroutable { net: 7 }),
            FlowError::Unroutable { net: 7 }
        );
        assert!(matches!(
            FlowError::from(interposer::RouteError::NoInterposer(
                techlib::spec::InterposerKind::Silicon3D
            )),
            FlowError::Route(_)
        ));
        let e = FlowError::from(thermal::ThermalError::NoConvergence {
            iterations: 400,
            residual_k: 1.0,
            tolerance_k: 1e-5,
        });
        assert_eq!(
            e,
            FlowError::NoConvergence {
                stage: "thermal SOR",
                iterations: 400
            }
        );
        assert!(e.to_string().contains("400"));
        let e = FlowError::from(chiplet::ChipletError::PlacementInfeasible {
            signals: 9,
            slots: 2,
        });
        assert!(matches!(e, FlowError::InvalidConfig { .. }));
        assert!(e.to_string().contains("infeasible"));
        let e = FlowError::from(techlib::cancel::DeadlineExceeded {
            stage: "stage.route",
        });
        assert_eq!(
            e,
            FlowError::Deadline {
                stage: "stage.route"
            }
        );
        assert_eq!(e.to_string(), "deadline exceeded at stage.route");
    }
}
