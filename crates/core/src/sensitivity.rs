//! Sensitivity analysis — the "optimization opportunities" the paper's
//! conclusion points at, quantified by sweeping one technology parameter
//! at a time around the glass design point.
//!
//! Every sweep takes an explicit [`StudyContext`] and reads its shared
//! front-end artifacts (the seed implementation re-derived the netlist →
//! split → chipletize chain from scratch inside each sweep call); two
//! sweeps sharing a context therefore share a single hierarchical split.
//! The sweeps perturb a *copy* of the context's resolved spec at each
//! point — the context's own caches see only its canonical specs.

use crate::context::StudyContext;
use crate::FlowError;
use chiplet::bumpmap::BumpPlan;
use interposer::grid::RoutingGrid;
use interposer::router::base_blockage;
use serde::Serialize;
use techlib::spec::InterposerKind;

/// One sweep point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// The responding metric's value.
    pub y: f64,
}

/// Glass logic-die width (µm) versus micro-bump pitch (µm).
///
/// Shows where the die flips from bump-limited to cell-area-limited —
/// the pitch below which further bump scaling stops paying.
///
/// # Errors
///
/// Propagates partitioning failures.
pub fn footprint_vs_bump_pitch(
    ctx: &StudyContext,
    pitches_um: &[f64],
) -> Result<Vec<SweepPoint>, FlowError> {
    let netlists = ctx.chiplet_netlists()?;
    let (logic, _) = &*netlists;
    pitches_um
        .iter()
        .map(|&pitch| {
            let mut spec = ctx.spec(InterposerKind::Glass25D).clone();
            spec.microbump_pitch_um = pitch;
            let bumps = BumpPlan::for_design(logic.signal_pins, logic.kind, &spec);
            let fp = chiplet::footprint::solve(logic, &bumps, &spec, None);
            Ok(SweepPoint {
                x: pitch,
                y: fp.width_um,
            })
        })
        .collect()
}

/// Glass logic-die cell utilization (fraction) versus micro-bump pitch
/// (µm). The flip side of [`footprint_vs_bump_pitch`]: as coarser bumps
/// force a bigger die, the standard-cell area stays put and utilization
/// collapses — silicon paid for bump real estate.
///
/// # Errors
///
/// Propagates partitioning failures.
pub fn utilization_vs_bump_pitch(
    ctx: &StudyContext,
    pitches_um: &[f64],
) -> Result<Vec<SweepPoint>, FlowError> {
    let netlists = ctx.chiplet_netlists()?;
    let (logic, _) = &*netlists;
    pitches_um
        .iter()
        .map(|&pitch| {
            let mut spec = ctx.spec(InterposerKind::Glass25D).clone();
            spec.microbump_pitch_um = pitch;
            let bumps = BumpPlan::for_design(logic.signal_pins, logic.kind, &spec);
            let fp = chiplet::footprint::solve(logic, &bumps, &spec, None);
            Ok(SweepPoint {
                x: pitch,
                y: fp.utilization(),
            })
        })
        .collect()
}

/// Glass interconnect Elmore delay at the AIB's 10 mm maximum reach
/// (ps) versus RDL metal
/// thickness (µm), holding the glass stack's 2:1 thickness-to-spacing
/// aspect ratio (scaling thickness at fixed spacing would trade the R
/// win for a lateral-coupling C penalty). Thicker copper buys delay —
/// the glass technology's core electrical advantage (Table VI).
pub fn delay_vs_metal_thickness(ctx: &StudyContext, thicknesses_um: &[f64]) -> Vec<SweepPoint> {
    thicknesses_um
        .iter()
        .map(|&t| {
            let mut spec = ctx.spec(InterposerKind::Glass25D).clone();
            spec.metal_thickness_um = t;
            spec.min_wire_space_um = t / 2.0;
            let line = si::rlgc::extract_line(&spec, 10e-3);
            SweepPoint {
                x: t,
                y: line.elmore_delay(47.4, 55e-15) * 1e12,
            }
        })
        .collect()
}

/// Fraction of glass routing gcell-layers blocked before any signal is
/// routed, versus via diameter (µm). The 22 µm via is the root cause of
/// the glass detour effect; this sweep shows how much smaller vias would
/// relieve it.
///
/// # Errors
///
/// [`FlowError::Route`] if a swept via size produces a degenerate
/// routing grid.
pub fn blockage_vs_via_size(
    ctx: &StudyContext,
    via_sizes_um: &[f64],
) -> Result<Vec<SweepPoint>, FlowError> {
    let placement = interposer::diemap::place_dies_with(ctx.spec(InterposerKind::Glass25D));
    via_sizes_um
        .iter()
        .map(|&v| {
            let mut spec = ctx.spec(InterposerKind::Glass25D).clone();
            spec.via_size_um = v;
            let grid = RoutingGrid::new(placement.footprint_um, &spec)
                .map_err(|reason| interposer::RouteError::BadGrid { reason })?;
            let base = base_blockage(&placement, &grid);
            let blocked = base.iter().filter(|&&u| u >= grid.capacity).count();
            Ok(SweepPoint {
                x: v,
                y: blocked as f64 / base.len() as f64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_shrinks_with_pitch_until_cell_limited() {
        let ctx = StudyContext::paper();
        let points = footprint_vs_bump_pitch(&ctx, &[15.0, 25.0, 35.0, 45.0, 55.0]).unwrap();
        // Monotone non-decreasing in pitch.
        for w in points.windows(2) {
            assert!(w[1].y >= w[0].y, "{points:?}");
        }
        // At tiny pitch the cell-area limit takes over: width saturates.
        let tiny = footprint_vs_bump_pitch(&ctx, &[5.0, 10.0]).unwrap();
        assert_eq!(tiny[0].y, tiny[1].y, "cell-limited floor");
    }

    #[test]
    fn coarser_bumps_waste_utilization() {
        let ctx = StudyContext::paper();
        let points = utilization_vs_bump_pitch(&ctx, &[35.0, 45.0, 55.0, 70.0]).unwrap();
        for w in points.windows(2) {
            assert!(w[1].y <= w[0].y, "{points:?}");
        }
        for p in &points {
            assert!(p.y > 0.0 && p.y <= 1.0, "{points:?}");
        }
    }

    #[test]
    fn sweeps_sharing_a_context_share_one_split() {
        // The seed implementation re-partitioned inside every sweep call;
        // now two different sweeps on one context run exactly one
        // hierarchical split (and one chipletization) between them.
        let ctx = StudyContext::paper();
        footprint_vs_bump_pitch(&ctx, &[25.0, 35.0, 45.0]).unwrap();
        utilization_vs_bump_pitch(&ctx, &[25.0, 35.0, 45.0]).unwrap();
        let counts = ctx.compute_counts();
        assert_eq!(counts.split, 1, "{counts:?}");
        assert_eq!(counts.netlists, 1, "{counts:?}");
    }

    #[test]
    fn thicker_metal_is_faster() {
        let ctx = StudyContext::paper();
        let points = delay_vs_metal_thickness(&ctx, &[1.0, 2.0, 4.0, 8.0]);
        for w in points.windows(2) {
            assert!(w[1].y < w[0].y, "{points:?}");
        }
    }

    #[test]
    fn smaller_vias_unblock_the_grid() {
        let ctx = StudyContext::paper();
        let points = blockage_vs_via_size(&ctx, &[4.0, 10.0, 22.0, 30.0]).unwrap();
        for w in points.windows(2) {
            assert!(w[1].y >= w[0].y, "{points:?}");
        }
        // The paper's 22 µm point blocks a meaningful fraction.
        let at22 = points.iter().find(|p| p.x == 22.0).unwrap();
        assert!(at22.y > 0.01, "{}", at22.y);
    }
}
