//! Sensitivity analysis — the "optimization opportunities" the paper's
//! conclusion points at, quantified by sweeping one technology parameter
//! at a time around the glass design point.

use crate::FlowError;
use chiplet::bumpmap::BumpPlan;
use interposer::grid::RoutingGrid;
use interposer::router::base_blockage;
use netlist::chiplet_netlist::chipletize;
use netlist::openpiton::two_tile_openpiton;
use netlist::partition::hierarchical_l3_split;
use netlist::serdes::SerdesPlan;
use serde::Serialize;
use techlib::spec::{InterposerKind, InterposerSpec};

/// One sweep point.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// The responding metric's value.
    pub y: f64,
}

/// Glass logic-die width (µm) versus micro-bump pitch (µm).
///
/// Shows where the die flips from bump-limited to cell-area-limited —
/// the pitch below which further bump scaling stops paying.
///
/// # Errors
///
/// Propagates partitioning failures.
pub fn footprint_vs_bump_pitch(pitches_um: &[f64]) -> Result<Vec<SweepPoint>, FlowError> {
    let design = two_tile_openpiton();
    let split = hierarchical_l3_split(&design)?;
    let (logic, _) = chipletize(&design, &split, &SerdesPlan::paper());
    pitches_um
        .iter()
        .map(|&pitch| {
            let mut spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
            spec.microbump_pitch_um = pitch;
            let bumps = BumpPlan::for_design(logic.signal_pins, logic.kind, &spec);
            let fp = chiplet::footprint::solve(&logic, &bumps, &spec, None);
            Ok(SweepPoint {
                x: pitch,
                y: fp.width_um,
            })
        })
        .collect()
}

/// Glass interconnect Elmore delay at the AIB's 10 mm maximum reach
/// (ps) versus RDL metal
/// thickness (µm), holding the glass stack's 2:1 thickness-to-spacing
/// aspect ratio (scaling thickness at fixed spacing would trade the R
/// win for a lateral-coupling C penalty). Thicker copper buys delay —
/// the glass technology's core electrical advantage (Table VI).
pub fn delay_vs_metal_thickness(thicknesses_um: &[f64]) -> Vec<SweepPoint> {
    thicknesses_um
        .iter()
        .map(|&t| {
            let mut spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
            spec.metal_thickness_um = t;
            spec.min_wire_space_um = t / 2.0;
            let line = si::rlgc::extract_line(&spec, 10e-3);
            SweepPoint {
                x: t,
                y: line.elmore_delay(47.4, 55e-15) * 1e12,
            }
        })
        .collect()
}

/// Fraction of glass routing gcell-layers blocked before any signal is
/// routed, versus via diameter (µm). The 22 µm via is the root cause of
/// the glass detour effect; this sweep shows how much smaller vias would
/// relieve it.
///
/// # Errors
///
/// [`FlowError::Route`] if a swept via size produces a degenerate
/// routing grid.
pub fn blockage_vs_via_size(via_sizes_um: &[f64]) -> Result<Vec<SweepPoint>, FlowError> {
    let placement = interposer::diemap::place_dies(InterposerKind::Glass25D);
    via_sizes_um
        .iter()
        .map(|&v| {
            let mut spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
            spec.via_size_um = v;
            let grid = RoutingGrid::new(placement.footprint_um, &spec)
                .map_err(|reason| interposer::RouteError::BadGrid { reason })?;
            let base = base_blockage(&placement, &grid);
            let blocked = base.iter().filter(|&&u| u >= grid.capacity).count();
            Ok(SweepPoint {
                x: v,
                y: blocked as f64 / base.len() as f64,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_shrinks_with_pitch_until_cell_limited() {
        let points = footprint_vs_bump_pitch(&[15.0, 25.0, 35.0, 45.0, 55.0]).unwrap();
        // Monotone non-decreasing in pitch.
        for w in points.windows(2) {
            assert!(w[1].y >= w[0].y, "{points:?}");
        }
        // At tiny pitch the cell-area limit takes over: width saturates.
        let tiny = footprint_vs_bump_pitch(&[5.0, 10.0]).unwrap();
        assert_eq!(tiny[0].y, tiny[1].y, "cell-limited floor");
    }

    #[test]
    fn thicker_metal_is_faster() {
        let points = delay_vs_metal_thickness(&[1.0, 2.0, 4.0, 8.0]);
        for w in points.windows(2) {
            assert!(w[1].y < w[0].y, "{points:?}");
        }
    }

    #[test]
    fn smaller_vias_unblock_the_grid() {
        let points = blockage_vs_via_size(&[4.0, 10.0, 22.0, 30.0]).unwrap();
        for w in points.windows(2) {
            assert!(w[1].y >= w[0].y, "{points:?}");
        }
        // The paper's 22 µm point blocks a meaningful fraction.
        let at22 = points.iter().find(|p| p.x == 22.0).unwrap();
        assert!(at22.y > 0.01, "{}", at22.y);
    }
}
