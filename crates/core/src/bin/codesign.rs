//! Command-line front-end for the co-design flow.
//!
//! ```sh
//! codesign glass3d            # human-readable study summary
//! codesign silicon25d --json  # full study as JSON
//! codesign --all              # one-line summary per technology
//! ```

use codesign::flow::{run_all, run_tech};
use codesign::table5::MonitorLengths;
use techlib::spec::InterposerKind;

fn parse_tech(name: &str) -> Option<InterposerKind> {
    match name
        .to_ascii_lowercase()
        .replace(['-', '_', '.'], "")
        .as_str()
    {
        "glass25d" | "glass2d5" => Some(InterposerKind::Glass25D),
        "glass3d" | "55d" => Some(InterposerKind::Glass3D),
        "silicon25d" | "si25d" | "cowos" => Some(InterposerKind::Silicon25D),
        "silicon3d" | "si3d" => Some(InterposerKind::Silicon3D),
        "shinko" => Some(InterposerKind::Shinko),
        "apx" => Some(InterposerKind::Apx),
        _ => None,
    }
}

fn usage() -> ! {
    eprintln!("usage: codesign <glass25d|glass3d|silicon25d|silicon3d|shinko|apx> [--json]");
    eprintln!("       codesign --all");
    std::process::exit(2);
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--all" {
        println!(
            "{:<14}{:>10}{:>12}{:>10}{:>10}{:>10}",
            "tech", "area mm²", "P_sys mW", "Fmax MHz", "logic °C", "mem °C"
        );
        for s in run_all(MonitorLengths::Routed)? {
            let area = s.routing.as_ref().map_or(0.88, |r| r.area_mm2);
            println!(
                "{:<14}{:>10.2}{:>12.1}{:>10.0}{:>10.1}{:>10.1}",
                s.tech.label(),
                area,
                s.fullchip.total_power_mw,
                s.fullchip.system_fmax_mhz,
                s.thermal.logic_peak_c,
                s.thermal.mem_peak_c
            );
        }
        return Ok(());
    }
    let Some(tech) = parse_tech(&args[0]) else {
        usage();
    };
    let study = run_tech(tech)?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&study)?);
    } else {
        println!("=== {} study ===", tech.label());
        println!(
            "logic chiplet : {:.2} mm² @ {:.1}% util, {:.0} MHz, {:.2} mW",
            study.logic.footprint.area_mm2(),
            study.logic.utilization * 100.0,
            study.logic.fmax_mhz,
            study.logic.total_power_mw()
        );
        println!(
            "memory chiplet: {:.2} mm² @ {:.1}% util, {:.0} MHz, {:.2} mW",
            study.memory.footprint.area_mm2(),
            study.memory.utilization * 100.0,
            study.memory.fmax_mhz,
            study.memory.total_power_mw()
        );
        if let Some(r) = &study.routing {
            println!(
                "interposer    : {} + {} layers, {:.1} mm wire, {:.2} mm²",
                r.signal_layers_used, r.pg_layers, r.total_wl_mm, r.area_mm2
            );
        } else {
            println!("interposer    : none (direct 3D stack)");
        }
        println!(
            "links         : L2M {:.2} ps / {:.1} µW, L2L {:.2} ps / {:.1} µW",
            study.links.l2m.interconnect_delay_ps,
            study.links.l2m.total_power_uw(),
            study.links.l2l.interconnect_delay_ps,
            study.links.l2l.total_power_uw()
        );
        println!(
            "full chip     : {:.1} mW, {:.0} MHz pipelined / {:.0} MHz non-pipelined",
            study.fullchip.total_power_mw,
            study.fullchip.system_fmax_mhz,
            study.fullchip.nonpipelined_fmax_mhz
        );
        println!(
            "thermal       : logic {:.1} °C, memory {:.1} °C",
            study.thermal.logic_peak_c, study.thermal.mem_peak_c
        );
    }
    Ok(())
}
