//! Command-line front-end for the co-design flow.
//!
//! ```sh
//! codesign glass3d                  # human-readable study summary
//! codesign silicon25d --json        # full study as JSON
//! codesign --all                    # one-line summary per technology
//! codesign sweep scenarios.json     # batch design-space run
//! ```

use codesign::flow::{run_all, run_tech};
use codesign::scenario::{kind_from_str, scenarios_from_json};
use codesign::table5::MonitorLengths;
use techlib::spec::InterposerKind;

fn parse_tech(name: &str) -> Option<InterposerKind> {
    kind_from_str(name)
}

fn usage() -> ! {
    eprintln!("usage: codesign <glass25d|glass3d|silicon25d|silicon3d|shinko|apx> [--json]");
    eprintln!("       codesign --all");
    eprintln!("       codesign sweep <scenarios.json> [--json] [--sequential]");
    std::process::exit(2);
}

/// Runs a batch of scenarios from a JSON file and prints one line (or
/// one JSON object) per scenario.
fn sweep(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        usage();
    };
    let json = args.iter().any(|a| a == "--json");
    let sequential = args.iter().any(|a| a == "--sequential");
    let text = std::fs::read_to_string(path)?;
    let scenarios = scenarios_from_json(&text)?;
    let outcomes = if sequential {
        codesign::batch::run_sequential(&scenarios)
    } else {
        codesign::batch::run(&scenarios)?
    };
    if json {
        let mut entries = Vec::new();
        for (scenario, outcome) in scenarios.iter().zip(&outcomes) {
            let body = match outcome {
                Ok(study) => format!("\"study\":{}", serde_json::to_string(study)?),
                Err(e) => format!("\"error\":{}", serde_json::to_string(&e.to_string())?),
            };
            entries.push(format!(
                "{{\"scenario\":{},{body}}}",
                serde_json::to_string(scenario.name())?
            ));
        }
        println!("[{}]", entries.join(","));
    } else {
        println!(
            "{:<24}{:<14}{:>12}{:>10}{:>10}",
            "scenario", "tech", "P_sys mW", "Fmax MHz", "mem °C"
        );
        for (scenario, outcome) in scenarios.iter().zip(&outcomes) {
            match outcome {
                Ok(s) => println!(
                    "{:<24}{:<14}{:>12.1}{:>10.0}{:>10.1}",
                    scenario.name(),
                    s.tech.label(),
                    s.fullchip.total_power_mw,
                    s.fullchip.system_fmax_mhz,
                    s.thermal.mem_peak_c
                ),
                Err(e) => println!(
                    "{:<24}{:<14}error: {e}",
                    scenario.name(),
                    scenario.tech().label()
                ),
            }
        }
    }
    if outcomes.iter().any(Result::is_err) {
        std::process::exit(1);
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "sweep" {
        return sweep(&args[1..]);
    }
    if args[0] == "--all" {
        println!(
            "{:<14}{:>10}{:>12}{:>10}{:>10}{:>10}",
            "tech", "area mm²", "P_sys mW", "Fmax MHz", "logic °C", "mem °C"
        );
        for s in run_all(MonitorLengths::Routed)? {
            let area = s.routing.as_ref().map_or(0.88, |r| r.area_mm2);
            println!(
                "{:<14}{:>10.2}{:>12.1}{:>10.0}{:>10.1}{:>10.1}",
                s.tech.label(),
                area,
                s.fullchip.total_power_mw,
                s.fullchip.system_fmax_mhz,
                s.thermal.logic_peak_c,
                s.thermal.mem_peak_c
            );
        }
        return Ok(());
    }
    let Some(tech) = parse_tech(&args[0]) else {
        usage();
    };
    let study = run_tech(tech)?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&study)?);
    } else {
        println!("=== {} study ===", tech.label());
        println!(
            "logic chiplet : {:.2} mm² @ {:.1}% util, {:.0} MHz, {:.2} mW",
            study.logic.footprint.area_mm2(),
            study.logic.utilization * 100.0,
            study.logic.fmax_mhz,
            study.logic.total_power_mw()
        );
        println!(
            "memory chiplet: {:.2} mm² @ {:.1}% util, {:.0} MHz, {:.2} mW",
            study.memory.footprint.area_mm2(),
            study.memory.utilization * 100.0,
            study.memory.fmax_mhz,
            study.memory.total_power_mw()
        );
        if let Some(r) = &study.routing {
            println!(
                "interposer    : {} + {} layers, {:.1} mm wire, {:.2} mm²",
                r.signal_layers_used, r.pg_layers, r.total_wl_mm, r.area_mm2
            );
        } else {
            println!("interposer    : none (direct 3D stack)");
        }
        println!(
            "links         : L2M {:.2} ps / {:.1} µW, L2L {:.2} ps / {:.1} µW",
            study.links.l2m.interconnect_delay_ps,
            study.links.l2m.total_power_uw(),
            study.links.l2l.interconnect_delay_ps,
            study.links.l2l.total_power_uw()
        );
        println!(
            "full chip     : {:.1} mW, {:.0} MHz pipelined / {:.0} MHz non-pipelined",
            study.fullchip.total_power_mw,
            study.fullchip.system_fmax_mhz,
            study.fullchip.nonpipelined_fmax_mhz
        );
        println!(
            "thermal       : logic {:.1} °C, memory {:.1} °C",
            study.thermal.logic_peak_c, study.thermal.mem_peak_c
        );
    }
    Ok(())
}
