//! Command-line front-end for the co-design flow.
//!
//! ```sh
//! codesign glass3d                  # human-readable study summary
//! codesign silicon25d --json        # full study as JSON
//! codesign --all --json             # all six studies as a JSON array
//! codesign sweep scenarios.json     # batch design-space run
//! codesign serve 127.0.0.1:8080     # long-running sweep service
//! codesign --all --trace t.json     # + Chrome trace of every stage
//! codesign sweep s.json --stats     # + per-stage table on stderr
//! ```
//!
//! Exit codes: 0 on success, 1 when the flow (or any sweep scenario)
//! fails, 2 for unknown flags or malformed invocations.
//!
//! `--trace <path>` (or the `CODESIGN_TRACE` environment variable)
//! writes a Chrome trace-event JSON file of every flow stage span and
//! work counter; `--stats` prints the aggregated per-stage table to
//! stderr. Both are strictly observational: enabling them never changes
//! any study output byte.

use codesign::flow::{run_all, run_tech, TechStudy};
use codesign::scenario::{kind_from_str, scenarios_from_json};
use codesign::table5::MonitorLengths;
use std::path::PathBuf;
use std::sync::Arc;
use techlib::spec::InterposerKind;
use techlib::store::ArtifactStore;

fn parse_tech(name: &str) -> Option<InterposerKind> {
    kind_from_str(name)
}

fn usage() -> ! {
    eprintln!(
        "usage: codesign <glass25d|glass3d|silicon25d|silicon3d|shinko|apx> \
         [--json] [--trace <path>] [--stats]"
    );
    eprintln!("       codesign --all [--json] [--trace <path>] [--stats]");
    eprintln!(
        "       codesign sweep <scenarios.json> [--json] [--sequential] \
         [--cache-dir <dir>] [--trace <path>] [--stats]"
    );
    eprintln!(
        "       codesign serve <host:port> [--workers <n>] [--queue-depth <n>] \
         [--deadline-ms <n>] [--max-connections <n>] [--header-read-ms <n>] \
         [--body-read-ms <n>] [--write-ms <n>] [--cache-dir <dir>] \
         [--trace <path>] [--stats]"
    );
    eprintln!(
        "       (--cache-dir persists stage artifacts across runs; \
         CODESIGN_CACHE_DIR sets a default)"
    );
    std::process::exit(2);
}

/// Strictly parsed command arguments: every flag is matched exactly and
/// anything unrecognised is a usage error (exit 2), so typos can never
/// be silently ignored again.
#[derive(Debug, Default)]
struct Opts {
    json: bool,
    stats: bool,
    sequential: bool,
    trace: Option<String>,
    cache_dir: Option<String>,
    positionals: Vec<String>,
}

fn parse_opts(args: &[String], allow_sequential: bool) -> Opts {
    let mut opts = Opts::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--stats" => opts.stats = true,
            "--sequential" if allow_sequential => opts.sequential = true,
            "--cache-dir" if allow_sequential => match iter.next() {
                Some(dir) => opts.cache_dir = Some(dir.clone()),
                None => {
                    eprintln!("error: --cache-dir requires a directory");
                    usage();
                }
            },
            "--trace" => match iter.next() {
                Some(path) => opts.trace = Some(path.clone()),
                None => {
                    eprintln!("error: --trace requires a file path");
                    usage();
                }
            },
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
            other => opts.positionals.push(other.to_string()),
        }
    }
    if opts.trace.is_none() {
        opts.trace = std::env::var(techlib::obs::TRACE_ENV)
            .ok()
            .filter(|path| !path.is_empty());
    }
    opts
}

/// The effective cache directory: the explicit flag, else the
/// `CODESIGN_CACHE_DIR` environment variable, else none.
fn resolve_cache_dir(flag: &Option<String>) -> Option<PathBuf> {
    flag.clone()
        .or_else(|| {
            std::env::var(techlib::store::CACHE_DIR_ENV)
                .ok()
                .filter(|dir| !dir.is_empty())
        })
        .map(PathBuf::from)
}

/// Turns recording on up front when any observability output was asked
/// for, so the run about to start is captured from its first stage.
fn arm_observability(opts: &Opts) {
    if opts.trace.is_some() || opts.stats {
        techlib::obs::enable();
    }
}

/// Writes the trace file and/or prints the stats table. The table goes
/// to **stderr** so `--stats --json` still emits clean JSON on stdout.
/// Called before any non-zero exit so a failing sweep still traces.
fn finish_observability(opts: &Opts) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = &opts.trace {
        std::fs::write(path, techlib::obs::chrome_trace_json())?;
        eprintln!("trace written to {path}");
    }
    if opts.stats {
        eprint!("{}", techlib::obs::stats_table());
    }
    Ok(())
}

/// Package footprint for the `--all` table: the routed interposer area
/// when there is one, otherwise the stacked package outline (the larger
/// chiplet footprint) — never a hardcoded literal. `None` means no
/// usable figure at all and prints as `-`.
fn package_area_mm2(study: &TechStudy) -> Option<f64> {
    if let Some(routing) = &study.routing {
        return Some(routing.area_mm2);
    }
    let area = study
        .logic
        .footprint
        .area_mm2()
        .max(study.memory.footprint.area_mm2());
    (area.is_finite() && area > 0.0).then_some(area)
}

/// Runs a batch of scenarios from a JSON file and prints one line (or
/// one JSON object) per scenario.
fn sweep(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_opts(args, true);
    let [path] = opts.positionals.as_slice() else {
        eprintln!("error: sweep takes exactly one scenario file");
        usage();
    };
    arm_observability(&opts);
    let text = std::fs::read_to_string(path)?;
    let scenarios = scenarios_from_json(&text)?;
    let store = match resolve_cache_dir(&opts.cache_dir) {
        Some(dir) => Some(Arc::new(ArtifactStore::with_disk(dir)?)),
        None => None,
    };
    let outcomes = if opts.sequential {
        codesign::batch::run_sequential_with_store(&scenarios, store)
    } else {
        codesign::batch::run_with_store(&scenarios, store)?
    };
    if opts.json {
        // The serve daemon returns this same renderer's output as its
        // response body, so the two surfaces can never drift apart.
        println!("{}", codesign::batch::sweep_json(&scenarios, &outcomes)?);
    } else {
        println!(
            "{:<24}{:<14}{:>12}{:>10}{:>10}",
            "scenario", "tech", "P_sys mW", "Fmax MHz", "mem °C"
        );
        for (scenario, outcome) in scenarios.iter().zip(&outcomes) {
            match outcome {
                Ok(s) => println!(
                    "{:<24}{:<14}{:>12.1}{:>10.0}{:>10.1}",
                    scenario.name(),
                    s.tech.label(),
                    s.fullchip.total_power_mw,
                    s.fullchip.system_fmax_mhz,
                    s.thermal.mem_peak_c
                ),
                Err(e) => println!(
                    "{:<24}{:<14}error: {e}",
                    scenario.name(),
                    scenario.tech().label()
                ),
            }
        }
    }
    finish_observability(&opts)?;
    if outcomes.iter().any(Result::is_err) {
        std::process::exit(1);
    }
    Ok(())
}

/// Parses one `--flag <n>` numeric value or exits with a usage error.
fn numeric_flag(flag: &str, value: Option<&String>) -> u64 {
    let Some(raw) = value else {
        eprintln!("error: {flag} requires a number");
        usage();
    };
    match raw.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag}: expected a number, got {raw:?}");
            usage();
        }
    }
}

/// Runs the long-lived sweep service until `POST /shutdown` or SIGTERM.
fn serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut config = codesign::serve::ServeConfig::default();
    let mut addr = None;
    let mut obs = Opts::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workers" => config.workers = numeric_flag(arg, iter.next()) as usize,
            "--queue-depth" => config.queue_depth = numeric_flag(arg, iter.next()) as usize,
            "--deadline-ms" => config.default_deadline_ms = Some(numeric_flag(arg, iter.next())),
            "--max-connections" => {
                config.max_connections = numeric_flag(arg, iter.next()) as usize;
            }
            "--header-read-ms" => config.header_read_ms = numeric_flag(arg, iter.next()),
            "--body-read-ms" => config.body_read_ms = numeric_flag(arg, iter.next()),
            "--write-ms" => config.write_ms = numeric_flag(arg, iter.next()),
            "--cache-dir" => match iter.next() {
                Some(dir) => config.cache_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --cache-dir requires a directory");
                    usage();
                }
            },
            "--stats" => obs.stats = true,
            "--trace" => match iter.next() {
                Some(path) => obs.trace = Some(path.clone()),
                None => {
                    eprintln!("error: --trace requires a file path");
                    usage();
                }
            },
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag {other:?}");
                usage();
            }
            other if addr.is_none() => addr = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage();
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("error: serve takes a listen address (e.g. 127.0.0.1:8080)");
        usage();
    };
    if obs.trace.is_none() {
        obs.trace = std::env::var(techlib::obs::TRACE_ENV)
            .ok()
            .filter(|path| !path.is_empty());
    }
    if config.cache_dir.is_none() {
        config.cache_dir = std::env::var(techlib::store::CACHE_DIR_ENV)
            .ok()
            .filter(|dir| !dir.is_empty())
            .map(PathBuf::from);
    }
    arm_observability(&obs);
    let server = codesign::serve::Server::bind(&addr, config)?;
    // Scripts (ci.sh, the load bench) parse this line for the resolved
    // port, so it must hit the pipe before the first request arrives.
    println!("codesign serve listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush()?;
    server.run()?;
    eprintln!("codesign serve drained");
    finish_observability(&obs)
}

fn all(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_opts(args, false);
    if !opts.positionals.is_empty() {
        eprintln!("error: --all takes no further arguments");
        usage();
    }
    arm_observability(&opts);
    let studies = run_all(MonitorLengths::Routed)?;
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&studies)?);
    } else {
        println!(
            "{:<14}{:>10}{:>12}{:>10}{:>10}{:>10}",
            "tech", "area mm²", "P_sys mW", "Fmax MHz", "logic °C", "mem °C"
        );
        for s in &studies {
            let area = match package_area_mm2(s) {
                Some(a) => format!("{a:.2}"),
                None => "-".to_string(),
            };
            println!(
                "{:<14}{:>10}{:>12.1}{:>10.0}{:>10.1}{:>10.1}",
                s.tech.label(),
                area,
                s.fullchip.total_power_mw,
                s.fullchip.system_fmax_mhz,
                s.thermal.logic_peak_c,
                s.thermal.mem_peak_c
            );
        }
    }
    finish_observability(&opts)
}

fn single(tech: InterposerKind, args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_opts(args, false);
    if !opts.positionals.is_empty() {
        eprintln!("error: unexpected argument {:?}", opts.positionals[0]);
        usage();
    }
    arm_observability(&opts);
    let study = run_tech(tech)?;
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&study)?);
    } else {
        println!("=== {} study ===", tech.label());
        println!(
            "logic chiplet : {:.2} mm² @ {:.1}% util, {:.0} MHz, {:.2} mW",
            study.logic.footprint.area_mm2(),
            study.logic.utilization * 100.0,
            study.logic.fmax_mhz,
            study.logic.total_power_mw()
        );
        println!(
            "memory chiplet: {:.2} mm² @ {:.1}% util, {:.0} MHz, {:.2} mW",
            study.memory.footprint.area_mm2(),
            study.memory.utilization * 100.0,
            study.memory.fmax_mhz,
            study.memory.total_power_mw()
        );
        if let Some(r) = &study.routing {
            println!(
                "interposer    : {} + {} layers, {:.1} mm wire, {:.2} mm²",
                r.signal_layers_used, r.pg_layers, r.total_wl_mm, r.area_mm2
            );
        } else {
            println!("interposer    : none (direct 3D stack)");
        }
        println!(
            "links         : L2M {:.2} ps / {:.1} µW, L2L {:.2} ps / {:.1} µW",
            study.links.l2m.interconnect_delay_ps,
            study.links.l2m.total_power_uw(),
            study.links.l2l.interconnect_delay_ps,
            study.links.l2l.total_power_uw()
        );
        println!(
            "full chip     : {:.1} mW, {:.0} MHz pipelined / {:.0} MHz non-pipelined",
            study.fullchip.total_power_mw,
            study.fullchip.system_fmax_mhz,
            study.fullchip.nonpipelined_fmax_mhz
        );
        println!(
            "thermal       : logic {:.1} °C, memory {:.1} °C",
            study.thermal.logic_peak_c, study.thermal.mem_peak_c
        );
    }
    finish_observability(&opts)
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage();
    };
    match command.as_str() {
        "sweep" => sweep(rest),
        "serve" => serve(rest),
        "--all" => all(rest),
        name => match parse_tech(name) {
            Some(tech) => single(tech, rest),
            None => usage(),
        },
    }
}
