//! Scenario-scoped study contexts: the memoized artifact chain that used
//! to live in process-wide statics, now owned per scenario.
//!
//! A [`StudyContext`] owns every cached artifact one scenario's study
//! needs — the netlist front end (design → hierarchical L3 split →
//! chipletized netlists), the per-technology chiplet reports, the routed
//! interposer layouts and the thermal reports. Batch runs build one
//! context per scenario, so nothing a scenario computes (or fails to
//! compute) can leak into another scenario's results.
//!
//! The spec-independent front end is factored into [`FrontEnd`] so
//! *clean* scenarios in a batch can share one split instead of
//! re-partitioning per scenario; everything downstream depends on the
//! scenario's resolved [`InterposerSpec`]s and stays private.
//!
//! [`default_context`] is the lazily-built context for the paper-default
//! configuration. It shares its layout and thermal caches with the
//! legacy [`interposer::report::cached_layout`] /
//! [`thermal::report::analyze_tech`] shims, so the old entry points and
//! the context path never compute the same artifact twice.

use crate::scenario::Scenario;
use crate::FlowError;
use chiplet::report::ChipletReport;
use interposer::report::{InterposerLayout, LayoutCache};
use netlist::chiplet_netlist::ChipletNetlist;
use netlist::design::Design;
use netlist::partition::Partition;
use netlist::serdes::SerdesPlan;
use std::sync::{Arc, OnceLock};
use techlib::memo::ArcMemo;
use techlib::spec::{InterposerKind, InterposerSpec};
use thermal::report::{ThermalCache, ThermalReport};

/// The spec-independent front end of the flow: the two-tile OpenPiton
/// design, its hierarchical L3 split and the chipletized (logic, memory)
/// netlists. None of these depend on an [`InterposerSpec`], so clean
/// scenarios may share one `FrontEnd` through an [`Arc`].
///
/// Only **successes** are memoized: a failure (including one injected at
/// the `partition.split` fault site) is returned to the caller and the
/// next call recomputes, so errors never poison the cache.
#[derive(Debug, Default)]
pub struct FrontEnd {
    design: OnceLock<Arc<Design>>,
    split: ArcMemo<Partition>,
    netlists: ArcMemo<(ChipletNetlist, ChipletNetlist)>,
}

impl FrontEnd {
    /// Creates an empty front end.
    pub const fn new() -> FrontEnd {
        FrontEnd {
            design: OnceLock::new(),
            split: ArcMemo::new(),
            netlists: ArcMemo::new(),
        }
    }

    /// The two-tile OpenPiton-like design (infallible, built once).
    pub fn design(&self) -> Arc<Design> {
        Arc::clone(
            self.design
                .get_or_init(|| Arc::new(netlist::openpiton::two_tile_openpiton())),
        )
    }

    /// The hierarchical L3 split of [`FrontEnd::design`].
    ///
    /// # Errors
    ///
    /// Partitioning failure (not memoized).
    pub fn split(&self) -> Result<Arc<Partition>, FlowError> {
        self.split.get_or_try(|| {
            netlist::partition::hierarchical_l3_split(&self.design()).map_err(FlowError::from)
        })
    }

    /// The chipletized (logic, memory) netlists with the paper's SerDes
    /// plan.
    ///
    /// # Errors
    ///
    /// Partitioning failure (not memoized).
    pub fn chiplet_netlists(&self) -> Result<Arc<(ChipletNetlist, ChipletNetlist)>, FlowError> {
        self.netlists.get_or_try(|| {
            let split = self.split()?;
            Ok(netlist::chiplet_netlist::chipletize(
                &self.design(),
                &split,
                &SerdesPlan::paper(),
            ))
        })
    }

    /// How many hierarchical splits this front end has actually run
    /// (cache hits don't count) — the regression hook for "shared
    /// context means one split".
    pub fn split_compute_count(&self) -> usize {
        self.split.compute_count()
    }

    /// How many chipletizations have actually run.
    pub fn netlists_compute_count(&self) -> usize {
        self.netlists.compute_count()
    }

    /// Forgets the fallible artifacts (the design itself is
    /// deterministic and infallible, so it stays).
    pub fn reset(&self) {
        self.split.reset();
        self.netlists.reset();
    }
}

/// Every memoized artifact one scenario's study needs, resolved against
/// that scenario's overridden specs. Shared by `Arc` between the flow
/// stages and (for the default context) the legacy shims.
#[derive(Debug)]
pub struct StudyContext {
    label: String,
    specs: [InterposerSpec; InterposerKind::COUNT],
    frontend: Arc<FrontEnd>,
    reports: [ArcMemo<(ChipletReport, ChipletReport)>; InterposerKind::COUNT],
    layouts: Arc<LayoutCache>,
    thermal: Arc<ThermalCache>,
}

impl StudyContext {
    /// A fresh context serving the paper-default Table I specs, with
    /// private caches (unlike [`default_context`], which shares its
    /// layout/thermal caches with the legacy shims).
    pub fn paper() -> StudyContext {
        StudyContext::with_parts(
            "paper".to_string(),
            default_specs(),
            Arc::new(FrontEnd::new()),
        )
    }

    /// A private context for `scenario`: its own front end and caches.
    pub fn for_scenario(scenario: &Scenario) -> StudyContext {
        StudyContext::with_parts(
            scenario.name().to_string(),
            scenario_specs(scenario),
            Arc::new(FrontEnd::new()),
        )
    }

    /// A context for `scenario` sharing an existing front end (the batch
    /// engine passes one shared front end to every *clean* scenario; the
    /// spec-dependent caches stay private because each scenario's specs
    /// differ).
    pub fn for_scenario_shared(scenario: &Scenario, frontend: Arc<FrontEnd>) -> StudyContext {
        StudyContext::with_parts(
            scenario.name().to_string(),
            scenario_specs(scenario),
            frontend,
        )
    }

    fn with_parts(
        label: String,
        specs: [InterposerSpec; InterposerKind::COUNT],
        frontend: Arc<FrontEnd>,
    ) -> StudyContext {
        StudyContext {
            label,
            specs,
            frontend,
            reports: [const { ArcMemo::new() }; InterposerKind::COUNT],
            layouts: Arc::new(LayoutCache::new()),
            thermal: Arc::new(ThermalCache::new()),
        }
    }

    /// The context's display label (scenario name, or `"paper"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The resolved design rules this context uses for `tech`.
    pub fn spec(&self, tech: InterposerKind) -> &InterposerSpec {
        &self.specs[tech.index()]
    }

    /// The shared front end (design/split/netlists).
    pub fn frontend(&self) -> &Arc<FrontEnd> {
        &self.frontend
    }

    /// The two-tile OpenPiton-like design.
    pub fn design(&self) -> Arc<Design> {
        self.frontend.design()
    }

    /// The hierarchical L3 split.
    ///
    /// # Errors
    ///
    /// Partitioning failure (not memoized).
    pub fn split(&self) -> Result<Arc<Partition>, FlowError> {
        self.frontend.split()
    }

    /// The chipletized (logic, memory) netlists.
    ///
    /// # Errors
    ///
    /// Partitioning failure (not memoized).
    pub fn chiplet_netlists(&self) -> Result<Arc<(ChipletNetlist, ChipletNetlist)>, FlowError> {
        self.frontend.chiplet_netlists()
    }

    /// The per-technology (logic, memory) chiplet reports (Tables
    /// II/III) against this context's resolved spec.
    ///
    /// # Errors
    ///
    /// Partitioning or placement failure (not memoized).
    pub fn chiplet_reports(
        &self,
        tech: InterposerKind,
    ) -> Result<Arc<(ChipletReport, ChipletReport)>, FlowError> {
        self.reports[tech.index()].get_or_try(|| {
            let netlists = self.frontend.chiplet_netlists()?;
            let (logic_nl, mem_nl) = &*netlists;
            chiplet::report::analyze_pair_with(logic_nl, mem_nl, self.spec(tech))
                .map_err(FlowError::from)
        })
    }

    /// The routed interposer layout for `tech` (Table IV) against this
    /// context's resolved spec.
    ///
    /// # Errors
    ///
    /// Routing failure, or [`FlowError::Route`] with
    /// [`interposer::RouteError::NoInterposer`] for technologies without
    /// a routed interposer.
    pub fn layout(&self, tech: InterposerKind) -> Result<Arc<InterposerLayout>, FlowError> {
        self.layouts
            .layout(self.spec(tech))
            .map_err(FlowError::from)
    }

    /// The thermal report for `tech` (Fig. 17) against this context's
    /// resolved spec.
    ///
    /// # Errors
    ///
    /// Thermal model or solver failure.
    pub fn thermal_report(&self, tech: InterposerKind) -> Result<Arc<ThermalReport>, FlowError> {
        self.thermal
            .analyze(self.spec(tech))
            .map_err(FlowError::from)
    }

    /// Total artifact computations this context has actually run, by
    /// stage — the observability hook the cache-reuse tests and the
    /// sweep bench use.
    pub fn compute_counts(&self) -> ComputeCounts {
        ComputeCounts {
            split: self.frontend.split_compute_count(),
            netlists: self.frontend.netlists_compute_count(),
            reports: self.reports.iter().map(ArcMemo::compute_count).sum(),
            layouts: self.layouts.compute_count(),
            thermal: self.thermal.compute_count(),
        }
    }

    /// Forgets every fallible cached artifact (front end, reports,
    /// layouts, thermal) so the next calls recompute. Outstanding `Arc`
    /// handles stay valid on their own.
    pub fn reset(&self) {
        self.frontend.reset();
        for cell in &self.reports {
            cell.reset();
        }
        self.layouts.reset();
        self.thermal.reset();
    }
}

/// Per-stage computation counters from [`StudyContext::compute_counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeCounts {
    /// Hierarchical L3 splits run.
    pub split: usize,
    /// Chipletizations run.
    pub netlists: usize,
    /// Chiplet-report pairs analyzed.
    pub reports: usize,
    /// Interposer layouts placed and routed.
    pub layouts: usize,
    /// Thermal fields solved.
    pub thermal: usize,
}

impl ComputeCounts {
    /// Sum over all stages.
    pub fn total(&self) -> usize {
        self.split + self.netlists + self.reports + self.layouts + self.thermal
    }
}

fn default_specs() -> [InterposerSpec; InterposerKind::COUNT] {
    InterposerKind::ALL.map(InterposerSpec::for_kind)
}

fn scenario_specs(scenario: &Scenario) -> [InterposerSpec; InterposerKind::COUNT] {
    InterposerKind::ALL.map(|kind| scenario.spec_for(kind))
}

/// The process-wide context for the **paper default** configuration —
/// what the legacy `run_tech` / `table5` / `fullchip` entry points use.
/// Its layout and thermal caches are the same objects behind
/// [`interposer::report::cached_layout`] and
/// [`thermal::report::analyze_tech`], so the legacy shims and the
/// context path share one set of computations.
pub fn default_context() -> Arc<StudyContext> {
    static DEFAULT: OnceLock<Arc<StudyContext>> = OnceLock::new();
    Arc::clone(DEFAULT.get_or_init(|| {
        Arc::new(StudyContext {
            label: "paper".to_string(),
            specs: default_specs(),
            frontend: Arc::new(FrontEnd::new()),
            reports: [const { ArcMemo::new() }; InterposerKind::COUNT],
            layouts: interposer::report::default_layout_cache(),
            thermal: thermal::report::default_thermal_cache(),
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_memoize_within_a_context() {
        let ctx = StudyContext::paper();
        let a = ctx.chiplet_reports(InterposerKind::Glass3D).unwrap();
        let b = ctx.chiplet_reports(InterposerKind::Glass3D).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let counts = ctx.compute_counts();
        assert_eq!(counts.split, 1);
        assert_eq!(counts.netlists, 1);
        assert_eq!(counts.reports, 1);
    }

    #[test]
    fn contexts_are_isolated_but_can_share_a_frontend() {
        let shared = Arc::new(FrontEnd::new());
        let a = StudyContext::for_scenario_shared(
            &Scenario::paper(InterposerKind::Glass25D),
            Arc::clone(&shared),
        );
        let b = StudyContext::for_scenario_shared(
            &Scenario::paper(InterposerKind::Glass3D),
            Arc::clone(&shared),
        );
        let na = a.chiplet_netlists().unwrap();
        let nb = b.chiplet_netlists().unwrap();
        assert!(Arc::ptr_eq(&na, &nb), "one split for clean scenarios");
        assert_eq!(shared.split_compute_count(), 1);
        // Downstream, spec-dependent caches stay private.
        let ra = a.chiplet_reports(InterposerKind::Glass25D).unwrap();
        let rb = b.chiplet_reports(InterposerKind::Glass25D).unwrap();
        assert!(!Arc::ptr_eq(&ra, &rb));
    }

    #[test]
    fn scenario_overrides_reach_the_resolved_specs() {
        let scenario = Scenario::new(
            "wide",
            InterposerKind::Glass25D,
            crate::table5::MonitorLengths::Routed,
            crate::scenario::ScenarioOverrides {
                microbump_pitch_um: Some(70.0),
                ..Default::default()
            },
            Vec::new(),
        )
        .unwrap();
        let ctx = StudyContext::for_scenario(&scenario);
        assert_eq!(ctx.spec(InterposerKind::Glass25D).microbump_pitch_um, 70.0);
        assert_eq!(ctx.label(), "wide");
    }

    #[test]
    fn default_context_shares_the_legacy_layout_cache() {
        let ctx = default_context();
        let via_ctx = ctx.layout(InterposerKind::Glass3D).unwrap();
        let via_shim = interposer::report::cached_layout(InterposerKind::Glass3D).unwrap();
        assert!(
            Arc::ptr_eq(&via_ctx, &via_shim),
            "no double compute between paths"
        );
    }
}
