//! Scenario-scoped study contexts: the memoized artifact chain that used
//! to live in process-wide statics, now owned per scenario.
//!
//! A [`StudyContext`] owns every cached artifact one scenario's study
//! needs — the netlist front end (design → hierarchical L3 split →
//! chipletized netlists), the per-technology chiplet reports, the routed
//! interposer layouts and the thermal reports. Batch runs build one
//! context per scenario, so nothing a scenario computes (or fails to
//! compute) can leak into another scenario's results.
//!
//! The spec-independent front end is factored into [`FrontEnd`] so
//! *clean* scenarios in a batch can share one split instead of
//! re-partitioning per scenario; everything downstream depends on the
//! scenario's resolved [`InterposerSpec`]s and stays private.
//!
//! [`default_context`] is the lazily-built context for the paper-default
//! configuration. It shares its layout and thermal caches with the
//! legacy [`interposer::report::cached_layout`] /
//! [`thermal::report::analyze_tech`] shims, so the old entry points and
//! the context path never compute the same artifact twice.

use crate::scenario::Scenario;
use crate::table5::{MonitorLengths, Table5Row};
use crate::FlowError;
use chiplet::report::ChipletReport;
use interposer::report::{InterposerLayout, LayoutCache};
use netlist::chiplet_netlist::ChipletNetlist;
use netlist::design::Design;
use netlist::partition::Partition;
use netlist::serdes::SerdesPlan;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use techlib::memo::ArcMemo;
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::store::{ArtifactStore, Codec, KeyHasher, StoreKey};
use thermal::report::{ThermalCache, ThermalReport};

/// Algorithm version of the hierarchical-split stage. Bump when the
/// partitioner or the serialized [`Partition`] shape changes.
pub const SPLIT_STAGE_VERSION: u32 = 1;

/// Algorithm version of the chipletize stage. Bump when chipletization
/// or the serialized [`ChipletNetlist`] shape changes.
pub const NETLISTS_STAGE_VERSION: u32 = 1;

fn partition_codec() -> Codec<Partition> {
    Codec {
        encode: |v| serde_json::to_string(v).ok(),
        decode: |s| serde_json::from_str_typed(s).ok(),
    }
}

fn netlists_codec() -> Codec<(ChipletNetlist, ChipletNetlist)> {
    Codec {
        encode: |v| serde_json::to_string(v).ok(),
        decode: |s| serde_json::from_str_typed(s).ok(),
    }
}

fn reports_codec() -> Codec<(ChipletReport, ChipletReport)> {
    Codec {
        encode: |v| serde_json::to_string(v).ok(),
        decode: |s| serde_json::from_str_typed(s).ok(),
    }
}

fn links_codec() -> Codec<Table5Row> {
    Codec {
        encode: |v| serde_json::to_string(v).ok(),
        decode: |s| serde_json::from_str_typed(s).ok(),
    }
}

/// The spec-independent front end of the flow: the two-tile OpenPiton
/// design, its hierarchical L3 split and the chipletized (logic, memory)
/// netlists. None of these depend on an [`InterposerSpec`], so clean
/// scenarios may share one `FrontEnd` through an [`Arc`].
///
/// Only **successes** are memoized: a failure (including one injected at
/// the `partition.split` fault site) is returned to the caller and the
/// next call recomputes, so errors never poison the cache.
#[derive(Debug, Default)]
pub struct FrontEnd {
    design: OnceLock<Arc<Design>>,
    split: ArcMemo<Partition>,
    netlists: ArcMemo<(ChipletNetlist, ChipletNetlist)>,
    store: Option<Arc<ArtifactStore>>,
    split_computes: AtomicUsize,
    netlists_computes: AtomicUsize,
}

impl FrontEnd {
    /// Creates an empty front end with no artifact store behind it.
    pub const fn new() -> FrontEnd {
        FrontEnd {
            design: OnceLock::new(),
            split: ArcMemo::new(),
            netlists: ArcMemo::new(),
            store: None,
            split_computes: AtomicUsize::new(0),
            netlists_computes: AtomicUsize::new(0),
        }
    }

    /// A front end whose split/chipletize artifacts go through `store`
    /// (when one is given) behind the local memo cells, so a second
    /// process — or a second front end over the same `--cache-dir` —
    /// reuses the persisted split instead of re-partitioning.
    pub fn with_store(store: Option<Arc<ArtifactStore>>) -> FrontEnd {
        FrontEnd {
            store,
            ..FrontEnd::new()
        }
    }

    /// The split stage's store key. The front end is spec-independent:
    /// the key covers the (fixed) design identity and the stage version
    /// only, so *every* clean scenario shares one entry.
    pub fn split_key() -> StoreKey {
        let mut h = KeyHasher::new("split", SPLIT_STAGE_VERSION);
        h.field_str("design", "openpiton-2tile");
        h.finish()
    }

    /// The chipletize stage's store key: downstream of the split, plus
    /// the SerDes plan the netlists are built with.
    pub fn netlists_key() -> StoreKey {
        let plan = SerdesPlan::paper();
        let mut h = KeyHasher::new("chiplet_netlists", NETLISTS_STAGE_VERSION);
        h.upstream("split", FrontEnd::split_key());
        h.field_u64("serdes.wires_before", plan.wires_before as u64);
        h.field_u64("serdes.wires_after", plan.wires_after as u64);
        h.field_u64("serdes.added_cycles", plan.added_cycles as u64);
        h.field_u64("serdes.added_cells", plan.added_cells as u64);
        h.finish()
    }

    /// The two-tile OpenPiton-like design (infallible, built once).
    pub fn design(&self) -> Arc<Design> {
        Arc::clone(
            self.design
                .get_or_init(|| Arc::new(netlist::openpiton::two_tile_openpiton())),
        )
    }

    /// The hierarchical L3 split of [`FrontEnd::design`].
    ///
    /// # Errors
    ///
    /// Partitioning failure (not memoized — errors never reach the memo
    /// cell or the store).
    pub fn split(&self) -> Result<Arc<Partition>, FlowError> {
        let compute = || {
            self.split_computes.fetch_add(1, Ordering::Relaxed);
            netlist::partition::hierarchical_l3_split(&self.design()).map_err(FlowError::from)
        };
        match &self.store {
            Some(store) => self.split.get_or_try_arc(|| {
                store
                    .get_or_compute(FrontEnd::split_key(), &partition_codec(), compute)
                    .map(|(v, _)| v)
            }),
            None => self.split.get_or_try_arc(|| compute().map(Arc::new)),
        }
    }

    /// The chipletized (logic, memory) netlists with the paper's SerDes
    /// plan.
    ///
    /// # Errors
    ///
    /// Partitioning failure (not memoized).
    pub fn chiplet_netlists(&self) -> Result<Arc<(ChipletNetlist, ChipletNetlist)>, FlowError> {
        let compute = || {
            let split = self.split()?;
            self.netlists_computes.fetch_add(1, Ordering::Relaxed);
            Ok(netlist::chiplet_netlist::chipletize(
                &self.design(),
                &split,
                &SerdesPlan::paper(),
            ))
        };
        match &self.store {
            Some(store) => self.netlists.get_or_try_arc(|| {
                store
                    .get_or_compute(FrontEnd::netlists_key(), &netlists_codec(), compute)
                    .map(|(v, _)| v)
            }),
            None => self.netlists.get_or_try_arc(|| compute().map(Arc::new)),
        }
    }

    /// How many hierarchical splits this front end has actually run
    /// (cache hits — memo or store — don't count) — the regression hook
    /// for "shared context means one split".
    pub fn split_compute_count(&self) -> usize {
        self.split_computes.load(Ordering::Relaxed)
    }

    /// How many chipletizations have actually run.
    pub fn netlists_compute_count(&self) -> usize {
        self.netlists_computes.load(Ordering::Relaxed)
    }

    /// Forgets the fallible artifacts (the design itself is
    /// deterministic and infallible, so it stays).
    pub fn reset(&self) {
        self.split.reset();
        self.netlists.reset();
    }
}

/// Every memoized artifact one scenario's study needs, resolved against
/// that scenario's overridden specs. Shared by `Arc` between the flow
/// stages and (for the default context) the legacy shims.
#[derive(Debug)]
pub struct StudyContext {
    label: String,
    specs: [InterposerSpec; InterposerKind::COUNT],
    frontend: Arc<FrontEnd>,
    store: Option<Arc<ArtifactStore>>,
    reports: [ArcMemo<(ChipletReport, ChipletReport)>; InterposerKind::COUNT],
    report_computes: AtomicUsize,
    links: [[ArcMemo<Table5Row>; 2]; InterposerKind::COUNT],
    links_computes: AtomicUsize,
    layouts: Arc<LayoutCache>,
    thermal: Arc<ThermalCache>,
}

/// The per-technology links cache slot for a monitored-length mode.
fn mode_slot(mode: MonitorLengths) -> usize {
    match mode {
        MonitorLengths::Routed => 0,
        MonitorLengths::Paper => 1,
    }
}

impl StudyContext {
    /// A fresh context serving the paper-default Table I specs, with
    /// private caches (unlike [`default_context`], which shares its
    /// layout/thermal caches with the legacy shims).
    pub fn paper() -> StudyContext {
        StudyContext::with_parts(
            "paper".to_string(),
            default_specs(),
            Arc::new(FrontEnd::new()),
        )
    }

    /// A private context for `scenario`: its own front end and caches.
    pub fn for_scenario(scenario: &Scenario) -> StudyContext {
        StudyContext::with_parts(
            scenario.name().to_string(),
            scenario_specs(scenario),
            Arc::new(FrontEnd::new()),
        )
    }

    /// A context for `scenario` sharing an existing front end (the batch
    /// engine passes one shared front end to every *clean* scenario; the
    /// spec-dependent caches stay private because each scenario's specs
    /// differ).
    pub fn for_scenario_shared(scenario: &Scenario, frontend: Arc<FrontEnd>) -> StudyContext {
        StudyContext::for_scenario_with(scenario, frontend, None)
    }

    /// [`StudyContext::for_scenario_shared`] with an optional shared
    /// [`ArtifactStore`] behind every spec-dependent cache: scenarios
    /// whose stage keys coincide (same projected spec fields, same
    /// upstream keys) share one computation *across contexts*, and —
    /// when the store has a disk tier — across processes. Pass a store
    /// only for clean scenarios: fault-armed runs must never read from
    /// or write to shared state (the batch layer enforces this).
    pub fn for_scenario_with(
        scenario: &Scenario,
        frontend: Arc<FrontEnd>,
        store: Option<Arc<ArtifactStore>>,
    ) -> StudyContext {
        let mut ctx = StudyContext::with_parts(
            scenario.name().to_string(),
            scenario_specs(scenario),
            frontend,
        );
        ctx.store = store;
        ctx
    }

    fn with_parts(
        label: String,
        specs: [InterposerSpec; InterposerKind::COUNT],
        frontend: Arc<FrontEnd>,
    ) -> StudyContext {
        StudyContext {
            label,
            specs,
            frontend,
            store: None,
            reports: [const { ArcMemo::new() }; InterposerKind::COUNT],
            report_computes: AtomicUsize::new(0),
            links: [const { [const { ArcMemo::new() }; 2] }; InterposerKind::COUNT],
            links_computes: AtomicUsize::new(0),
            layouts: Arc::new(LayoutCache::new()),
            thermal: Arc::new(ThermalCache::new()),
        }
    }

    /// The context's display label (scenario name, or `"paper"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The resolved design rules this context uses for `tech`.
    pub fn spec(&self, tech: InterposerKind) -> &InterposerSpec {
        &self.specs[tech.index()]
    }

    /// The shared front end (design/split/netlists).
    pub fn frontend(&self) -> &Arc<FrontEnd> {
        &self.frontend
    }

    /// The shared artifact store behind this context's caches, when one
    /// was attached at construction.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_deref()
    }

    /// The two-tile OpenPiton-like design.
    pub fn design(&self) -> Arc<Design> {
        self.frontend.design()
    }

    /// The hierarchical L3 split.
    ///
    /// # Errors
    ///
    /// Partitioning failure (not memoized).
    pub fn split(&self) -> Result<Arc<Partition>, FlowError> {
        self.frontend.split()
    }

    /// The chipletized (logic, memory) netlists.
    ///
    /// # Errors
    ///
    /// Partitioning failure (not memoized).
    pub fn chiplet_netlists(&self) -> Result<Arc<(ChipletNetlist, ChipletNetlist)>, FlowError> {
        self.frontend.chiplet_netlists()
    }

    /// The per-technology (logic, memory) chiplet reports (Tables
    /// II/III) against this context's resolved spec.
    ///
    /// # Errors
    ///
    /// Partitioning or placement failure (not memoized).
    pub fn chiplet_reports(
        &self,
        tech: InterposerKind,
    ) -> Result<Arc<(ChipletReport, ChipletReport)>, FlowError> {
        self.reports[tech.index()].get_or_try_arc(|| {
            let netlists = self.frontend.chiplet_netlists()?;
            let compute = || {
                self.report_computes.fetch_add(1, Ordering::Relaxed);
                let (logic_nl, mem_nl) = &*netlists;
                chiplet::report::analyze_pair_with(logic_nl, mem_nl, self.spec(tech))
                    .map_err(FlowError::from)
            };
            match &self.store {
                Some(store) => {
                    let key = chiplet::report::reports_store_key(
                        self.spec(tech),
                        FrontEnd::netlists_key(),
                    );
                    store
                        .get_or_compute(key, &reports_codec(), compute)
                        .map(|(pair, _)| pair)
                }
                None => compute().map(Arc::new),
            }
        })
    }

    /// The routed interposer layout for `tech` (Table IV) against this
    /// context's resolved spec.
    ///
    /// # Errors
    ///
    /// Routing failure, or [`FlowError::Route`] with
    /// [`interposer::RouteError::NoInterposer`] for technologies without
    /// a routed interposer.
    pub fn layout(&self, tech: InterposerKind) -> Result<Arc<InterposerLayout>, FlowError> {
        self.layouts
            .layout_via(self.spec(tech), self.store.as_deref())
            .map_err(FlowError::from)
    }

    /// The Table V link row for `tech` in `mode` — the cached form
    /// behind [`crate::table5::row_in`]. Channel extraction (and with it
    /// the `extract.channels` fault site and any routed-layout pull)
    /// runs on every call; only the transient link simulations are
    /// cached, keyed by the extracted channels and the full resolved
    /// specs of the technologies they terminate on.
    ///
    /// # Errors
    ///
    /// Routing and simulation failures (not memoized).
    pub fn links_row(
        &self,
        tech: InterposerKind,
        mode: MonitorLengths,
    ) -> Result<Arc<Table5Row>, FlowError> {
        let (l2m, l2l) = crate::table5::channels_for_in(self, tech, mode)?;
        let cell = &self.links[tech.index()][mode_slot(mode)];
        let compute = || {
            self.links_computes.fetch_add(1, Ordering::Relaxed);
            crate::table5::simulate_row(self, tech, &l2m, &l2l)
        };
        match &self.store {
            Some(store) => {
                let key = crate::table5::links_store_key(self, tech, &l2m, &l2l);
                cell.get_or_try_arc(|| {
                    store
                        .get_or_compute(key, &links_codec(), compute)
                        .map(|(row, _)| row)
                })
            }
            None => cell.get_or_try_arc(|| compute().map(Arc::new)),
        }
    }

    /// The thermal report for `tech` (Fig. 17) against this context's
    /// resolved spec.
    ///
    /// # Errors
    ///
    /// Thermal model or solver failure.
    pub fn thermal_report(&self, tech: InterposerKind) -> Result<Arc<ThermalReport>, FlowError> {
        self.thermal
            .analyze_via(self.spec(tech), self.store.as_deref())
            .map_err(FlowError::from)
    }

    /// Total artifact computations this context has actually run, by
    /// stage — the observability hook the cache-reuse tests and the
    /// sweep bench use.
    pub fn compute_counts(&self) -> ComputeCounts {
        ComputeCounts {
            split: self.frontend.split_compute_count(),
            netlists: self.frontend.netlists_compute_count(),
            reports: self.report_computes.load(Ordering::Relaxed),
            layouts: self.layouts.compute_count(),
            links: self.links_computes.load(Ordering::Relaxed),
            thermal: self.thermal.compute_count(),
        }
    }

    /// Forgets every fallible cached artifact (front end, reports,
    /// links, layouts, thermal) so the next calls recompute. Outstanding
    /// `Arc` handles stay valid on their own. The shared store, if any,
    /// is deliberately *not* cleared — it may serve other contexts.
    pub fn reset(&self) {
        self.frontend.reset();
        for cell in &self.reports {
            cell.reset();
        }
        for per_tech in &self.links {
            for cell in per_tech {
                cell.reset();
            }
        }
        self.layouts.reset();
        self.thermal.reset();
    }
}

/// Per-stage computation counters from [`StudyContext::compute_counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeCounts {
    /// Hierarchical L3 splits run.
    pub split: usize,
    /// Chipletizations run.
    pub netlists: usize,
    /// Chiplet-report pairs analyzed.
    pub reports: usize,
    /// Interposer layouts placed and routed.
    pub layouts: usize,
    /// Table V link rows simulated.
    pub links: usize,
    /// Thermal fields solved.
    pub thermal: usize,
}

impl ComputeCounts {
    /// Sum over all stages.
    pub fn total(&self) -> usize {
        self.split + self.netlists + self.reports + self.layouts + self.links + self.thermal
    }
}

fn default_specs() -> [InterposerSpec; InterposerKind::COUNT] {
    InterposerKind::ALL.map(InterposerSpec::for_kind)
}

fn scenario_specs(scenario: &Scenario) -> [InterposerSpec; InterposerKind::COUNT] {
    InterposerKind::ALL.map(|kind| scenario.spec_for(kind))
}

/// The process-wide context for the **paper default** configuration —
/// what the legacy `run_tech` / `table5` / `fullchip` entry points use.
/// Its layout and thermal caches are the same objects behind
/// [`interposer::report::cached_layout`] and
/// [`thermal::report::analyze_tech`], so the legacy shims and the
/// context path share one set of computations.
pub fn default_context() -> Arc<StudyContext> {
    static DEFAULT: OnceLock<Arc<StudyContext>> = OnceLock::new();
    Arc::clone(DEFAULT.get_or_init(|| {
        Arc::new(StudyContext {
            label: "paper".to_string(),
            specs: default_specs(),
            frontend: Arc::new(FrontEnd::new()),
            store: None,
            reports: [const { ArcMemo::new() }; InterposerKind::COUNT],
            report_computes: AtomicUsize::new(0),
            links: [const { [const { ArcMemo::new() }; 2] }; InterposerKind::COUNT],
            links_computes: AtomicUsize::new(0),
            layouts: interposer::report::default_layout_cache(),
            thermal: thermal::report::default_thermal_cache(),
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_memoize_within_a_context() {
        let ctx = StudyContext::paper();
        let a = ctx.chiplet_reports(InterposerKind::Glass3D).unwrap();
        let b = ctx.chiplet_reports(InterposerKind::Glass3D).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let counts = ctx.compute_counts();
        assert_eq!(counts.split, 1);
        assert_eq!(counts.netlists, 1);
        assert_eq!(counts.reports, 1);
    }

    #[test]
    fn contexts_are_isolated_but_can_share_a_frontend() {
        let shared = Arc::new(FrontEnd::new());
        let a = StudyContext::for_scenario_shared(
            &Scenario::paper(InterposerKind::Glass25D),
            Arc::clone(&shared),
        );
        let b = StudyContext::for_scenario_shared(
            &Scenario::paper(InterposerKind::Glass3D),
            Arc::clone(&shared),
        );
        let na = a.chiplet_netlists().unwrap();
        let nb = b.chiplet_netlists().unwrap();
        assert!(Arc::ptr_eq(&na, &nb), "one split for clean scenarios");
        assert_eq!(shared.split_compute_count(), 1);
        // Downstream, spec-dependent caches stay private.
        let ra = a.chiplet_reports(InterposerKind::Glass25D).unwrap();
        let rb = b.chiplet_reports(InterposerKind::Glass25D).unwrap();
        assert!(!Arc::ptr_eq(&ra, &rb));
    }

    #[test]
    fn scenario_overrides_reach_the_resolved_specs() {
        let scenario = Scenario::new(
            "wide",
            InterposerKind::Glass25D,
            crate::table5::MonitorLengths::Routed,
            crate::scenario::ScenarioOverrides {
                microbump_pitch_um: Some(70.0),
                ..Default::default()
            },
            Vec::new(),
        )
        .unwrap();
        let ctx = StudyContext::for_scenario(&scenario);
        assert_eq!(ctx.spec(InterposerKind::Glass25D).microbump_pitch_um, 70.0);
        assert_eq!(ctx.label(), "wide");
    }

    #[test]
    fn default_context_shares_the_legacy_layout_cache() {
        let ctx = default_context();
        let via_ctx = ctx.layout(InterposerKind::Glass3D).unwrap();
        let via_shim = interposer::report::cached_layout(InterposerKind::Glass3D).unwrap();
        assert!(
            Arc::ptr_eq(&via_ctx, &via_shim),
            "no double compute between paths"
        );
    }
}
