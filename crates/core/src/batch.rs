//! The batch design-space engine: run many scenarios through one
//! process, in parallel, with per-scenario isolation.
//!
//! Each scenario gets its own [`StudyContext`]; *clean* scenarios (no
//! injected faults) additionally share one [`FrontEnd`], because the
//! design → split → chipletize chain is independent of the interposer
//! spec. Scenarios with fault sites get fully private contexts *and* a
//! thread-scoped fault scope ([`techlib::faults::scoped`]), so an
//! injected failure fires only inside that scenario's worker (and any
//! nested parallelism it spawns) and can never surface in — or poison
//! the caches of — a sibling scenario.
//!
//! [`run`] fans scenarios out across scoped threads with
//! [`crate::exec::ordered_map`]; outcomes come back in input order and
//! are byte-identical to [`run_sequential`] (fixed-seed RNG,
//! order-preserving fan-out, per-scenario state).

use crate::context::{FrontEnd, StudyContext};
use crate::flow::{run_tech_in, TechStudy};
use crate::scenario::Scenario;
use crate::{exec, FlowError};
use std::sync::Arc;
use techlib::store::ArtifactStore;

/// Runs every scenario, in parallel, one [`Result`] per scenario in
/// input order. A scenario's failure is *its own outcome* — it does not
/// abort the batch or disturb sibling scenarios.
///
/// # Errors
///
/// [`FlowError::InvalidConfig`] if `CODESIGN_THREADS` is set to garbage;
/// per-scenario failures are reported inside the returned vector.
pub fn run(scenarios: &[Scenario]) -> Result<Vec<Result<TechStudy, FlowError>>, FlowError> {
    run_with_store(scenarios, None)
}

/// [`run`] with an optional shared [`ArtifactStore`]: clean scenarios
/// whose stage keys coincide share one computation across their
/// contexts (and, with a disk-backed store, across processes). Faulty
/// scenarios never see the store — an injected failure must not read
/// from or write to shared state. Outputs are byte-identical to the
/// store-less path at any worker count.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with_store(
    scenarios: &[Scenario],
    store: Option<Arc<ArtifactStore>>,
) -> Result<Vec<Result<TechStudy, FlowError>>, FlowError> {
    // Surface a malformed CODESIGN_THREADS as a typed error up front.
    techlib::par::try_thread_count()?;
    let contexts = build_contexts(scenarios, store);
    let indices: Vec<usize> = (0..scenarios.len()).collect();
    Ok(exec::ordered_map(&indices, |&i| {
        run_in_context(&contexts[i], &scenarios[i])
    }))
}

/// Sequential reference implementation of [`run`] (same contexts, same
/// sharing, one scenario at a time). Kept callable for benchmarking and
/// the determinism integration test.
pub fn run_sequential(scenarios: &[Scenario]) -> Vec<Result<TechStudy, FlowError>> {
    run_sequential_with_store(scenarios, None)
}

/// Sequential reference implementation of [`run_with_store`].
pub fn run_sequential_with_store(
    scenarios: &[Scenario],
    store: Option<Arc<ArtifactStore>>,
) -> Vec<Result<TechStudy, FlowError>> {
    let contexts = build_contexts(scenarios, store);
    scenarios
        .iter()
        .zip(&contexts)
        .map(|(scenario, ctx)| run_in_context(ctx, scenario))
        .collect()
}

/// One context per scenario: clean scenarios share a front end (and the
/// artifact store, when given), faulty ones are fully private (a shared
/// memo plus an armed `partition.split` fault would make *which*
/// scenario surfaces the fault a race, and a store write from a faulted
/// run could poison every later scenario).
fn build_contexts(scenarios: &[Scenario], store: Option<Arc<ArtifactStore>>) -> Vec<StudyContext> {
    let shared = Arc::new(FrontEnd::with_store(store.clone()));
    scenarios
        .iter()
        .map(|scenario| {
            if scenario.is_clean() {
                StudyContext::for_scenario_with(scenario, Arc::clone(&shared), store.clone())
            } else {
                StudyContext::for_scenario(scenario)
            }
        })
        .collect()
}

/// Renders sweep outcomes as the machine-readable JSON array `codesign
/// sweep --json` prints: one `{"scenario": …, "study": …}` (or
/// `{"scenario": …, "error": …}`) object per scenario, in input order,
/// no trailing newline. The `codesign serve` daemon returns exactly
/// this string as its response body, so the CLI and the service are
/// byte-identical by construction — they share this renderer.
///
/// # Errors
///
/// [`FlowError::InvalidConfig`] if a study fails to serialize (not
/// reachable for any study the flow can actually produce).
pub fn sweep_json(
    scenarios: &[Scenario],
    outcomes: &[Result<TechStudy, FlowError>],
) -> Result<String, FlowError> {
    fn to_json<T: serde::Serialize>(value: &T) -> Result<String, FlowError> {
        serde_json::to_string(value).map_err(|e| FlowError::InvalidConfig {
            reason: format!("sweep serialization: {e}"),
        })
    }
    let mut entries = Vec::with_capacity(scenarios.len());
    for (scenario, outcome) in scenarios.iter().zip(outcomes) {
        let body = match outcome {
            Ok(study) => format!("\"study\":{}", to_json(study)?),
            Err(e) => format!("\"error\":{}", to_json(&e.to_string())?),
        };
        entries.push(format!(
            "{{\"scenario\":{},{body}}}",
            to_json(&scenario.name())?
        ));
    }
    Ok(format!("[{}]", entries.join(",")))
}

/// Runs `scenario` inside `ctx`, arming its fault sites (if any) in a
/// scope local to the calling thread and the workers it spawns.
///
/// # Errors
///
/// Propagates the scenario's flow failure, including injected faults.
pub fn run_in_context(ctx: &StudyContext, scenario: &Scenario) -> Result<TechStudy, FlowError> {
    let _scope = if scenario.is_clean() {
        None
    } else {
        Some(techlib::faults::scoped(
            scenario.fault_sites().iter().cloned(),
        ))
    };
    // One whole-scenario span wrapping the per-stage spans recorded by
    // `run_tech_in` (which installs its own finer-grained label).
    let _label = techlib::obs::label_scope_with(|| scenario.name().to_string());
    let _span = techlib::obs::span("scenario.run");
    run_tech_in(ctx, scenario.tech(), scenario.mode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioOverrides;
    use crate::table5::MonitorLengths;
    use techlib::spec::InterposerKind;

    #[test]
    fn sweep_json_renders_typed_error_rows() {
        let scenarios = vec![Scenario::paper(InterposerKind::Glass3D)];
        let outcomes = vec![Err(FlowError::Deadline {
            stage: "stage.route",
        })];
        let body = sweep_json(&scenarios, &outcomes).unwrap();
        assert_eq!(
            body,
            format!(
                "[{{\"scenario\":\"{}\",\"error\":\"deadline exceeded at stage.route\"}}]",
                scenarios[0].name()
            )
        );
    }

    #[test]
    fn a_faulty_scenario_fails_alone() {
        let scenarios = vec![
            Scenario::paper(InterposerKind::Glass3D),
            Scenario::new(
                "broken-thermal",
                InterposerKind::Glass3D,
                MonitorLengths::Routed,
                ScenarioOverrides::default(),
                vec!["thermal.solve".to_string()],
            )
            .unwrap(),
        ];
        let outcomes = run(&scenarios).unwrap();
        assert!(outcomes[0].is_ok(), "{:?}", outcomes[0]);
        assert!(
            matches!(outcomes[1], Err(FlowError::NoConvergence { .. })),
            "{:?}",
            outcomes[1]
        );
    }

    #[test]
    fn overridden_scenarios_diverge_from_the_paper_point() {
        let scenarios = vec![
            Scenario::paper(InterposerKind::Glass25D),
            Scenario::new(
                "coarse-pitch",
                InterposerKind::Glass25D,
                MonitorLengths::Routed,
                ScenarioOverrides {
                    microbump_pitch_um: Some(55.0),
                    ..Default::default()
                },
                Vec::new(),
            )
            .unwrap(),
        ];
        let outcomes = run_sequential(&scenarios);
        let paper = outcomes[0].as_ref().unwrap();
        let coarse = outcomes[1].as_ref().unwrap();
        assert!(
            coarse.logic.footprint.width_um > paper.logic.footprint.width_um,
            "coarser bumps need a bigger die: {} vs {}",
            coarse.logic.footprint.width_um,
            paper.logic.footprint.width_um
        );
    }
}
