//! Process-wide memoization of the flow's shared front-end artifacts.
//!
//! Every table, figure and bench entry point used to re-derive the same
//! chain — OpenPiton netlist → hierarchical L3 split → chipletized
//! netlists → per-technology chiplet reports — from scratch. This module
//! computes each artifact exactly once per process (the same idea as
//! [`interposer::report::cached_layout`]) and hands out `&'static`
//! references, so `flow::run_tech`, `table5::row`, `fullchip::fullchip`
//! and the bench binaries all share one copy.
//!
//! Concurrency: single artifacts use one `OnceLock` each; the per-tech
//! report pairs use one cell per technology, so parallel studies for
//! different technologies never serialize behind each other. Errors are
//! memoized too (cheaply cloned), keeping retry behaviour deterministic.

use crate::FlowError;
use chiplet::report::ChipletReport;
use netlist::chiplet_netlist::ChipletNetlist;
use netlist::design::Design;
use netlist::partition::Partition;
use netlist::serdes::SerdesPlan;
use std::sync::OnceLock;
use techlib::spec::InterposerKind;

/// The two-tile OpenPiton-like design (netlist front end input).
pub fn design() -> &'static Design {
    static DESIGN: OnceLock<Design> = OnceLock::new();
    DESIGN.get_or_init(netlist::openpiton::two_tile_openpiton)
}

/// The hierarchical L3 split of [`design`].
///
/// # Errors
///
/// Memoized partitioning failure.
pub fn split() -> Result<&'static Partition, FlowError> {
    static SPLIT: OnceLock<Result<Partition, FlowError>> = OnceLock::new();
    SPLIT
        .get_or_init(|| {
            netlist::partition::hierarchical_l3_split(design()).map_err(FlowError::from)
        })
        .as_ref()
        .map_err(Clone::clone)
}

/// The chipletized (logic, memory) netlists with the paper's SerDes plan.
///
/// # Errors
///
/// Memoized partitioning failure.
pub fn chiplet_netlists() -> Result<&'static (ChipletNetlist, ChipletNetlist), FlowError> {
    static NETLISTS: OnceLock<Result<(ChipletNetlist, ChipletNetlist), FlowError>> =
        OnceLock::new();
    NETLISTS
        .get_or_init(|| {
            let split = split()?;
            Ok(netlist::chiplet_netlist::chipletize(
                design(),
                split,
                &SerdesPlan::paper(),
            ))
        })
        .as_ref()
        .map_err(Clone::clone)
}

/// The per-technology (logic, memory) chiplet reports (Tables II/III).
///
/// One cache cell per technology: first calls for different technologies
/// compute concurrently, repeat calls are lock-free reads.
///
/// # Errors
///
/// Memoized partitioning failure.
pub fn chiplet_reports(
    tech: InterposerKind,
) -> Result<&'static (ChipletReport, ChipletReport), FlowError> {
    static CELLS: [OnceLock<Result<(ChipletReport, ChipletReport), FlowError>>;
        InterposerKind::COUNT] = [const { OnceLock::new() }; InterposerKind::COUNT];
    CELLS[tech.index()]
        .get_or_init(|| {
            let (logic_nl, mem_nl) = chiplet_netlists()?;
            Ok(chiplet::report::analyze_pair(logic_nl, mem_nl, tech))
        })
        .as_ref()
        .map_err(Clone::clone)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_shared_by_address() {
        // Two calls return the same &'static — the second is a cache hit.
        assert!(std::ptr::eq(design(), design()));
        assert!(std::ptr::eq(split().unwrap(), split().unwrap()));
        assert!(std::ptr::eq(
            chiplet_netlists().unwrap(),
            chiplet_netlists().unwrap()
        ));
        let a = chiplet_reports(InterposerKind::Glass25D).unwrap();
        let b = chiplet_reports(InterposerKind::Glass25D).unwrap();
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn cached_artifacts_match_a_fresh_derivation() {
        let fresh_design = netlist::openpiton::two_tile_openpiton();
        let fresh_split = netlist::partition::hierarchical_l3_split(&fresh_design).unwrap();
        let (fresh_logic, fresh_mem) =
            netlist::chiplet_netlist::chipletize(&fresh_design, &fresh_split, &SerdesPlan::paper());
        let (logic_nl, mem_nl) = chiplet_netlists().unwrap();
        assert_eq!(logic_nl.signal_pins, fresh_logic.signal_pins);
        assert_eq!(mem_nl.signal_pins, fresh_mem.signal_pins);
        let (logic, memory) = chiplet_reports(InterposerKind::Glass3D).unwrap();
        let (fl, fm) =
            chiplet::report::analyze_pair(&fresh_logic, &fresh_mem, InterposerKind::Glass3D);
        assert_eq!(logic.footprint_mm, fl.footprint_mm);
        assert_eq!(memory.fmax_mhz, fm.fmax_mhz);
        assert_eq!(logic.wirelength_m, fl.wirelength_m);
    }

    #[test]
    fn reports_cover_all_packaged_techs() {
        for tech in InterposerKind::PACKAGED {
            let (logic, memory) = chiplet_reports(tech).unwrap();
            assert!(logic.fmax_mhz > 0.0, "{tech}");
            assert!(memory.fmax_mhz > 0.0, "{tech}");
        }
    }
}
