//! Legacy shim over the **default** study context's front-end artifacts.
//!
//! The process-wide `static` memo cells that used to live here are gone;
//! every cached artifact is now owned by a [`crate::context::StudyContext`]
//! (one per scenario — see [`crate::batch`]). These free functions keep
//! the old call sites working by delegating to
//! [`crate::context::default_context`], the shared context for the
//! paper-default configuration, and now hand out [`Arc`] handles instead
//! of `&'static` references.
//!
//! Concurrency and failure semantics are unchanged: artifacts are
//! computed once per context, only **successes** are memoized, and the
//! per-technology report cells never serialize different technologies
//! behind each other.

use crate::context::default_context;
use crate::FlowError;
use chiplet::report::ChipletReport;
use netlist::chiplet_netlist::ChipletNetlist;
use netlist::design::Design;
use netlist::partition::Partition;
use std::sync::Arc;
use techlib::spec::InterposerKind;

/// The two-tile OpenPiton-like design (netlist front end input).
pub fn design() -> Arc<Design> {
    default_context().design()
}

/// The hierarchical L3 split of [`design`].
///
/// # Errors
///
/// Partitioning failure (recomputed on the next call — only successes
/// are memoized).
pub fn split() -> Result<Arc<Partition>, FlowError> {
    default_context().split()
}

/// The chipletized (logic, memory) netlists with the paper's SerDes plan.
///
/// # Errors
///
/// Partitioning failure (not memoized).
pub fn chiplet_netlists() -> Result<Arc<(ChipletNetlist, ChipletNetlist)>, FlowError> {
    default_context().chiplet_netlists()
}

/// The per-technology (logic, memory) chiplet reports (Tables II/III).
///
/// # Errors
///
/// Partitioning or placement failure (not memoized).
pub fn chiplet_reports(
    tech: InterposerKind,
) -> Result<Arc<(ChipletReport, ChipletReport)>, FlowError> {
    default_context().chiplet_reports(tech)
}

/// Forgets every fallible cached artifact of the default context —
/// including the layout and thermal caches it shares with the
/// [`interposer::report::cached_layout`] /
/// [`thermal::report::analyze_tech`] shims — so the next calls recompute
/// from scratch. Test-only escape hatch used by the fault-injection
/// suite; outstanding [`Arc`] handles stay valid on their own.
pub fn reset_for_tests() {
    default_context().reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::serdes::SerdesPlan;

    #[test]
    fn artifacts_are_shared_by_handle() {
        // Two calls return the same Arc — the second is a cache hit.
        assert!(Arc::ptr_eq(&design(), &design()));
        assert!(Arc::ptr_eq(&split().unwrap(), &split().unwrap()));
        assert!(Arc::ptr_eq(
            &chiplet_netlists().unwrap(),
            &chiplet_netlists().unwrap()
        ));
        let a = chiplet_reports(InterposerKind::Glass25D).unwrap();
        let b = chiplet_reports(InterposerKind::Glass25D).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cached_artifacts_match_a_fresh_derivation() {
        let fresh_design = netlist::openpiton::two_tile_openpiton();
        let fresh_split = netlist::partition::hierarchical_l3_split(&fresh_design).unwrap();
        let (fresh_logic, fresh_mem) =
            netlist::chiplet_netlist::chipletize(&fresh_design, &fresh_split, &SerdesPlan::paper());
        let netlists = chiplet_netlists().unwrap();
        let (logic_nl, mem_nl) = &*netlists;
        assert_eq!(logic_nl.signal_pins, fresh_logic.signal_pins);
        assert_eq!(mem_nl.signal_pins, fresh_mem.signal_pins);
        let pair = chiplet_reports(InterposerKind::Glass3D).unwrap();
        let (logic, memory) = &*pair;
        let (fl, fm) =
            chiplet::report::analyze_pair(&fresh_logic, &fresh_mem, InterposerKind::Glass3D)
                .unwrap();
        assert_eq!(logic.footprint_mm, fl.footprint_mm);
        assert_eq!(memory.fmax_mhz, fm.fmax_mhz);
        assert_eq!(logic.wirelength_m, fl.wirelength_m);
    }

    #[test]
    fn reports_cover_all_packaged_techs() {
        for tech in InterposerKind::PACKAGED {
            let pair = chiplet_reports(tech).unwrap();
            let (logic, memory) = &*pair;
            assert!(logic.fmax_mhz > 0.0, "{tech}");
            assert!(memory.fmax_mhz > 0.0, "{tech}");
        }
    }
}
