//! Process-wide memoization of the flow's shared front-end artifacts.
//!
//! Every table, figure and bench entry point used to re-derive the same
//! chain — OpenPiton netlist → hierarchical L3 split → chipletized
//! netlists → per-technology chiplet reports — from scratch. This module
//! computes each artifact exactly once per process (the same idea as
//! [`interposer::report::cached_layout`]) and hands out `&'static`
//! references, so `flow::run_tech`, `table5::row`, `fullchip::fullchip`
//! and the bench binaries all share one copy.
//!
//! Concurrency: the infallible [`design`] uses a `OnceLock`; the fallible
//! artifacts use [`techlib::memo::MemoCell`], which memoizes **successes
//! only** — an error is returned to the caller and the next call
//! recomputes, so a transient or injected failure never poisons the
//! cache for the rest of the process. The per-tech report pairs use one
//! cell per technology, so parallel studies for different technologies
//! never serialize behind each other.

use crate::FlowError;
use chiplet::report::ChipletReport;
use netlist::chiplet_netlist::ChipletNetlist;
use netlist::design::Design;
use netlist::partition::Partition;
use netlist::serdes::SerdesPlan;
use std::sync::OnceLock;
use techlib::memo::MemoCell;
use techlib::spec::InterposerKind;

/// The two-tile OpenPiton-like design (netlist front end input).
pub fn design() -> &'static Design {
    static DESIGN: OnceLock<Design> = OnceLock::new();
    DESIGN.get_or_init(netlist::openpiton::two_tile_openpiton)
}

static SPLIT: MemoCell<Partition> = MemoCell::new();
static NETLISTS: MemoCell<(ChipletNetlist, ChipletNetlist)> = MemoCell::new();
static REPORTS: [MemoCell<(ChipletReport, ChipletReport)>; InterposerKind::COUNT] =
    [const { MemoCell::new() }; InterposerKind::COUNT];

/// The hierarchical L3 split of [`design`].
///
/// # Errors
///
/// Partitioning failure (recomputed on the next call — only successes
/// are memoized).
pub fn split() -> Result<&'static Partition, FlowError> {
    SPLIT
        .get_or_try(|| netlist::partition::hierarchical_l3_split(design()).map_err(FlowError::from))
}

/// The chipletized (logic, memory) netlists with the paper's SerDes plan.
///
/// # Errors
///
/// Partitioning failure (not memoized).
pub fn chiplet_netlists() -> Result<&'static (ChipletNetlist, ChipletNetlist), FlowError> {
    NETLISTS.get_or_try(|| {
        let split = split()?;
        Ok(netlist::chiplet_netlist::chipletize(
            design(),
            split,
            &SerdesPlan::paper(),
        ))
    })
}

/// The per-technology (logic, memory) chiplet reports (Tables II/III).
///
/// One cache cell per technology: first calls for different technologies
/// compute concurrently, repeat calls are lock-free reads.
///
/// # Errors
///
/// Partitioning or placement failure (not memoized).
pub fn chiplet_reports(
    tech: InterposerKind,
) -> Result<&'static (ChipletReport, ChipletReport), FlowError> {
    REPORTS[tech.index()].get_or_try(|| {
        let (logic_nl, mem_nl) = chiplet_netlists()?;
        chiplet::report::analyze_pair(logic_nl, mem_nl, tech).map_err(FlowError::from)
    })
}

/// Forgets every fallible cached artifact in this crate *and* the
/// downstream layout/thermal caches, so the next calls recompute from
/// scratch. Test-only escape hatch used by the fault-injection suite to
/// prove that a failed run leaves no stale state behind (cached values
/// are leaked, keeping outstanding `&'static` borrows valid).
pub fn reset_for_tests() {
    SPLIT.reset();
    NETLISTS.reset();
    for cell in &REPORTS {
        cell.reset();
    }
    interposer::report::reset_layout_cache_for_tests();
    thermal::report::reset_report_cache_for_tests();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_are_shared_by_address() {
        // Two calls return the same &'static — the second is a cache hit.
        assert!(std::ptr::eq(design(), design()));
        assert!(std::ptr::eq(split().unwrap(), split().unwrap()));
        assert!(std::ptr::eq(
            chiplet_netlists().unwrap(),
            chiplet_netlists().unwrap()
        ));
        let a = chiplet_reports(InterposerKind::Glass25D).unwrap();
        let b = chiplet_reports(InterposerKind::Glass25D).unwrap();
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn cached_artifacts_match_a_fresh_derivation() {
        let fresh_design = netlist::openpiton::two_tile_openpiton();
        let fresh_split = netlist::partition::hierarchical_l3_split(&fresh_design).unwrap();
        let (fresh_logic, fresh_mem) =
            netlist::chiplet_netlist::chipletize(&fresh_design, &fresh_split, &SerdesPlan::paper());
        let (logic_nl, mem_nl) = chiplet_netlists().unwrap();
        assert_eq!(logic_nl.signal_pins, fresh_logic.signal_pins);
        assert_eq!(mem_nl.signal_pins, fresh_mem.signal_pins);
        let (logic, memory) = chiplet_reports(InterposerKind::Glass3D).unwrap();
        let (fl, fm) =
            chiplet::report::analyze_pair(&fresh_logic, &fresh_mem, InterposerKind::Glass3D)
                .unwrap();
        assert_eq!(logic.footprint_mm, fl.footprint_mm);
        assert_eq!(memory.fmax_mhz, fm.fmax_mhz);
        assert_eq!(logic.wirelength_m, fl.wirelength_m);
    }

    #[test]
    fn reports_cover_all_packaged_techs() {
        for tech in InterposerKind::PACKAGED {
            let (logic, memory) = chiplet_reports(tech).unwrap();
            assert!(logic.fmax_mhz > 0.0, "{tech}");
            assert!(memory.fmax_mhz > 0.0, "{tech}");
        }
    }
}
