//! Table V assembly: worst-net link delay and power per technology.
//!
//! Each technology contributes two monitored links — the worst
//! logic-to-memory (intra-tile) and logic-to-logic (inter-tile)
//! connection. Lengths come either from our own routed layouts
//! (self-consistent mode) or from the paper's monitored nets (for direct
//! Table V comparison). The `_in` forms take an explicit
//! [`StudyContext`], so scenario overrides reach the channel geometry
//! and the link decks; the historical forms delegate to the shared
//! default context.

use crate::context::{default_context, StudyContext};
use crate::FlowError;
use interposer::diemap::NetClass;
use serde::{Deserialize, Serialize};
use si::link::{simulate_link_with, ChannelKind, LinkReport};
use techlib::spec::{InterposerKind, Stacking};
use techlib::store::{hash_spec_field, KeyHasher, SpecField, StoreKey};

/// Where the monitored net lengths come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MonitorLengths {
    /// Worst nets of our own routed interposers.
    Routed,
    /// The paper's monitored net lengths (Table V "WL" column).
    Paper,
}

/// One Table V row (one technology, both link classes).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    /// Technology.
    pub tech: InterposerKind,
    /// Logic-to-memory link.
    pub l2m: LinkReport,
    /// Logic-to-logic link.
    pub l2l: LinkReport,
}

/// Paper Table V monitored wirelengths, µm: (L2M, L2L).
pub fn paper_lengths(tech: InterposerKind) -> Option<(f64, f64)> {
    match tech {
        InterposerKind::Glass25D => Some((5_980.0, 1_794.0)),
        InterposerKind::Glass3D => Some((65.0, 582.0)),
        InterposerKind::Silicon25D => Some((1_952.0, 1_063.0)),
        InterposerKind::Shinko => Some((3_700.0, 2_600.0)),
        InterposerKind::Apx => Some((5_900.0, 3_500.0)),
        _ => None,
    }
}

/// The two channels monitored for `tech` (default context).
///
/// # Errors
///
/// Propagates routing failures in [`MonitorLengths::Routed`] mode.
pub fn channels_for(
    tech: InterposerKind,
    mode: MonitorLengths,
) -> Result<(ChannelKind, ChannelKind), FlowError> {
    channels_for_in(&default_context(), tech, mode)
}

/// The two channels monitored for `tech`, with routed lengths and
/// stacking taken from `ctx`'s resolved spec and layout cache.
///
/// # Errors
///
/// Propagates routing failures in [`MonitorLengths::Routed`] mode.
pub fn channels_for_in(
    ctx: &StudyContext,
    tech: InterposerKind,
    mode: MonitorLengths,
) -> Result<(ChannelKind, ChannelKind), FlowError> {
    if techlib::faults::armed("extract.channels") {
        // Injected fault: report the monitored-net extraction as a deck
        // parse failure, the shape a malformed channel table produces.
        return Err(FlowError::Parse(circuit::parser::ParseError {
            line: 0,
            reason: format!("injected channel-extraction fault for {tech}"),
        }));
    }
    match ctx.spec(tech).stacking {
        Stacking::TsvStack => Ok((ChannelKind::MicroBump, ChannelKind::BackToBackTsv)),
        Stacking::Embedded => {
            let l2l_len = match mode {
                MonitorLengths::Paper => {
                    let Some((_, l2l)) = paper_lengths(tech) else {
                        return Err(FlowError::InvalidConfig {
                            reason: format!("no paper Table V lengths for {tech}"),
                        });
                    };
                    l2l
                }
                MonitorLengths::Routed => ctx.layout(tech)?.worst_net_um(NetClass::InterTile),
            };
            Ok((
                ChannelKind::StackedViaColumn { levels: 3 },
                ChannelKind::RdlTrace {
                    tech,
                    length_um: l2l_len,
                },
            ))
        }
        Stacking::SideBySide => {
            let (l2m, l2l) = match mode {
                MonitorLengths::Paper => {
                    let Some(lens) = paper_lengths(tech) else {
                        return Err(FlowError::InvalidConfig {
                            reason: format!("no paper Table V lengths for {tech}"),
                        });
                    };
                    lens
                }
                MonitorLengths::Routed => {
                    let layout = ctx.layout(tech)?;
                    (
                        layout.worst_net_um(NetClass::IntraTileLateral),
                        layout.worst_net_um(NetClass::InterTile),
                    )
                }
            };
            Ok((
                ChannelKind::RdlTrace {
                    tech,
                    length_um: l2m,
                },
                ChannelKind::RdlTrace {
                    tech,
                    length_um: l2l,
                },
            ))
        }
        Stacking::Monolithic => Err(FlowError::Route(interposer::RouteError::NoInterposer(tech))),
    }
}

/// Algorithm version of the SI-links stage (deck construction, transient
/// settings, delay/power extraction). Bump whenever any of those — or
/// the serialized shape of [`Table5Row`] — changes.
pub const LINKS_STAGE_VERSION: u32 = 1;

/// Hashes one monitored channel into a links stage key: the channel
/// descriptor itself (which already embeds any routed worst-net length,
/// subsuming the layout upstream key) plus the **full** resolved spec of
/// the technology the channel terminates on — the transient deck reads
/// wire geometry, dielectric properties, loss tangent and bump/via
/// dimensions, so no narrower projection is sound here.
fn hash_channel(h: &mut KeyHasher, label: &str, channel: &ChannelKind, ctx: &StudyContext) {
    match channel {
        ChannelKind::RdlTrace { tech, length_um } => {
            h.field_str(&format!("{label}.channel"), "rdl_trace");
            h.field_str(&format!("{label}.tech"), &format!("{tech:?}"));
            h.field_f64(&format!("{label}.length_um"), *length_um);
        }
        ChannelKind::StackedViaColumn { levels } => {
            h.field_str(&format!("{label}.channel"), "stacked_via_column");
            h.field_u64(&format!("{label}.levels"), *levels as u64);
        }
        ChannelKind::MicroBump => {
            h.field_str(&format!("{label}.channel"), "microbump");
        }
        ChannelKind::BackToBackTsv => {
            h.field_str(&format!("{label}.channel"), "back_to_back_tsv");
        }
    }
    let spec = ctx.spec(channel.tech());
    for field in SpecField::ALL {
        hash_spec_field(h, spec, field);
    }
}

/// The links stage's store key for one row: the row technology and both
/// extracted channels (with the full specs they are simulated against).
/// The monitored-length mode is *not* hashed separately — its entire
/// effect is the lengths already inside the channel descriptors, so the
/// two modes share one entry whenever they extract identical channels
/// (as on Silicon 3D, whose channels carry no length at all).
pub fn links_store_key(
    ctx: &StudyContext,
    tech: InterposerKind,
    l2m: &ChannelKind,
    l2l: &ChannelKind,
) -> StoreKey {
    let mut h = KeyHasher::new("si_links", LINKS_STAGE_VERSION);
    h.field_str("tech", &format!("{tech:?}"));
    hash_channel(&mut h, "l2m", l2m, ctx);
    hash_channel(&mut h, "l2l", l2l, ctx);
    h.finish()
}

/// The uncached link-row computation: simulates both extracted channels
/// against the specs of the technologies they terminate on. The cached
/// entry point wrapping this is [`StudyContext::links_row`].
///
/// # Errors
///
/// Propagates simulation failures.
pub(crate) fn simulate_row(
    ctx: &StudyContext,
    tech: InterposerKind,
    l2m: &ChannelKind,
    l2l: &ChannelKind,
) -> Result<Table5Row, FlowError> {
    let l2m = simulate_link_with(l2m, ctx.spec(l2m.tech()))?;
    let l2l = simulate_link_with(l2l, ctx.spec(l2l.tech()))?;
    Ok(Table5Row { tech, l2m, l2l })
}

/// Builds one Table V row against the default context.
///
/// # Errors
///
/// Propagates routing and simulation failures.
pub fn row(tech: InterposerKind, mode: MonitorLengths) -> Result<Table5Row, FlowError> {
    row_in(&default_context(), tech, mode)
}

/// Builds one Table V row against an explicit context: each link is
/// simulated with the spec of the channel's own technology as resolved
/// by `ctx` (scenario overrides reach the RLGC extraction and the bump
/// models). Rows are memoized per (technology, mode) in `ctx` — and
/// shared through its artifact store when one is attached.
///
/// # Errors
///
/// Propagates routing and simulation failures.
pub fn row_in(
    ctx: &StudyContext,
    tech: InterposerKind,
    mode: MonitorLengths,
) -> Result<Table5Row, FlowError> {
    ctx.links_row(tech, mode).map(|row| (*row).clone())
}

/// Builds the whole Table V (all six packaged technologies), simulating
/// the independent per-technology rows in parallel; rows come back in
/// `PACKAGED` order.
///
/// # Errors
///
/// Propagates per-row failures (first failing technology in `PACKAGED`
/// order).
pub fn table5(mode: MonitorLengths) -> Result<Vec<Table5Row>, FlowError> {
    let ctx = default_context();
    crate::exec::try_ordered_map(&InterposerKind::PACKAGED, |&tech| row_in(&ctx, tech, mode))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mode_reproduces_table5_orderings() {
        let rows = table5(MonitorLengths::Paper).unwrap();
        let get = |t: InterposerKind| rows.iter().find(|r| r.tech == t).unwrap();
        let si3d = get(InterposerKind::Silicon3D);
        let g3 = get(InterposerKind::Glass3D);
        let si25 = get(InterposerKind::Silicon25D);
        let g25 = get(InterposerKind::Glass25D);
        let shinko = get(InterposerKind::Shinko);
        let apx = get(InterposerKind::Apx);

        // L2M delay: Si3D < Glass3D < everything lateral.
        assert!(si3d.l2m.interconnect_delay_ps < g3.l2m.interconnect_delay_ps);
        for lateral in [si25, g25, shinko, apx] {
            assert!(
                g3.l2m.interconnect_delay_ps < lateral.l2m.interconnect_delay_ps,
                "{}",
                lateral.tech
            );
        }
        // Glass's thick copper beats silicon per millimetre (the paper's
        // absolute inversion at 3x length rests on a glass delay value
        // that implies super-dielectric propagation; see EXPERIMENTS.md).
        assert!(
            g25.l2m.interconnect_delay_ps / g25.l2m.length_um
                < si25.l2m.interconnect_delay_ps / si25.l2m.length_um
        );
        // L2L delay: Si3D best.
        for other in [g3, si25, g25, shinko, apx] {
            assert!(
                si3d.l2l.interconnect_delay_ps <= other.l2l.interconnect_delay_ps,
                "{}",
                other.tech
            );
        }
        // Organic interposers carry the highest L2M power.
        assert!(apx.l2m.total_power_uw() > si3d.l2m.total_power_uw() * 3.0);
    }

    #[test]
    fn routed_mode_glass_beats_silicon_absolutely() {
        // With our own routed worst nets, the absolute L2M ordering of
        // Table V holds directly.
        let rows = table5(MonitorLengths::Routed).unwrap();
        let get = |t: InterposerKind| rows.iter().find(|r| r.tech == t).unwrap();
        let g25 = get(InterposerKind::Glass25D);
        let si25 = get(InterposerKind::Silicon25D);
        assert!(
            g25.l2m.interconnect_delay_ps < si25.l2m.interconnect_delay_ps,
            "{} vs {}",
            g25.l2m.interconnect_delay_ps,
            si25.l2m.interconnect_delay_ps
        );
    }

    #[test]
    fn routed_mode_produces_all_rows() {
        let rows = table5(MonitorLengths::Routed).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.l2m.total_delay_ps() > 0.0, "{}", r.tech);
            assert!(r.l2l.total_power_uw() > 0.0, "{}", r.tech);
        }
    }

    #[test]
    fn paper_lengths_cover_exactly_the_five_interposer_techs() {
        let covered = InterposerKind::PACKAGED
            .iter()
            .filter(|&&t| paper_lengths(t).is_some())
            .count();
        assert_eq!(covered, 5);
        assert!(paper_lengths(InterposerKind::Monolithic2D).is_none());
    }
}
