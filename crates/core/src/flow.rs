//! One-call end-to-end study per technology.
//!
//! [`run_tech_in`] runs the flow against an explicit
//! [`StudyContext`] — the scenario-scoped form the batch engine uses.
//! The historical entry points ([`run_tech`], [`run_all`], …) delegate
//! to the shared [`crate::context::default_context`], so they keep their
//! signatures and their byte-identical outputs.

use crate::context::{default_context, StudyContext};
use crate::fullchip::{rollup, FullChipReport};
use crate::scenario::Scenario;
use crate::table5::{row_in, MonitorLengths, Table5Row};
use crate::{batch, exec, FlowError};
use chiplet::report::ChipletReport;
use interposer::stats::RoutingStats;
use serde::Serialize;
use techlib::spec::{InterposerKind, Stacking};
use thermal::report::ThermalReport;

/// Everything the study produces for one technology.
#[derive(Debug, Clone, Serialize)]
pub struct TechStudy {
    /// Technology.
    pub tech: InterposerKind,
    /// Logic-chiplet physical design (Table III).
    pub logic: ChipletReport,
    /// Memory-chiplet physical design (Table III).
    pub memory: ChipletReport,
    /// Interposer routing statistics (Table IV), if the technology has a
    /// routed interposer.
    pub routing: Option<RoutingStats>,
    /// Worst-net link analysis (Table V).
    pub links: Table5Row,
    /// Full-chip roll-up (Table IV power row, Section VII-H timing).
    pub fullchip: FullChipReport,
    /// Thermal peaks (Fig. 17).
    pub thermal: ThermalReport,
}

/// Runs the complete co-design flow for `tech` using our own routed
/// layouts as the monitored nets.
///
/// # Errors
///
/// Propagates netlist, routing and simulation failures.
pub fn run_tech(tech: InterposerKind) -> Result<TechStudy, FlowError> {
    run_tech_with(tech, MonitorLengths::Routed)
}

/// Runs the flow with an explicit monitored-net mode, against the
/// shared default (paper-configuration) context.
///
/// # Errors
///
/// Propagates netlist, routing and simulation failures.
pub fn run_tech_with(tech: InterposerKind, mode: MonitorLengths) -> Result<TechStudy, FlowError> {
    run_tech_in(&default_context(), tech, mode)
}

/// Runs the flow for `tech` against an explicit study context — the
/// scenario-scoped form. Every artifact (chiplet reports, routed
/// layout, link channels, thermal field) comes from `ctx`'s caches and
/// resolved specs.
///
/// # Errors
///
/// Propagates netlist, routing and simulation failures.
pub fn run_tech_in(
    ctx: &StudyContext,
    tech: InterposerKind,
    mode: MonitorLengths,
) -> Result<TechStudy, FlowError> {
    // Observability: attribute every span below to this (scenario, tech)
    // pair, and walk the memoized front-end chain stage by stage so each
    // run records one span per stage even when the artifact is a cache
    // hit. The explicit walk is semantically identical to letting
    // `chiplet_reports` pull the chain in — same memo cells, same error
    // propagation order (split before chipletize before placement).
    //
    // Each stage opens with a cooperative cancellation poll
    // (`techlib::cancel::check`): outside a deadline scope the poll is a
    // free no-op, inside one (the `codesign serve` request path) an
    // expired deadline abandons the run *between* stages, so memoized
    // artifacts are always either absent or complete.
    let _label = techlib::obs::label_scope_with(|| format!("{}:{}", ctx.label(), tech.label()));
    {
        techlib::cancel::check("stage.design")?;
        let _span = techlib::obs::span("stage.design");
        ctx.design();
    }
    {
        techlib::cancel::check("stage.split")?;
        let _span = techlib::obs::span("stage.split");
        ctx.split()?;
    }
    {
        techlib::cancel::check("stage.chipletize")?;
        let _span = techlib::obs::span("stage.chipletize");
        ctx.chiplet_netlists()?;
    }
    let reports = {
        techlib::cancel::check("stage.chiplet_reports")?;
        let _span = techlib::obs::span("stage.chiplet_reports");
        ctx.chiplet_reports(tech)?
    };
    let (logic, memory) = &*reports;
    let routing = if matches!(
        ctx.spec(tech).stacking,
        Stacking::TsvStack | Stacking::Monolithic
    ) {
        None
    } else {
        techlib::cancel::check("stage.route")?;
        let _span = techlib::obs::span("stage.route");
        Some(ctx.layout(tech)?.stats.clone())
    };
    // The link transients and the thermal solve touch no shared state, so
    // they overlap when a worker is free. Error priority mirrors the
    // sequential statement order: links first, then thermal.
    let (links, thermal) = exec::join(
        || {
            techlib::cancel::check("stage.si_links")?;
            let _span = techlib::obs::span("stage.si_links");
            row_in(ctx, tech, mode)
        },
        || {
            techlib::cancel::check("stage.thermal")?;
            let _span = techlib::obs::span("stage.thermal");
            ctx.thermal_report(tech)
        },
    );
    let links = links?;
    let thermal = (*thermal?).clone();
    // Roll up from the already-computed reports and links; the seed flow
    // called `fullchip()` here, which re-simulated both links.
    let fullchip = {
        techlib::cancel::check("stage.fullchip")?;
        let _span = techlib::obs::span("stage.fullchip");
        rollup(tech, logic, memory, &links)
    };
    Ok(TechStudy {
        tech,
        logic: logic.clone(),
        memory: memory.clone(),
        routing,
        links,
        fullchip,
        thermal,
    })
}

/// Runs one [`Scenario`] in a private context, with its fault sites (if
/// any) armed in a scope local to this run. Equivalent to a one-entry
/// [`crate::batch::run`].
///
/// # Errors
///
/// Propagates the scenario's flow failure.
pub fn run_scenario(scenario: &Scenario) -> Result<TechStudy, FlowError> {
    batch::run_in_context(&StudyContext::for_scenario(scenario), scenario)
}

/// Runs the study for all six packaged technologies, fanning the
/// independent per-technology studies out across scoped threads
/// ([`exec::try_ordered_map`]). Results are in `PACKAGED` order and
/// byte-identical to [`run_all_sequential`] — every study is
/// self-contained and all RNG is fixed-seed.
///
/// # Errors
///
/// [`FlowError::InvalidConfig`] if `CODESIGN_THREADS` is set to garbage,
/// otherwise per-technology failures (first failing technology in
/// `PACKAGED` order, matching the sequential path).
pub fn run_all(mode: MonitorLengths) -> Result<Vec<TechStudy>, FlowError> {
    // Surface a malformed CODESIGN_THREADS as a typed error up front
    // instead of silently falling back to the default parallelism.
    techlib::par::try_thread_count()?;
    run_all_in(&default_context(), mode)
}

/// [`run_all`] against an explicit context (all six packaged
/// technologies, parallel, `PACKAGED` order).
///
/// # Errors
///
/// Per-technology failures, first failing technology in `PACKAGED`
/// order.
pub fn run_all_in(ctx: &StudyContext, mode: MonitorLengths) -> Result<Vec<TechStudy>, FlowError> {
    exec::try_ordered_map(&InterposerKind::PACKAGED, |&tech| {
        run_tech_in(ctx, tech, mode)
    })
}

/// Sequential reference implementation of [`run_all`] (same work, one
/// technology at a time). Kept callable for benchmarking and for the
/// determinism integration test.
///
/// # Errors
///
/// Propagates per-technology failures.
pub fn run_all_sequential(mode: MonitorLengths) -> Result<Vec<TechStudy>, FlowError> {
    let ctx = default_context();
    InterposerKind::PACKAGED
        .iter()
        .map(|&tech| run_tech_in(&ctx, tech, mode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glass_3d_study_is_complete() {
        let s = run_tech(InterposerKind::Glass3D).unwrap();
        assert_eq!(s.tech, InterposerKind::Glass3D);
        assert!(s.routing.is_some());
        assert!(s.fullchip.total_power_mw > 300.0);
        assert!(s.thermal.mem_peak_c > s.thermal.logic_peak_c);
        assert_eq!(s.logic.footprint_mm, s.memory.footprint_mm);
    }

    #[test]
    fn silicon_3d_study_has_no_interposer() {
        let s = run_tech(InterposerKind::Silicon3D).unwrap();
        assert!(s.routing.is_none());
        assert!(s.links.l2m.interconnect_delay_ps < 2.0);
    }

    #[test]
    fn study_serializes_to_json() {
        let s = run_tech(InterposerKind::Glass3D).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("Glass3D"));
        assert!(json.len() > 1000);
    }

    #[test]
    fn scenario_run_matches_the_default_path() {
        let default = run_tech(InterposerKind::Glass3D).unwrap();
        let scenario = run_scenario(&Scenario::paper(InterposerKind::Glass3D)).unwrap();
        assert_eq!(
            serde_json::to_string(&default).unwrap(),
            serde_json::to_string(&scenario).unwrap(),
            "the paper scenario is byte-identical to the legacy path"
        );
    }
}
