//! Design-space scenarios: a named bundle of interposer-spec overrides
//! and study knobs, validated at construction.
//!
//! A [`Scenario`] is the unit of work of the batch engine
//! ([`crate::batch`]): it names a technology, a monitored-lengths mode,
//! a set of typed overrides on the paper's Table I design rules, and an
//! optional set of fault-injection sites scoped to that scenario's run.
//! Construction validates every knob and reports
//! [`FlowError::InvalidConfig`] naming the offending field, so a batch
//! never starts with a scenario that cannot be resolved into a usable
//! [`InterposerSpec`].

use crate::table5::MonitorLengths;
use crate::FlowError;
use serde::Serialize;
use serde_json::Value;
use techlib::spec::{InterposerKind, InterposerSpec};

/// Typed overrides on the paper's Table I design rules. `None` fields
/// keep the [`InterposerSpec::for_kind`] default.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ScenarioOverrides {
    /// Metal layers available for signal routing.
    pub signal_metal_layers: Option<usize>,
    /// RDL metal thickness, µm.
    pub metal_thickness_um: Option<f64>,
    /// Inter-layer dielectric thickness, µm.
    pub dielectric_thickness_um: Option<f64>,
    /// Relative permittivity of the routing dielectric.
    pub dielectric_constant: Option<f64>,
    /// Dielectric loss tangent.
    pub loss_tangent: Option<f64>,
    /// Minimum wire width, µm.
    pub min_wire_width_um: Option<f64>,
    /// Minimum wire spacing, µm.
    pub min_wire_space_um: Option<f64>,
    /// RDL via diameter, µm.
    pub via_size_um: Option<f64>,
    /// Micro-bump diameter, µm.
    pub bump_size_um: Option<f64>,
    /// Minimum die-to-die spacing, µm.
    pub die_to_die_spacing_um: Option<f64>,
    /// Micro-bump pitch, µm.
    pub microbump_pitch_um: Option<f64>,
    /// Substrate core thickness, µm.
    pub core_thickness_um: Option<f64>,
    /// Routing-dielectric material, by [`techlib::material::by_name`]
    /// name; sets the spec's permittivity and loss tangent (explicit
    /// `dielectric_constant` / `loss_tangent` overrides still win).
    pub routing_dielectric: Option<String>,
}

impl ScenarioOverrides {
    /// True when every field keeps the paper default.
    pub fn is_empty(&self) -> bool {
        *self == ScenarioOverrides::default()
    }

    /// Applies the overrides to `spec` in place. The caller has already
    /// validated the values ([`Scenario::new`]).
    fn apply_to(&self, spec: &mut InterposerSpec) {
        // Material first, so explicit electrical overrides win over it.
        if let Some(name) = &self.routing_dielectric {
            if let Some(mat) = techlib::material::by_name(name) {
                spec.dielectric_constant = mat.rel_permittivity;
                spec.loss_tangent = mat.loss_tangent;
            }
        }
        let pairs_f64 = [
            (&self.metal_thickness_um, &mut spec.metal_thickness_um),
            (
                &self.dielectric_thickness_um,
                &mut spec.dielectric_thickness_um,
            ),
            (&self.dielectric_constant, &mut spec.dielectric_constant),
            (&self.loss_tangent, &mut spec.loss_tangent),
            (&self.min_wire_width_um, &mut spec.min_wire_width_um),
            (&self.min_wire_space_um, &mut spec.min_wire_space_um),
            (&self.via_size_um, &mut spec.via_size_um),
            (&self.bump_size_um, &mut spec.bump_size_um),
            (&self.die_to_die_spacing_um, &mut spec.die_to_die_spacing_um),
            (&self.microbump_pitch_um, &mut spec.microbump_pitch_um),
            (&self.core_thickness_um, &mut spec.core_thickness_um),
        ];
        for (src, dst) in pairs_f64 {
            if let Some(v) = src {
                *dst = *v;
            }
        }
        if let Some(n) = self.signal_metal_layers {
            spec.signal_metal_layers = n;
        }
    }

    fn validate(&self, scenario: &str) -> Result<(), FlowError> {
        let positive = [
            ("metal_thickness_um", self.metal_thickness_um),
            ("dielectric_thickness_um", self.dielectric_thickness_um),
            ("dielectric_constant", self.dielectric_constant),
            ("min_wire_width_um", self.min_wire_width_um),
            ("min_wire_space_um", self.min_wire_space_um),
            ("via_size_um", self.via_size_um),
            ("bump_size_um", self.bump_size_um),
            ("microbump_pitch_um", self.microbump_pitch_um),
            ("core_thickness_um", self.core_thickness_um),
        ];
        for (field, value) in positive {
            if let Some(v) = value {
                if !(v.is_finite() && v > 0.0) {
                    return Err(invalid(
                        scenario,
                        field,
                        format!("must be positive and finite, got {v}"),
                    ));
                }
            }
        }
        let non_negative = [
            ("loss_tangent", self.loss_tangent),
            ("die_to_die_spacing_um", self.die_to_die_spacing_um),
        ];
        for (field, value) in non_negative {
            if let Some(v) = value {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(invalid(
                        scenario,
                        field,
                        format!("must be non-negative and finite, got {v}"),
                    ));
                }
            }
        }
        if let Some(n) = self.signal_metal_layers {
            if n == 0 {
                return Err(invalid(
                    scenario,
                    "signal_metal_layers",
                    "must be at least 1, got 0".to_string(),
                ));
            }
        }
        if let Some(name) = &self.routing_dielectric {
            if techlib::material::by_name(name).is_none() {
                let known: Vec<&str> = techlib::material::ALL.iter().map(|m| m.name).collect();
                return Err(invalid(
                    scenario,
                    "routing_dielectric",
                    format!("unknown material {name:?}; known: {}", known.join(", ")),
                ));
            }
        }
        Ok(())
    }
}

fn invalid(scenario: &str, field: &str, problem: String) -> FlowError {
    FlowError::InvalidConfig {
        reason: format!("scenario {scenario:?}: {field} {problem}"),
    }
}

/// One validated point of the design space: a technology, a
/// monitored-lengths mode, resolved spec overrides and (for the fault
/// suite) a set of scoped fault-injection sites.
///
/// Fields are private so a constructed `Scenario` is always valid;
/// [`Scenario::new`] is the only way to set them.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Scenario {
    name: String,
    tech: InterposerKind,
    mode: MonitorLengths,
    overrides: ScenarioOverrides,
    fault_sites: Vec<String>,
}

impl Scenario {
    /// Builds and validates a scenario.
    ///
    /// # Errors
    ///
    /// [`FlowError::InvalidConfig`] naming the offending field when the
    /// name is empty, the technology has no package-level design, an
    /// override is out of range (non-positive or non-finite dimensions,
    /// zero routing layers, unknown dielectric material), or a fault
    /// site is not one of [`techlib::faults::SITES`].
    pub fn new(
        name: impl Into<String>,
        tech: InterposerKind,
        mode: MonitorLengths,
        overrides: ScenarioOverrides,
        fault_sites: Vec<String>,
    ) -> Result<Scenario, FlowError> {
        let name = name.into();
        if name.trim().is_empty() {
            return Err(FlowError::InvalidConfig {
                reason: "scenario name must not be empty".to_string(),
            });
        }
        if !InterposerKind::PACKAGED.contains(&tech) {
            return Err(invalid(
                &name,
                "tech",
                format!("{tech} has no package-level design to study"),
            ));
        }
        overrides.validate(&name)?;
        for site in &fault_sites {
            if !techlib::faults::SITES.contains(&site.as_str()) {
                return Err(invalid(
                    &name,
                    "fault_sites",
                    format!(
                        "unknown site {site:?}; known: {}",
                        techlib::faults::SITES.join(", ")
                    ),
                ));
            }
        }
        Ok(Scenario {
            name,
            tech,
            mode,
            overrides,
            fault_sites,
        })
    }

    /// The paper-default scenario for `tech`: no overrides, no faults,
    /// routed monitored lengths.
    pub fn paper(tech: InterposerKind) -> Scenario {
        Scenario {
            name: format!("paper-{tech}"),
            tech,
            mode: MonitorLengths::Routed,
            overrides: ScenarioOverrides::default(),
            fault_sites: Vec::new(),
        }
    }

    /// Scenario name (unique within any batch parsed by
    /// [`scenarios_from_json`], which rejects duplicates — sweep output
    /// rows are keyed by name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The technology this scenario studies.
    pub fn tech(&self) -> InterposerKind {
        self.tech
    }

    /// Monitored-lengths mode for the Table V links.
    pub fn mode(&self) -> MonitorLengths {
        self.mode
    }

    /// The spec overrides.
    pub fn overrides(&self) -> &ScenarioOverrides {
        &self.overrides
    }

    /// Fault sites armed (scoped to this scenario) while it runs.
    pub fn fault_sites(&self) -> &[String] {
        &self.fault_sites
    }

    /// True when no fault sites are armed — clean scenarios may share
    /// front-end artifacts with each other.
    pub fn is_clean(&self) -> bool {
        self.fault_sites.is_empty()
    }

    /// The design rules for `kind` with this scenario's overrides
    /// applied on top of the [`InterposerSpec::for_kind`] baseline.
    pub fn spec_for(&self, kind: InterposerKind) -> InterposerSpec {
        let mut spec = InterposerSpec::for_kind(kind);
        self.overrides.apply_to(&mut spec);
        spec
    }

    /// The resolved spec of the scenario's own technology.
    pub fn resolved_spec(&self) -> InterposerSpec {
        self.spec_for(self.tech)
    }
}

/// Parses a technology name the way the CLI does (`glass3d`,
/// `silicon25d`, `si3d`, `shinko`, `apx`, …).
pub fn kind_from_str(name: &str) -> Option<InterposerKind> {
    match name
        .to_ascii_lowercase()
        .replace(['-', '_', '.', ' '], "")
        .as_str()
    {
        "glass25d" | "glass2d5" => Some(InterposerKind::Glass25D),
        "glass3d" | "55d" => Some(InterposerKind::Glass3D),
        "silicon25d" | "si25d" | "cowos" => Some(InterposerKind::Silicon25D),
        "silicon3d" | "si3d" => Some(InterposerKind::Silicon3D),
        "shinko" => Some(InterposerKind::Shinko),
        "apx" => Some(InterposerKind::Apx),
        _ => None,
    }
}

/// Parses a batch description from JSON text (the `codesign sweep`
/// input). Accepts either a top-level array of scenario objects or an
/// object with a `"scenarios"` array. Each scenario object supports:
///
/// ```json
/// {
///   "name": "thick-copper",
///   "tech": "glass25d",
///   "mode": "routed",
///   "overrides": { "metal_thickness_um": 6.0 },
///   "fault_sites": ["thermal.solve"]
/// }
/// ```
///
/// `mode`, `overrides` and `fault_sites` are optional; unknown keys are
/// rejected so typos surface as errors instead of silently keeping the
/// paper default. Scenario names must be unique within the file —
/// `codesign sweep` output rows are keyed by name, so a duplicate would
/// make them ambiguous.
///
/// # Errors
///
/// [`FlowError::InvalidConfig`] for malformed JSON, unknown keys,
/// duplicate scenario names, or any [`Scenario::new`] validation
/// failure.
pub fn scenarios_from_json(text: &str) -> Result<Vec<Scenario>, FlowError> {
    let doc = serde_json::from_str(text).map_err(|e| FlowError::InvalidConfig {
        reason: format!("scenario file: {e}"),
    })?;
    let list = match &doc {
        Value::Array(items) => items.as_slice(),
        Value::Object(_) => match doc.get("scenarios") {
            Some(Value::Array(items)) => items.as_slice(),
            _ => {
                return Err(FlowError::InvalidConfig {
                    reason: "scenario file: expected an array or an object with a \"scenarios\" \
                             array"
                        .to_string(),
                })
            }
        },
        _ => {
            return Err(FlowError::InvalidConfig {
                reason: "scenario file: top level must be an array of scenario objects".to_string(),
            })
        }
    };
    let scenarios: Vec<Scenario> = list
        .iter()
        .enumerate()
        .map(scenario_from_value)
        .collect::<Result<_, _>>()?;
    let mut seen = std::collections::BTreeSet::new();
    for scenario in &scenarios {
        if !seen.insert(scenario.name()) {
            return Err(FlowError::InvalidConfig {
                reason: format!(
                    "scenario file: duplicate scenario name {:?} (names key the sweep's \
                     output rows, so they must be unique)",
                    scenario.name()
                ),
            });
        }
    }
    Ok(scenarios)
}

fn scenario_from_value((index, value): (usize, &Value)) -> Result<Scenario, FlowError> {
    let Value::Object(fields) = value else {
        return Err(FlowError::InvalidConfig {
            reason: format!("scenario #{index}: must be an object"),
        });
    };
    let mut name = None;
    let mut tech = None;
    let mut mode = MonitorLengths::Routed;
    let mut overrides = ScenarioOverrides::default();
    let mut fault_sites = Vec::new();
    for (key, val) in fields {
        match key.as_str() {
            "name" => {
                name = Some(expect_string(index, key, val)?.to_string());
            }
            "tech" => {
                let raw = expect_string(index, key, val)?;
                tech = Some(kind_from_str(raw).ok_or_else(|| FlowError::InvalidConfig {
                    reason: format!("scenario #{index}: tech: unknown technology {raw:?}"),
                })?);
            }
            "mode" => {
                mode = match expect_string(index, key, val)? {
                    "routed" => MonitorLengths::Routed,
                    "paper" => MonitorLengths::Paper,
                    other => {
                        return Err(FlowError::InvalidConfig {
                            reason: format!(
                                "scenario #{index}: mode: expected \"routed\" or \"paper\", \
                                 got {other:?}"
                            ),
                        })
                    }
                };
            }
            "overrides" => {
                overrides = overrides_from_value(index, val)?;
            }
            "fault_sites" | "faults" => {
                let Value::Array(items) = val else {
                    return Err(FlowError::InvalidConfig {
                        reason: format!("scenario #{index}: {key}: must be an array of strings"),
                    });
                };
                for item in items {
                    fault_sites.push(expect_string(index, key, item)?.to_string());
                }
            }
            other => {
                return Err(FlowError::InvalidConfig {
                    reason: format!("scenario #{index}: unknown key {other:?}"),
                })
            }
        }
    }
    let name = name.ok_or_else(|| FlowError::InvalidConfig {
        reason: format!("scenario #{index}: missing \"name\""),
    })?;
    let tech = tech.ok_or_else(|| FlowError::InvalidConfig {
        reason: format!("scenario {name:?}: missing \"tech\""),
    })?;
    Scenario::new(name, tech, mode, overrides, fault_sites)
}

fn overrides_from_value(index: usize, value: &Value) -> Result<ScenarioOverrides, FlowError> {
    let Value::Object(fields) = value else {
        return Err(FlowError::InvalidConfig {
            reason: format!("scenario #{index}: overrides: must be an object"),
        });
    };
    let mut ov = ScenarioOverrides::default();
    for (key, val) in fields {
        let slot: &mut Option<f64> = match key.as_str() {
            "metal_thickness_um" => &mut ov.metal_thickness_um,
            "dielectric_thickness_um" => &mut ov.dielectric_thickness_um,
            "dielectric_constant" => &mut ov.dielectric_constant,
            "loss_tangent" => &mut ov.loss_tangent,
            "min_wire_width_um" => &mut ov.min_wire_width_um,
            "min_wire_space_um" => &mut ov.min_wire_space_um,
            "via_size_um" => &mut ov.via_size_um,
            "bump_size_um" => &mut ov.bump_size_um,
            "die_to_die_spacing_um" => &mut ov.die_to_die_spacing_um,
            "microbump_pitch_um" => &mut ov.microbump_pitch_um,
            "core_thickness_um" => &mut ov.core_thickness_um,
            "signal_metal_layers" => {
                let n = val.as_u64().ok_or_else(|| FlowError::InvalidConfig {
                    reason: format!(
                        "scenario #{index}: overrides.signal_metal_layers: must be a \
                         non-negative integer"
                    ),
                })?;
                ov.signal_metal_layers = Some(n as usize);
                continue;
            }
            "routing_dielectric" => {
                ov.routing_dielectric = Some(expect_string(index, key, val)?.to_string());
                continue;
            }
            other => {
                return Err(FlowError::InvalidConfig {
                    reason: format!("scenario #{index}: overrides: unknown key {other:?}"),
                })
            }
        };
        *slot = Some(val.as_f64().ok_or_else(|| FlowError::InvalidConfig {
            reason: format!("scenario #{index}: overrides.{key}: must be a number"),
        })?);
    }
    Ok(ov)
}

fn expect_string<'v>(index: usize, key: &str, value: &'v Value) -> Result<&'v str, FlowError> {
    value.as_str().ok_or_else(|| FlowError::InvalidConfig {
        reason: format!("scenario #{index}: {key}: must be a string"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(overrides: ScenarioOverrides) -> Result<Scenario, FlowError> {
        Scenario::new(
            "t",
            InterposerKind::Glass25D,
            MonitorLengths::Routed,
            overrides,
            Vec::new(),
        )
    }

    #[test]
    fn negative_pitch_is_rejected_naming_the_field() {
        let err = build(ScenarioOverrides {
            microbump_pitch_um: Some(-35.0),
            ..Default::default()
        })
        .unwrap_err();
        let FlowError::InvalidConfig { reason } = &err else {
            panic!("{err:?}");
        };
        assert!(reason.contains("microbump_pitch_um"), "{reason}");
        assert!(reason.contains("-35"), "{reason}");
    }

    #[test]
    fn zero_layers_and_nan_dimensions_are_rejected() {
        let err = build(ScenarioOverrides {
            signal_metal_layers: Some(0),
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("signal_metal_layers"), "{err}");
        let err = build(ScenarioOverrides {
            via_size_um: Some(f64::NAN),
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("via_size_um"), "{err}");
    }

    #[test]
    fn unknown_material_and_fault_site_are_rejected() {
        let err = build(ScenarioOverrides {
            routing_dielectric: Some("unobtainium".to_string()),
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.to_string().contains("routing_dielectric"), "{err}");
        assert!(err.to_string().contains("unobtainium"), "{err}");
        let err = Scenario::new(
            "t",
            InterposerKind::Glass25D,
            MonitorLengths::Routed,
            ScenarioOverrides::default(),
            vec!["router.warp".to_string()],
        )
        .unwrap_err();
        assert!(err.to_string().contains("fault_sites"), "{err}");
    }

    #[test]
    fn monolithic_and_empty_names_are_rejected() {
        let err = Scenario::new(
            "t",
            InterposerKind::Monolithic2D,
            MonitorLengths::Routed,
            ScenarioOverrides::default(),
            Vec::new(),
        )
        .unwrap_err();
        assert!(matches!(err, FlowError::InvalidConfig { .. }), "{err}");
        let err = Scenario::new(
            "  ",
            InterposerKind::Glass25D,
            MonitorLengths::Routed,
            ScenarioOverrides::default(),
            Vec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("name"), "{err}");
    }

    #[test]
    fn overrides_resolve_onto_the_paper_baseline() {
        let s = build(ScenarioOverrides {
            microbump_pitch_um: Some(20.0),
            routing_dielectric: Some("sio2".to_string()),
            loss_tangent: Some(0.002),
            ..Default::default()
        })
        .unwrap();
        let spec = s.resolved_spec();
        let base = InterposerSpec::for_kind(InterposerKind::Glass25D);
        assert_eq!(spec.microbump_pitch_um, 20.0);
        // Material override sets permittivity; the explicit loss-tangent
        // override wins over the material's.
        let sio2 = techlib::material::by_name("SiO2").unwrap();
        assert_eq!(spec.dielectric_constant, sio2.rel_permittivity);
        assert_eq!(spec.loss_tangent, 0.002);
        // Untouched fields keep the Table I defaults.
        assert_eq!(spec.via_size_um, base.via_size_um);
        assert_eq!(spec.stacking, base.stacking);
        // The paper scenario resolves to the unmodified baseline.
        assert_eq!(
            Scenario::paper(InterposerKind::Glass25D).resolved_spec(),
            base
        );
    }

    #[test]
    fn json_round_trip_parses_scenarios() {
        let text = r#"{
          "scenarios": [
            { "name": "baseline", "tech": "glass3d" },
            {
              "name": "coarse-pitch",
              "tech": "glass25d",
              "mode": "paper",
              "overrides": { "microbump_pitch_um": 55.0, "signal_metal_layers": 5 },
              "fault_sites": ["thermal.solve"]
            }
          ]
        }"#;
        let scenarios = scenarios_from_json(text).unwrap();
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].tech(), InterposerKind::Glass3D);
        assert!(scenarios[0].is_clean());
        assert_eq!(scenarios[1].mode(), MonitorLengths::Paper);
        assert_eq!(scenarios[1].resolved_spec().microbump_pitch_um, 55.0);
        assert_eq!(scenarios[1].resolved_spec().signal_metal_layers, 5);
        assert_eq!(scenarios[1].fault_sites(), ["thermal.solve"]);
    }

    #[test]
    fn json_rejects_duplicate_scenario_names() {
        let err = scenarios_from_json(
            r#"[
              { "name": "twin", "tech": "glass3d" },
              { "name": "other", "tech": "apx" },
              { "name": "twin", "tech": "glass25d" }
            ]"#,
        )
        .unwrap_err();
        let FlowError::InvalidConfig { reason } = &err else {
            panic!("{err:?}");
        };
        assert!(reason.contains("duplicate"), "{reason}");
        assert!(reason.contains("\"twin\""), "{reason}");
        // Distinct names still parse.
        assert_eq!(
            scenarios_from_json(
                r#"[{ "name": "a", "tech": "glass3d" }, { "name": "b", "tech": "glass3d" }]"#
            )
            .unwrap()
            .len(),
            2
        );
    }

    #[test]
    fn json_rejects_unknown_keys_and_bad_values() {
        let err =
            scenarios_from_json(r#"[{ "name": "x", "tech": "glass3d", "pitch": 1 }]"#).unwrap_err();
        assert!(err.to_string().contains("pitch"), "{err}");
        let err = scenarios_from_json(
            r#"[{ "name": "x", "tech": "glass3d", "overrides": { "via_size_um": "big" } }]"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("via_size_um"), "{err}");
        let err = scenarios_from_json(r#"[{ "tech": "glass3d" }]"#).unwrap_err();
        assert!(err.to_string().contains("name"), "{err}");
        assert!(scenarios_from_json("not json").is_err());
    }
}
