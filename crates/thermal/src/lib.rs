#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
//! Steady-state thermal analysis of the chiplet/interposer assemblies
//! (Section VII-G, Figs. 16–18).
//!
//! * [`model`] — voxelised stack construction per technology: substrate
//!   core (with cavity-embedded dies for Glass 3D and the 4-tier stack for
//!   Silicon 3D), RDL, bump/underfill layer, dies, with via-copper
//!   enhanced effective conductivities and 8×8 power maps per chiplet.
//! * [`solver`] — finite-volume Gauss–Seidel/SOR conduction solver with
//!   convection boundaries (0.1 m/s top-side air; board-cooled bottom).
//! * [`report`] — per-chiplet peak temperatures and interposer hotspot
//!   maps.
//!
//! # Example
//!
//! ```
//! use thermal::report::analyze_tech;
//! use techlib::spec::InterposerKind;
//!
//! let r = analyze_tech(InterposerKind::Glass3D)?;
//! // The embedded memory die is the hottest spot in the study (Fig. 17).
//! assert!(r.mem_peak_c > r.logic_peak_c);
//! # Ok::<(), thermal::ThermalError>(())
//! ```

pub mod model;
pub mod report;
pub mod solver;
pub mod svg;

pub use model::ThermalModel;
pub use report::ThermalReport;

/// Errors produced by thermal model construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// The SOR sweep hit its iteration cap before the max per-sweep
    /// update dropped below tolerance.
    NoConvergence {
        /// Iterations performed (the configured cap).
        iterations: usize,
        /// Max per-sweep temperature update at the last iteration, K.
        residual_k: f64,
        /// The convergence threshold that was not met, K.
        tolerance_k: f64,
    },
    /// The technology has no thermal model (monolithic baseline).
    UnsupportedTech(techlib::spec::InterposerKind),
}

impl std::fmt::Display for ThermalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermalError::NoConvergence {
                iterations,
                residual_k,
                tolerance_k,
            } => write!(
                f,
                "SOR did not converge after {iterations} iterations \
                 (residual {residual_k:.3e} K, tolerance {tolerance_k:.3e} K)"
            ),
            ThermalError::UnsupportedTech(tech) => {
                write!(f, "{tech} is not in the thermal study")
            }
        }
    }
}

impl std::error::Error for ThermalError {}

/// Ambient temperature of the study, °C.
pub const AMBIENT_C: f64 = 20.0;

/// Top-side convection coefficient at 0.1 m/s airflow, W/(m²·K).
pub const H_TOP_W_M2K: f64 = 15.0;

/// Effective bottom-side coefficient, W/(m²·K): the ball field into the
/// motherboard. Secondary to the die-top enclosure path in the paper's
/// setup (no active cooling, tiny ball contact area).
pub const H_BOTTOM_W_M2K: f64 = 200.0;

/// Effective coefficient over exposed die backs, W/(m²·K) — the
/// enclosure/case cooling path of the paper's IcePak model ("the logic
/// chiplet ... dissipates into the ambient air", Section VII-G).
///
/// Provenance: calibrated once so 2.5D logic chiplets land in Fig. 17's
/// 27–29 °C band at 142 mW.
pub const H_TOP_DIE_W_M2K: f64 = 25_000.0;
