//! Finite-volume steady-state conduction solver.
//!
//! Classic 7-point stencil with harmonic-mean inter-cell conductances,
//! convection boundaries, and successive over-relaxation. Cell sizes are
//! uniform in x/y and non-uniform in z.
//!
//! Sweeps use **red-black ordering**: cells are two-coloured by
//! `(x + y + z) % 2`, and each half-sweep updates one colour. Under the
//! 7-point stencil every neighbour of a cell has the opposite colour, so
//! all updates within a half-sweep are independent — rows can run on any
//! number of workers ([`techlib::par::thread_count`]) and the arithmetic
//! (and therefore the converged field) is bit-identical regardless of
//! worker count or row order.

use crate::model::{ThermalModel, CELL_XY_M};
use crate::{ThermalError, AMBIENT_C};
use std::cell::UnsafeCell;

/// Fixed lateral "board spreading" conductance distributed over the
/// bottom face, W/K — models heat escaping into the motherboard beyond
/// the package shadow (so small packages are not starved of cooling).
///
/// Provenance: calibrated once so the Glass 3D logic die lands in the
/// paper's 27 °C band while the embedded memory die stays trapped.
pub const BOARD_SPREAD_W_PER_K: f64 = 0.005;

/// Side-wall convection coefficient, W/(m²·K).
pub const H_SIDE_W_M2K: f64 = 10.0;

/// Convection/spreading boundary coefficients.
#[derive(Debug, Clone, Copy)]
pub struct Boundaries {
    /// Top-side convection over non-die area, W/(m²·K).
    pub h_top: f64,
    /// Effective coefficient over exposed die backs, W/(m²·K) — the
    /// enclosure/case path the paper's IcePak model provides. Calibrated
    /// once so 2.5D logic chiplets land in the 27–29 °C band of Fig. 17.
    pub h_top_die: f64,
    /// Bottom-side effective coefficient (ball field + board), W/(m²·K).
    pub h_bottom: f64,
    /// Side-wall convection, W/(m²·K).
    pub h_side: f64,
    /// Fixed board-spreading conductance over the bottom face, W/K.
    pub board_spread_w_per_k: f64,
}

impl Default for Boundaries {
    fn default() -> Self {
        Boundaries {
            h_top: crate::H_TOP_W_M2K,
            h_top_die: crate::H_TOP_DIE_W_M2K,
            h_bottom: crate::H_BOTTOM_W_M2K,
            h_side: H_SIDE_W_M2K,
            board_spread_w_per_k: BOARD_SPREAD_W_PER_K,
        }
    }
}

impl Boundaries {
    /// Boundaries for a given top-side air speed, m/s, using the flat-
    /// plate forced-convection estimate h ≈ 5 + 30·√v (the paper's study
    /// point is 0.1 m/s).
    pub fn with_airspeed(v_m_s: f64) -> Boundaries {
        let scale = (v_m_s.max(1e-3) / 0.1).sqrt();
        Boundaries {
            h_top: 5.0 + 30.0 * v_m_s.max(0.0).sqrt(),
            h_top_die: crate::H_TOP_DIE_W_M2K * scale,
            ..Boundaries::default()
        }
    }
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct SolveConfig {
    /// Over-relaxation factor (1.0 = Gauss-Seidel).
    pub omega: f64,
    /// Convergence threshold on the max per-sweep update, K.
    pub tolerance_k: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            omega: 1.85,
            tolerance_k: 1e-5,
            max_iters: 20_000,
        }
    }
}

/// The temperature field, °C, indexed `[z][y*nx+x]`.
#[derive(Debug, Clone)]
pub struct TemperatureField {
    /// Grid x size.
    pub nx: usize,
    /// Grid y size.
    pub ny: usize,
    /// Per-layer temperature maps.
    pub layers: Vec<Vec<f64>>,
    /// Iterations used.
    pub iterations: usize,
}

impl TemperatureField {
    /// Peak temperature in a region of one layer, °C.
    pub fn peak_in(&self, z: usize, x: (usize, usize), y: (usize, usize)) -> f64 {
        let mut peak = f64::NEG_INFINITY;
        for yy in y.0..y.1 {
            for xx in x.0..x.1 {
                peak = peak.max(self.layers[z][yy * self.nx + xx]);
            }
        }
        peak
    }

    /// Global peak, °C.
    pub fn peak(&self) -> f64 {
        self.layers
            .iter()
            .flatten()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Solves the steady-state field of `model` with default boundaries.
///
/// # Errors
///
/// Returns [`ThermalError::NoConvergence`] if the SOR sweep hits
/// `config.max_iters` before the max per-sweep update drops below
/// `config.tolerance_k`.
pub fn solve(model: &ThermalModel, config: &SolveConfig) -> Result<TemperatureField, ThermalError> {
    solve_with_boundaries(model, config, &Boundaries::default())
}

/// Solves with explicit boundary coefficients (airflow studies).
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with_boundaries(
    model: &ThermalModel,
    config: &SolveConfig,
    bounds: &Boundaries,
) -> Result<TemperatureField, ThermalError> {
    solve_with_workers(model, config, bounds, techlib::par::thread_count())
}

/// [`solve_with_boundaries`] with an explicit worker count (for the
/// worker-invariance tests and benchmarks). The returned field is
/// bit-identical for every `workers` value — including the error path:
/// convergence is judged on the deterministic residual, so every worker
/// count reports the same [`ThermalError::NoConvergence`].
///
/// # Errors
///
/// Same as [`solve`], plus the `thermal.sor` fault site (which reports a
/// zero-iteration non-convergence without sweeping).
pub fn solve_with_workers(
    model: &ThermalModel,
    config: &SolveConfig,
    bounds: &Boundaries,
    workers: usize,
) -> Result<TemperatureField, ThermalError> {
    if techlib::faults::armed("thermal.sor") {
        return Err(ThermalError::NoConvergence {
            iterations: 0,
            residual_k: f64::INFINITY,
            tolerance_k: config.tolerance_k,
        });
    }
    let (field, residual_k) = sor_sweeps(model, config, bounds, workers);
    if residual_k < config.tolerance_k {
        Ok(field)
    } else {
        Err(ThermalError::NoConvergence {
            iterations: field.iterations,
            residual_k,
            tolerance_k: config.tolerance_k,
        })
    }
}

/// Runs the SOR sweeps and returns whatever field the iteration cap
/// allows, converged or not — the escape hatch for worker-invariance
/// tests and benchmarks that deliberately under-iterate. Prefer
/// [`solve_with_workers`], which turns a non-converged field into a
/// typed error.
pub fn solve_capped_with_workers(
    model: &ThermalModel,
    config: &SolveConfig,
    bounds: &Boundaries,
    workers: usize,
) -> TemperatureField {
    sor_sweeps(model, config, bounds, workers).0
}

/// Red-black SOR core: returns the field plus the max per-sweep update
/// of the last iteration (`INFINITY` when `max_iters == 0`).
fn sor_sweeps(
    model: &ThermalModel,
    config: &SolveConfig,
    bounds: &Boundaries,
    workers: usize,
) -> (TemperatureField, f64) {
    let (nx, ny, nz) = (model.nx, model.ny, model.nz());
    let a_xy = CELL_XY_M * CELL_XY_M;
    let n_bottom = (nx * ny) as f64;

    // Precompute conductances.
    // Lateral G between (x,y,z) and (x+1,y,z): harmonic mean over dx.
    let g_lat = |z: usize, i: usize, j: usize| -> f64 {
        let k1 = model.k_xy[z][i];
        let k2 = model.k_xy[z][j];
        let area = model.dz_m[z] * CELL_XY_M;
        area / (CELL_XY_M / (2.0 * k1) + CELL_XY_M / (2.0 * k2))
    };
    // Vertical G between layer z and z+1 at cell i.
    let g_vert = |z: usize, i: usize| -> f64 {
        let k1 = model.k_z[z][i];
        let k2 = model.k_z[z + 1][i];
        a_xy / (model.dz_m[z] / (2.0 * k1) + model.dz_m[z + 1] / (2.0 * k2))
    };

    // Temperature cells shared across row workers during a half-sweep.
    //
    // SAFETY (for both unsafe blocks below): a half-sweep writes only
    // cells of the active colour, each `(z, y)` row appears exactly once
    // in `rows` so every written cell belongs to exactly one task, and
    // every read is either the task's own cell or an opposite-colour
    // neighbour that no task writes during this half-sweep. The scope
    // inside `ordered_map_with` joins all workers between half-sweeps.
    struct SharedField(Vec<UnsafeCell<f64>>);
    unsafe impl Sync for SharedField {}

    let cells = nx * ny;
    let field = SharedField(
        (0..nz * cells)
            .map(|_| UnsafeCell::new(AMBIENT_C))
            .collect(),
    );
    let rows: Vec<(usize, usize)> = (0..nz).flat_map(|z| (0..ny).map(move |y| (z, y))).collect();

    let mut iterations = 0;
    let mut last_delta = f64::INFINITY;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let mut max_delta: f64 = 0.0;
        for color in 0..2usize {
            // Capture the Sync wrapper, not its inner Vec (edition-2021
            // closures would otherwise capture `field.0` directly).
            let field = &field;
            let read = move |node: usize| unsafe { *field.0[node].get() };
            let deltas = techlib::par::ordered_map_with(workers, &rows, |&(z, y)| {
                let zoff = z * cells;
                let mut row_delta: f64 = 0.0;
                let mut x = (color + y + z) % 2;
                while x < nx {
                    let i = y * nx + x;
                    let mut g_sum = 0.0;
                    let mut flux = model.power[z][i];

                    // Lateral neighbours (or side convection at walls).
                    if x + 1 < nx {
                        let g = g_lat(z, i, i + 1);
                        g_sum += g;
                        flux += g * read(zoff + i + 1);
                    } else {
                        let g = bounds.h_side * model.dz_m[z] * CELL_XY_M;
                        g_sum += g;
                        flux += g * AMBIENT_C;
                    }
                    if x > 0 {
                        let g = g_lat(z, i - 1, i);
                        g_sum += g;
                        flux += g * read(zoff + i - 1);
                    } else {
                        let g = bounds.h_side * model.dz_m[z] * CELL_XY_M;
                        g_sum += g;
                        flux += g * AMBIENT_C;
                    }
                    if y + 1 < ny {
                        let g = g_lat(z, i, i + nx);
                        g_sum += g;
                        flux += g * read(zoff + i + nx);
                    } else {
                        let g = bounds.h_side * model.dz_m[z] * CELL_XY_M;
                        g_sum += g;
                        flux += g * AMBIENT_C;
                    }
                    if y > 0 {
                        let g = g_lat(z, i - nx, i);
                        g_sum += g;
                        flux += g * read(zoff + i - nx);
                    } else {
                        let g = bounds.h_side * model.dz_m[z] * CELL_XY_M;
                        g_sum += g;
                        flux += g * AMBIENT_C;
                    }

                    // Vertical neighbours / top+bottom boundaries.
                    if z + 1 < nz {
                        let g = g_vert(z, i);
                        g_sum += g;
                        flux += g * read(zoff + cells + i);
                    } else {
                        let h = if model.top_die_mask[i] {
                            bounds.h_top_die
                        } else {
                            bounds.h_top
                        };
                        let g = h * a_xy;
                        g_sum += g;
                        flux += g * AMBIENT_C;
                    }
                    if z > 0 {
                        let g = g_vert(z - 1, i);
                        g_sum += g;
                        flux += g * read(zoff - cells + i);
                    } else {
                        let g = bounds.h_bottom * a_xy + bounds.board_spread_w_per_k / n_bottom;
                        g_sum += g;
                        flux += g * AMBIENT_C;
                    }

                    let t_old = read(zoff + i);
                    let t_new = flux / g_sum;
                    let t_relaxed = t_old + config.omega * (t_new - t_old);
                    row_delta = row_delta.max((t_relaxed - t_old).abs());
                    unsafe { *field.0[zoff + i].get() = t_relaxed };
                    x += 2;
                }
                row_delta
            });
            // f64::max is commutative and associative (no NaNs here), so
            // the reduction is order-independent anyway; folding the
            // ordered results keeps it visibly deterministic.
            max_delta = deltas.into_iter().fold(max_delta, f64::max);
        }
        last_delta = max_delta;
        if max_delta < config.tolerance_k {
            break;
        }
    }

    let flat: Vec<f64> = field.0.into_iter().map(UnsafeCell::into_inner).collect();
    techlib::obs::add(techlib::obs::THERMAL_SOR_SWEEPS, iterations as u64);
    (
        TemperatureField {
            nx,
            ny,
            layers: flat.chunks(cells).map(<[f64]>::to_vec).collect(),
            iterations,
        },
        last_delta,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use techlib::spec::InterposerKind;

    #[test]
    fn temperatures_exceed_ambient_everywhere_heat_flows() {
        let model = ThermalModel::for_tech(InterposerKind::Silicon25D).unwrap();
        let field = solve(&model, &SolveConfig::default()).unwrap();
        for layer in &field.layers {
            for &t in layer {
                assert!(t >= AMBIENT_C - 1e-6);
            }
        }
        assert!(field.peak() > AMBIENT_C + 1.0);
    }

    #[test]
    fn zero_power_gives_ambient() {
        let mut model = ThermalModel::for_tech(InterposerKind::Silicon25D).unwrap();
        for p in &mut model.power {
            p.iter_mut().for_each(|x| *x = 0.0);
        }
        let field = solve(&model, &SolveConfig::default()).unwrap();
        assert!((field.peak() - AMBIENT_C).abs() < 1e-6);
    }

    #[test]
    fn doubling_power_roughly_doubles_rise() {
        let model = ThermalModel::for_tech(InterposerKind::Glass25D).unwrap();
        let base = solve(&model, &SolveConfig::default()).unwrap().peak() - AMBIENT_C;
        let mut doubled = model.clone();
        for p in &mut doubled.power {
            p.iter_mut().for_each(|x| *x *= 2.0);
        }
        let twice = solve(&doubled, &SolveConfig::default()).unwrap().peak() - AMBIENT_C;
        assert!((twice / base - 2.0).abs() < 1e-3, "{twice} vs {base}");
    }

    #[test]
    fn hotspot_sits_on_a_die() {
        let model = ThermalModel::for_tech(InterposerKind::Shinko).unwrap();
        let field = solve(&model, &SolveConfig::default()).unwrap();
        let global = field.peak();
        let on_dies = model
            .dies
            .iter()
            .map(|d| field.peak_in(d.z_layer, d.x_range, d.y_range))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((global - on_dies).abs() < 1e-9);
    }

    #[test]
    fn more_airflow_cools_the_assembly() {
        let model = ThermalModel::for_tech(InterposerKind::Glass3D).unwrap();
        let still = solve_with_boundaries(
            &model,
            &SolveConfig::default(),
            &Boundaries::with_airspeed(0.1),
        )
        .unwrap()
        .peak();
        let breezy = solve_with_boundaries(
            &model,
            &SolveConfig::default(),
            &Boundaries::with_airspeed(5.0),
        )
        .unwrap()
        .peak();
        assert!(breezy < still, "{breezy} vs {still}");
    }

    #[test]
    fn one_dimensional_slab_matches_hand_calculation() {
        // Analytic validation: a single-column stack with adiabatic sides
        // and top, power P injected at the top layer, cooled only through
        // the bottom boundary. The exact rise is
        // P · (Σ dz/(k·A) with half-cells at the ends + 1/(h_eff·A)).
        use crate::model::{DieRegion, ThermalModel, CELL_XY_M};
        let nx = 1;
        let ny = 1;
        let k = 10.0;
        let dz = 100e-6;
        let p_w = 0.01;
        let layers = 4;
        let model = ThermalModel {
            tech: techlib::spec::InterposerKind::Silicon25D,
            nx,
            ny,
            dz_m: vec![dz; layers],
            k_xy: vec![vec![k]; layers],
            k_z: vec![vec![k]; layers],
            power: {
                let mut p = vec![vec![0.0]; layers];
                p[layers - 1][0] = p_w;
                p
            },
            dies: vec![DieRegion {
                label: "slab".into(),
                is_logic: true,
                z_layer: layers - 1,
                x_range: (0, 1),
                y_range: (0, 1),
            }],
            top_die_mask: vec![false],
        };
        let bounds = Boundaries {
            h_top: 0.0,
            h_top_die: 0.0,
            h_side: 0.0,
            h_bottom: 1_000.0,
            board_spread_w_per_k: 0.0,
        };
        let field = solve_with_boundaries(&model, &SolveConfig::default(), &bounds).unwrap();
        let a = CELL_XY_M * CELL_XY_M;
        // Centre-to-centre conduction: (layers-1) full cells, plus half a
        // cell from the bottom centre to the boundary face.
        let r_cond = ((layers - 1) as f64 * dz + dz / 2.0) / (k * a);
        let r_conv = 1.0 / (1_000.0 * a);
        let expect = AMBIENT_C + p_w * (r_cond + r_conv);
        let got = field.layers[layers - 1][0];
        assert!(
            (got - expect).abs() / (expect - AMBIENT_C) < 0.01,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn solver_converges_within_budget() {
        let model = ThermalModel::for_tech(InterposerKind::Glass3D).unwrap();
        let field = solve(&model, &SolveConfig::default()).unwrap();
        assert!(field.iterations < SolveConfig::default().max_iters);
    }

    #[test]
    fn worker_count_does_not_change_a_single_bit() {
        // Red-black half-sweeps are embarrassingly parallel, so the field
        // must be bit-identical (not just close) for any worker count.
        let model = ThermalModel::for_tech(InterposerKind::Glass3D).unwrap();
        let config = SolveConfig {
            max_iters: 400,
            ..SolveConfig::default()
        };
        let bounds = Boundaries::default();
        let one = solve_capped_with_workers(&model, &config, &bounds, 1);
        for workers in [2, 5] {
            let many = solve_capped_with_workers(&model, &config, &bounds, workers);
            assert_eq!(one.iterations, many.iterations);
            for (a, b) in one.layers.iter().zip(&many.layers) {
                for (ta, tb) in a.iter().zip(b) {
                    assert!(
                        ta.to_bits() == tb.to_bits(),
                        "{ta} != {tb} ({workers} workers)"
                    );
                }
            }
        }
    }
}
