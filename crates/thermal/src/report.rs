//! Per-technology thermal reports (Figs. 16–18).

use crate::model::ThermalModel;
use crate::solver::{solve, SolveConfig, TemperatureField};
use crate::ThermalError;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use techlib::memo::ArcMemo;
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::store::{ArtifactStore, Codec, SpecField, StoreKey};

/// Peak chiplet and interposer temperatures for one assembly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalReport {
    /// Technology.
    pub tech: InterposerKind,
    /// Hottest logic-chiplet temperature, °C.
    pub logic_peak_c: f64,
    /// Hottest memory-chiplet temperature, °C.
    pub mem_peak_c: f64,
    /// Hotspot of the whole assembly, °C.
    pub assembly_peak_c: f64,
    /// Per-die peaks (label, °C).
    pub per_die_c: Vec<(String, f64)>,
}

impl ThermalReport {
    /// Builds the report from a solved field.
    pub fn from_field(model: &ThermalModel, field: &TemperatureField) -> ThermalReport {
        let mut per_die = Vec::new();
        let mut logic_peak = f64::NEG_INFINITY;
        let mut mem_peak = f64::NEG_INFINITY;
        for die in &model.dies {
            let t = field.peak_in(die.z_layer, die.x_range, die.y_range);
            if die.is_logic {
                logic_peak = logic_peak.max(t);
            } else {
                mem_peak = mem_peak.max(t);
            }
            per_die.push((die.label.clone(), t));
        }
        ThermalReport {
            tech: model.tech,
            logic_peak_c: logic_peak,
            mem_peak_c: mem_peak,
            assembly_peak_c: field.peak(),
            per_die_c: per_die,
        }
    }
}

/// Algorithm version of the thermal stage (model build + SOR solve).
/// Bump whenever the mesh, boundary conditions, solver tolerances, or
/// the serialized shape of [`ThermalReport`] changes.
pub const THERMAL_STAGE_VERSION: u32 = 1;

/// The spec fields the thermal stage actually consumes. The model is
/// built from the stacking style and the technology's fixed geometry
/// (`ThermalModel::for_spec` reads nothing else), so every electrical
/// override — loss tangent, wire rules, dielectric constant — shares
/// one solve.
pub const THERMAL_PROJECTION: &[SpecField] = &[SpecField::Kind, SpecField::Stacking];

/// The thermal stage's store key for `spec`.
pub fn thermal_store_key(spec: &InterposerSpec) -> StoreKey {
    techlib::store::projection_key(
        "thermal",
        THERMAL_STAGE_VERSION,
        spec,
        THERMAL_PROJECTION,
        &[],
    )
}

/// JSON codec for persisted thermal reports.
fn thermal_codec() -> Codec<ThermalReport> {
    Codec {
        encode: |report| serde_json::to_string(report).ok(),
        decode: |text| serde_json::from_str_typed(text).ok(),
    }
}

/// A per-scenario thermal-report cache: one memo cell per technology
/// (the field is deterministic and each solve takes ~a second). Only
/// **successes** are memoised — an error (including one injected at the
/// `thermal.solve` fault site) is returned to the caller and the next
/// call re-solves, so failures never poison the cache.
#[derive(Debug, Default)]
pub struct ThermalCache {
    cells: [ArcMemo<ThermalReport>; InterposerKind::COUNT],
    computes: AtomicUsize,
}

impl ThermalCache {
    /// Creates an empty cache.
    pub const fn new() -> ThermalCache {
        ThermalCache {
            cells: [const { ArcMemo::new() }; InterposerKind::COUNT],
            computes: AtomicUsize::new(0),
        }
    }

    /// The cached report for `spec` (keyed by `spec.kind`), solving on
    /// first use.
    ///
    /// # Errors
    ///
    /// Same as [`ThermalModel::for_spec`] and [`solve`], plus the
    /// `thermal.solve` fault site (checked before the cache so an armed
    /// fault always fires).
    pub fn analyze(&self, spec: &InterposerSpec) -> Result<Arc<ThermalReport>, ThermalError> {
        self.analyze_via(spec, None)
    }

    /// [`analyze`](ThermalCache::analyze) with an optional shared
    /// artifact store behind this cache's own cell, keyed by
    /// [`thermal_store_key`]. The `thermal.solve` fault site stays ahead
    /// of *both* tiers, so an armed fault fires without ever touching
    /// shared state — fault-armed scenarios are additionally given no
    /// store at all by the batch layer.
    ///
    /// # Errors
    ///
    /// Same as [`analyze`](ThermalCache::analyze); errors reach neither
    /// the cache nor the store.
    pub fn analyze_via(
        &self,
        spec: &InterposerSpec,
        store: Option<&ArtifactStore>,
    ) -> Result<Arc<ThermalReport>, ThermalError> {
        if techlib::faults::armed("thermal.solve") {
            return Err(ThermalError::NoConvergence {
                iterations: 0,
                residual_k: f64::INFINITY,
                tolerance_k: SolveConfig::default().tolerance_k,
            });
        }
        let cell = &self.cells[spec.kind.index()];
        let compute = || {
            self.computes.fetch_add(1, Ordering::Relaxed);
            let model = ThermalModel::for_spec(spec)?;
            let field = solve(&model, &SolveConfig::default())?;
            Ok(ThermalReport::from_field(&model, &field))
        };
        match store {
            Some(store) => cell.get_or_try_arc(|| {
                store
                    .get_or_compute(thermal_store_key(spec), &thermal_codec(), compute)
                    .map(|(report, _)| report)
            }),
            None => cell.get_or_try_arc(|| compute().map(Arc::new)),
        }
    }

    /// How many thermal solves this cache has actually run (cache hits
    /// — local or store — don't count; failed computes do).
    pub fn compute_count(&self) -> usize {
        self.computes.load(Ordering::Relaxed)
    }

    /// Forgets every cached report so the next call re-solves.
    /// Outstanding [`Arc`] handles stay valid on their own.
    pub fn reset(&self) {
        for cell in &self.cells {
            cell.reset();
        }
    }
}

/// The process-wide cache behind [`analyze_tech`], serving the **paper
/// default** specs. The default study context clones this handle, so the
/// legacy path and the default-scenario path share one set of solves.
pub fn default_thermal_cache() -> Arc<ThermalCache> {
    static DEFAULT: OnceLock<Arc<ThermalCache>> = OnceLock::new();
    Arc::clone(DEFAULT.get_or_init(|| Arc::new(ThermalCache::new())))
}

/// Solves and reports one technology through the shared default cache.
/// Shim over [`default_thermal_cache`] — scenario code uses a
/// per-scenario [`ThermalCache`] instead.
///
/// # Errors
///
/// Same as [`ThermalCache::analyze`].
pub fn analyze_tech(tech: InterposerKind) -> Result<ThermalReport, ThermalError> {
    default_thermal_cache()
        .analyze(&InterposerSpec::for_kind(tech))
        .map(|r| (*r).clone())
}

/// Forgets every report in the **default** cache so the next
/// [`analyze_tech`] call re-solves. Test-only escape hatch.
pub fn reset_report_cache_for_tests() {
    default_thermal_cache().reset();
}

/// The full Fig. 17 family (all six packaged assemblies).
///
/// # Errors
///
/// Returns the first [`ThermalError`] encountered, in Fig. 17 order.
pub fn figure17() -> Result<Vec<ThermalReport>, ThermalError> {
    [
        InterposerKind::Glass25D,
        InterposerKind::Glass3D,
        InterposerKind::Silicon25D,
        InterposerKind::Silicon3D,
        InterposerKind::Shinko,
        InterposerKind::Apx,
    ]
    .iter()
    .map(|&t| analyze_tech(t))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AMBIENT_C;

    #[test]
    fn glass3d_memory_is_the_hottest_chiplet_of_the_study() {
        // Fig. 17: embedded memory at 34 °C versus 22–23 °C elsewhere.
        let g3 = analyze_tech(InterposerKind::Glass3D).unwrap();
        for other in [
            InterposerKind::Glass25D,
            InterposerKind::Silicon25D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            let r = analyze_tech(other).unwrap();
            assert!(
                g3.mem_peak_c > r.mem_peak_c,
                "{other}: {} vs {}",
                g3.mem_peak_c,
                r.mem_peak_c
            );
        }
    }

    #[test]
    fn glass3d_temperatures_match_fig17_scale() {
        let g3 = analyze_tech(InterposerKind::Glass3D).unwrap();
        // Paper: memory 34 °C, logic 27 °C at 20 °C-class ambient.
        assert!(
            (28.0..42.0).contains(&g3.mem_peak_c),
            "mem = {}",
            g3.mem_peak_c
        );
        assert!(
            (23.0..33.0).contains(&g3.logic_peak_c),
            "logic = {}",
            g3.logic_peak_c
        );
        assert!(g3.mem_peak_c > g3.logic_peak_c + 2.0);
    }

    #[test]
    fn logic_chiplets_sit_in_the_27_to_29_band() {
        for tech in [
            InterposerKind::Glass25D,
            InterposerKind::Silicon25D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            let r = analyze_tech(tech).unwrap();
            assert!(
                (23.0..33.0).contains(&r.logic_peak_c),
                "{tech}: logic = {}",
                r.logic_peak_c
            );
            assert!(r.logic_peak_c > r.mem_peak_c, "{tech}");
        }
    }

    #[test]
    fn non_glass3d_memory_stays_cool() {
        // Fig. 17: 22–23 °C for side-by-side memory chiplets.
        for tech in [InterposerKind::Silicon25D, InterposerKind::Shinko] {
            let r = analyze_tech(tech).unwrap();
            assert!(
                (AMBIENT_C + 1.0..AMBIENT_C + 7.0).contains(&r.mem_peak_c),
                "{tech}: mem = {}",
                r.mem_peak_c
            );
        }
    }

    #[test]
    fn si3d_stack_runs_hotter_than_si25d() {
        // The conclusion's trade-off: Silicon 3D "suffers from higher
        // thermal dissipation".
        let s3 = analyze_tech(InterposerKind::Silicon3D).unwrap();
        let s25 = analyze_tech(InterposerKind::Silicon25D).unwrap();
        assert!(s3.assembly_peak_c > s25.assembly_peak_c);
    }

    #[test]
    fn silicon_interposer_spreads_heat_best_among_25d() {
        // Fig. 18: silicon's hotspots merge and flatten; glass traps heat
        // under the chiplets.
        let si = analyze_tech(InterposerKind::Silicon25D).unwrap();
        let gl = analyze_tech(InterposerKind::Glass25D).unwrap();
        assert!(si.assembly_peak_c < gl.assembly_peak_c);
    }
}

#[cfg(test)]
mod diag {
    use super::*;
    #[test]
    fn print_all_temps() {
        for r in figure17().unwrap() {
            eprintln!(
                "{:<14} logic {:>6.2} mem {:>6.2} assembly {:>6.2}",
                r.tech.label(),
                r.logic_peak_c,
                r.mem_peak_c,
                r.assembly_peak_c
            );
        }
    }
}
