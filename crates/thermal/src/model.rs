//! Voxelised thermal models of the six assemblies.
//!
//! The domain is a uniform x/y grid (50 µm cells) with a non-uniform z
//! stack. Each voxel carries anisotropic effective conductivities: metal
//! density boosts lateral conduction in RDL layers, and via copper (TGV
//! rings, PTH fields, micro-bump joints) boosts vertical conduction where
//! vias exist — which is exactly why the glass-embedded memory die runs
//! hot: no TGVs run underneath it, so its heat must detour through the
//! RDL to the peripheral TGV ring (Section VII-G).

use crate::ThermalError;
use serde::Serialize;
use techlib::material;
use techlib::spec::{InterposerKind, Stacking};

/// Lateral cell size, m.
pub const CELL_XY_M: f64 = 50e-6;

/// Power of one logic chiplet, W (Table III).
pub const LOGIC_POWER_W: f64 = 0.142;
/// Power of one memory chiplet, W (Table III).
pub const MEM_POWER_W: f64 = 0.046;

/// A die footprint in the thermal grid (for power injection/reporting).
#[derive(Debug, Clone, Serialize)]
pub struct DieRegion {
    /// `"logic0"`, `"mem1"`, ...
    pub label: String,
    /// True for logic chiplets.
    pub is_logic: bool,
    /// z-layer index of the die body.
    pub z_layer: usize,
    /// Cell range `[x0, x1)`.
    pub x_range: (usize, usize),
    /// Cell range `[y0, y1)`.
    pub y_range: (usize, usize),
}

/// The voxelised model.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    /// Technology.
    pub tech: InterposerKind,
    /// Cells in x.
    pub nx: usize,
    /// Cells in y.
    pub ny: usize,
    /// z-layer thicknesses, m (bottom first).
    pub dz_m: Vec<f64>,
    /// Lateral conductivity per voxel, W/(m·K), index `[z][y*nx+x]`.
    pub k_xy: Vec<Vec<f64>>,
    /// Vertical conductivity per voxel.
    pub k_z: Vec<Vec<f64>>,
    /// Injected power per voxel, W.
    pub power: Vec<Vec<f64>>,
    /// Die regions for reporting.
    pub dies: Vec<DieRegion>,
    /// Cells of the top layer that are exposed die surface (cooled at the
    /// die-top effective coefficient instead of plain ambient air).
    pub top_die_mask: Vec<bool>,
}

impl ThermalModel {
    /// Marks the top-layer cells covered by dies whose body sits in the
    /// top layer (the exposed flip-chip die backs).
    fn build_top_mask(nx: usize, ny: usize, nz: usize, dies: &[DieRegion]) -> Vec<bool> {
        let mut mask = vec![false; nx * ny];
        for d in dies {
            if d.z_layer == nz - 1 {
                for y in d.y_range.0..d.y_range.1 {
                    for x in d.x_range.0..d.x_range.1 {
                        mask[y * nx + x] = true;
                    }
                }
            }
        }
        mask
    }

    /// Number of z layers.
    pub fn nz(&self) -> usize {
        self.dz_m.len()
    }

    /// Total injected power, W.
    pub fn total_power_w(&self) -> f64 {
        self.power.iter().flatten().sum()
    }

    /// Builds the model for `tech`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnsupportedTech`] for the monolithic
    /// baseline (not part of the thermal study).
    pub fn for_tech(tech: InterposerKind) -> Result<ThermalModel, ThermalError> {
        ThermalModel::for_spec(&techlib::spec::InterposerSpec::for_kind(tech))
    }

    /// [`ThermalModel::for_tech`] against an explicit (possibly
    /// overridden) spec: the assembly cross-section is dispatched on the
    /// spec's stacking style rather than the enum default.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::UnsupportedTech`] for monolithic stacking.
    pub fn for_spec(spec: &techlib::spec::InterposerSpec) -> Result<ThermalModel, ThermalError> {
        match spec.stacking {
            Stacking::Monolithic => Err(ThermalError::UnsupportedTech(spec.kind)),
            Stacking::TsvStack => Ok(build_si3d()),
            Stacking::Embedded => Ok(build_glass3d()),
            Stacking::SideBySide => Ok(build_2p5d(spec.kind)),
        }
    }
}

/// Die placements (µm) reused from the interposer study without pulling
/// in the router: footprint and die origins per technology.
/// A die footprint on the floorplan: `(x_um, y_um, width_um, is_logic, tile)`.
type DieRect = (f64, f64, f64, bool, usize);

fn placement_2p5d(tech: InterposerKind) -> ((f64, f64), Vec<DieRect>) {
    // (footprint, [(x0, y0, width, is_logic, tile)])
    let (w_logic, w_mem, fp, mx, my, gap) = match tech {
        InterposerKind::Glass25D => (820.0, 775.0, (2200.0, 2200.0), 255.0, 230.0, 100.0),
        InterposerKind::Silicon25D => (940.0, 820.0, (2200.0, 2200.0), 170.0, 110.0, 100.0),
        InterposerKind::Shinko => (940.0, 820.0, (2500.0, 2500.0), 320.0, 260.0, 100.0),
        InterposerKind::Apx => (1150.0, 1000.0, (3200.0, 2700.0), 450.0, 125.0, 150.0),
        _ => unreachable!("2.5D placements only"),
    };
    let dies = vec![
        (mx, my, w_logic, true, 0),
        (mx + w_logic + gap, my, w_mem, false, 0),
        (mx, my + w_logic + gap, w_logic, true, 1),
        (mx + w_logic + gap, my + w_logic + gap, w_mem, false, 1),
    ];
    (fp, dies)
}

struct LayerSpec {
    dz_m: f64,
    k_xy: f64,
    k_z: f64,
}

fn grid_for(fp_um: (f64, f64)) -> (usize, usize) {
    (
        (fp_um.0 * 1e-6 / CELL_XY_M).round() as usize,
        (fp_um.1 * 1e-6 / CELL_XY_M).round() as usize,
    )
}

/// Per-layer conductivity/power fields: `(k_xy, k_z, power, dz)`.
type LayerFields = (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<f64>);

fn blank(nx: usize, ny: usize, layers: &[LayerSpec]) -> LayerFields {
    let k_xy = layers.iter().map(|l| vec![l.k_xy; nx * ny]).collect();
    let k_z = layers.iter().map(|l| vec![l.k_z; nx * ny]).collect();
    let power = layers.iter().map(|_| vec![0.0; nx * ny]).collect();
    let dz = layers.iter().map(|l| l.dz_m).collect();
    (k_xy, k_z, power, dz)
}

fn cells_of(range_um: (f64, f64), n: usize) -> (usize, usize) {
    let a = ((range_um.0 * 1e-6 / CELL_XY_M).floor() as usize).min(n - 1);
    let b = ((range_um.1 * 1e-6 / CELL_XY_M).ceil() as usize).clamp(a + 1, n);
    (a, b)
}

/// Injects `total_w` into the die's voxels with a centre-weighted 8×8
/// power map (hotspot factor 1.5 at the middle, as the paper's CTM uses).
fn inject_power(power: &mut [f64], nx: usize, x: (usize, usize), y: (usize, usize), total_w: f64) {
    let (x0, x1) = x;
    let (y0, y1) = y;
    let w = (x1 - x0) as f64;
    let h = (y1 - y0) as f64;
    let mut weights = Vec::with_capacity((x1 - x0) * (y1 - y0));
    for yy in y0..y1 {
        for xx in x0..x1 {
            let fx = (xx - x0) as f64 / w - 0.5;
            let fy = (yy - y0) as f64 / h - 0.5;
            let r2 = fx * fx + fy * fy;
            weights.push(1.0 + 0.5 * (-r2 * 8.0).exp());
        }
    }
    let sum: f64 = weights.iter().sum();
    let mut i = 0;
    for yy in y0..y1 {
        for xx in x0..x1 {
            power[yy * nx + xx] += total_w * weights[i] / sum;
            i += 1;
        }
    }
}

const K_EMPTY: f64 = 0.1; // overmold/air gap around dies
const K_RDL_XY: f64 = 120.0; // ~30 % copper density
const K_RDL_Z: f64 = 8.0; // microvia copper fraction
const K_BUMP_Z: f64 = 9.0; // solder joint + underfill
const K_BUMP_XY: f64 = 0.5;
const TGV_RING_K_Z: f64 = 13.0; // 3 % TGV copper in the peripheral ring
const PTH_K_Z: f64 = 8.35; // 2 % PTH copper in organic cores
/// Vertical conductivity of the cavity-top interface over the embedded
/// die: DAF/polymer crossed only by the signal microvias (<0.5 % copper).
/// This is the resistance that traps the embedded die's heat (Fig. 17).
const K_CAVITY_IFACE_Z: f64 = 0.10;
/// Vertical conductivity of the ball-field layer where no balls land
/// (air gap under the embedded stacks).
const K_BALL_AIR_Z: f64 = 0.15;

fn build_2p5d(tech: InterposerKind) -> ThermalModel {
    let (fp, dies_um) = placement_2p5d(tech);
    let (nx, ny) = grid_for(fp);
    let k_si = material::SILICON.thermal_conductivity_w_mk;
    let (core_k, core_kz, core_t) = match tech {
        InterposerKind::Glass25D => (
            material::GLASS_ENA1.thermal_conductivity_w_mk,
            material::GLASS_ENA1.thermal_conductivity_w_mk,
            155e-6,
        ),
        InterposerKind::Silicon25D => (k_si, k_si, 100e-6),
        _ => (
            material::ORGANIC_CORE.thermal_conductivity_w_mk + 4.0,
            PTH_K_Z,
            400e-6,
        ),
    };
    let rdl_t: f64 = match tech {
        InterposerKind::Glass25D => 133e-6,
        InterposerKind::Silicon25D => 10e-6,
        InterposerKind::Shinko => 35e-6,
        _ => 160e-6,
    };
    // Bottom → top: core, RDL, bump/underfill, die body.
    let layers = [
        LayerSpec {
            dz_m: core_t / 2.0,
            k_xy: core_k,
            k_z: core_kz,
        },
        LayerSpec {
            dz_m: core_t / 2.0,
            k_xy: core_k,
            k_z: core_kz,
        },
        LayerSpec {
            dz_m: rdl_t.max(10e-6),
            k_xy: K_RDL_XY,
            k_z: K_RDL_Z,
        },
        LayerSpec {
            dz_m: 20e-6,
            k_xy: K_BUMP_XY,
            k_z: K_BUMP_Z,
        },
        LayerSpec {
            dz_m: 150e-6,
            k_xy: K_EMPTY,
            k_z: K_EMPTY,
        },
    ];
    let (mut k_xy, mut k_z, mut power, dz) = blank(nx, ny, &layers);
    let die_layer = 4;

    // Peripheral TGV/TSV ring on glass: boost vertical core conduction
    // outside the die shadow.
    if tech == InterposerKind::Glass25D {
        for layer_k_z in k_z.iter_mut().take(2) {
            for yy in 0..ny {
                for xx in 0..nx {
                    let x_um = xx as f64 * CELL_XY_M * 1e6;
                    let y_um = yy as f64 * CELL_XY_M * 1e6;
                    let under_die = dies_um.iter().any(|&(dx, dy, w, _, _)| {
                        x_um >= dx && x_um < dx + w && y_um >= dy && y_um < dy + w
                    });
                    if !under_die {
                        layer_k_z[yy * nx + xx] = TGV_RING_K_Z;
                    }
                }
            }
        }
    }

    let mut dies = Vec::new();
    for (i, &(dx, dy, w, is_logic, tile)) in dies_um.iter().enumerate() {
        let x = cells_of((dx, dx + w), nx);
        let y = cells_of((dy, dy + w), ny);
        for yy in y.0..y.1 {
            for xx in x.0..x.1 {
                k_xy[die_layer][yy * nx + xx] = k_si;
                k_z[die_layer][yy * nx + xx] = k_si;
            }
        }
        inject_power(
            &mut power[die_layer],
            nx,
            x,
            y,
            if is_logic { LOGIC_POWER_W } else { MEM_POWER_W },
        );
        let _ = i;
        dies.push(DieRegion {
            label: format!("{}{tile}", if is_logic { "logic" } else { "mem" }),
            is_logic,
            z_layer: die_layer,
            x_range: x,
            y_range: y,
        });
    }

    let top_die_mask = ThermalModel::build_top_mask(nx, ny, dz.len(), &dies);
    ThermalModel {
        tech,
        nx,
        ny,
        dz_m: dz,
        k_xy,
        k_z,
        power,
        dies,
        top_die_mask,
    }
}

fn build_glass3d() -> ThermalModel {
    let fp = (1840.0, 1020.0);
    let (nx, ny) = grid_for(fp);
    let k_glass = material::GLASS_ENA1.thermal_conductivity_w_mk;
    let k_si = material::SILICON.thermal_conductivity_w_mk;
    // Bottom → top: the BGA ball field (balls land only where TGVs
    // emerge — the periphery — so the region under each embedded stack is
    // an air gap), the glass shell below the cavities, the cavity layer
    // (glass with the embedded memory dies), the cavity-top interface
    // (DAF/polymer with *sparse* microvias — the embedded die's only
    // thermal link to the RDL, and the reason it runs hot), the RDL, the
    // micro-bump field, and the flip-chip logic dies.
    let layers = [
        LayerSpec {
            dz_m: 60e-6,
            k_xy: 0.1,
            k_z: K_BALL_AIR_Z,
        },
        LayerSpec {
            dz_m: 40e-6,
            k_xy: k_glass,
            k_z: k_glass,
        },
        LayerSpec {
            dz_m: 150e-6,
            k_xy: k_glass,
            k_z: k_glass,
        },
        LayerSpec {
            dz_m: 15e-6,
            k_xy: 0.3,
            k_z: K_CAVITY_IFACE_Z,
        },
        LayerSpec {
            dz_m: 60e-6,
            k_xy: K_RDL_XY,
            k_z: K_RDL_Z,
        },
        LayerSpec {
            dz_m: 20e-6,
            k_xy: K_BUMP_XY,
            k_z: K_BUMP_Z,
        },
        LayerSpec {
            dz_m: 150e-6,
            k_xy: K_EMPTY,
            k_z: K_EMPTY,
        },
    ];
    let (mut k_xy, mut k_z, mut power, dz) = blank(nx, ny, &layers);
    let ball_layer = 0;
    let cavity_layer = 2;
    let iface_layer = 3;
    let die_layer = 6;

    let stacks = [(50.0, 100.0, 0usize), (970.0, 100.0, 1usize)];
    let w = 820.0;
    let mut dies = Vec::new();
    for &(sx, sy, tile) in &stacks {
        let x = cells_of((sx, sx + w), nx);
        let y = cells_of((sy, sy + w), ny);
        // Embedded memory die: silicon body inside the cavity, DAF
        // underneath (folded into the shell), sparse-via interface above.
        for yy in y.0..y.1 {
            for xx in x.0..x.1 {
                k_xy[cavity_layer][yy * nx + xx] = k_si;
                k_z[cavity_layer][yy * nx + xx] = k_si;
                k_xy[die_layer][yy * nx + xx] = k_si;
                k_z[die_layer][yy * nx + xx] = k_si;
            }
        }
        // Heat applied to the top of the embedded die and the bottom of
        // the flip-chip die (the paper's source placement) — both sit at
        // their respective layer bodies here.
        inject_power(&mut power[cavity_layer], nx, x, y, MEM_POWER_W);
        inject_power(&mut power[die_layer], nx, x, y, LOGIC_POWER_W);
        dies.push(DieRegion {
            label: format!("mem{tile}"),
            is_logic: false,
            z_layer: cavity_layer,
            x_range: x,
            y_range: y,
        });
        dies.push(DieRegion {
            label: format!("logic{tile}"),
            is_logic: true,
            z_layer: die_layer,
            x_range: x,
            y_range: y,
        });
    }
    // Outside the stack shadow: the TGV ring boosts the vertical path
    // through the shell/cavity glass, and the interface layer is
    // via-rich (the logic dies' heat exits this way after spreading
    // laterally in the RDL).
    for yy in 0..ny {
        for xx in 0..nx {
            let x_um = xx as f64 * CELL_XY_M * 1e6;
            let y_um = yy as f64 * CELL_XY_M * 1e6;
            let in_stack = stacks
                .iter()
                .any(|&(sx, sy, _)| x_um >= sx && x_um < sx + w && y_um >= sy && y_um < sy + w);
            if !in_stack {
                for zi in [1usize, 2] {
                    if k_z[zi][yy * nx + xx] < TGV_RING_K_Z {
                        k_z[zi][yy * nx + xx] = TGV_RING_K_Z;
                    }
                }
                k_z[iface_layer][yy * nx + xx] = TGV_RING_K_Z;
                // Solder balls + underfill where TGVs emerge.
                k_z[ball_layer][yy * nx + xx] = K_BUMP_Z;
                k_xy[ball_layer][yy * nx + xx] = K_BUMP_XY;
                // DAF-lined cavity sidewall: the first cell ring around a
                // cavity blocks the embedded die's lateral escape.
                let near_stack = stacks.iter().any(|&(sx, sy, _)| {
                    x_um >= sx - 60.0
                        && x_um < sx + w + 60.0
                        && y_um >= sy - 60.0
                        && y_um < sy + w + 60.0
                });
                if near_stack {
                    k_xy[cavity_layer][yy * nx + xx] = 0.4;
                }
            }
        }
    }

    let top_die_mask = ThermalModel::build_top_mask(nx, ny, dz.len(), &dies);
    ThermalModel {
        tech: InterposerKind::Glass3D,
        nx,
        ny,
        dz_m: dz,
        k_xy,
        k_z,
        power,
        dies,
        top_die_mask,
    }
}

fn build_si3d() -> ThermalModel {
    let fp = (940.0, 940.0);
    let (nx, ny) = grid_for(fp);
    let k_si = material::SILICON.thermal_conductivity_w_mk;
    // Bottom → top per Fig. 5: mem0, bond, logic0, bond, logic1, bond,
    // mem1 (all tiers thinned to 20 µm except the top die).
    let die = |t: f64| LayerSpec {
        dz_m: t,
        k_xy: k_si,
        k_z: k_si,
    };
    let bond = LayerSpec {
        dz_m: 15e-6,
        k_xy: K_BUMP_XY,
        k_z: K_BUMP_Z,
    };
    let layers = [
        die(50e-6),
        LayerSpec {
            dz_m: 15e-6,
            ..bond
        },
        die(20e-6),
        LayerSpec {
            dz_m: 15e-6,
            ..bond
        },
        die(20e-6),
        LayerSpec {
            dz_m: 15e-6,
            ..bond
        },
        die(150e-6),
    ];
    let (k_xy, k_z, mut power, dz) = blank(nx, ny, &layers);
    let full_x = (0, nx);
    let full_y = (0, ny);
    let tiers = [
        ("mem0", false, 0usize, MEM_POWER_W),
        ("logic0", true, 2, LOGIC_POWER_W),
        ("logic1", true, 4, LOGIC_POWER_W),
        ("mem1", false, 6, MEM_POWER_W),
    ];
    let mut dies = Vec::new();
    for &(label, is_logic, z, p) in &tiers {
        inject_power(&mut power[z], nx, full_x, full_y, p);
        dies.push(DieRegion {
            label: label.to_string(),
            is_logic,
            z_layer: z,
            x_range: full_x,
            y_range: full_y,
        });
    }
    let top_die_mask = ThermalModel::build_top_mask(nx, ny, dz.len(), &dies);
    ThermalModel {
        tech: InterposerKind::Silicon3D,
        nx,
        ny,
        dz_m: dz,
        k_xy,
        k_z,
        power,
        dies,
        top_die_mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_conserve_power() {
        for tech in [
            InterposerKind::Glass25D,
            InterposerKind::Glass3D,
            InterposerKind::Silicon25D,
            InterposerKind::Silicon3D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            let m = ThermalModel::for_tech(tech).unwrap();
            let expect = 2.0 * (LOGIC_POWER_W + MEM_POWER_W);
            assert!(
                (m.total_power_w() - expect).abs() < 1e-9,
                "{tech}: {} W",
                m.total_power_w()
            );
        }
    }

    #[test]
    fn four_dies_everywhere() {
        for tech in [
            InterposerKind::Glass25D,
            InterposerKind::Glass3D,
            InterposerKind::Silicon3D,
        ] {
            let m = ThermalModel::for_tech(tech).unwrap();
            assert_eq!(m.dies.len(), 4, "{tech}");
            assert_eq!(m.dies.iter().filter(|d| d.is_logic).count(), 2);
        }
    }

    #[test]
    fn glass3d_memory_sits_in_the_cavity_layer() {
        let m = ThermalModel::for_tech(InterposerKind::Glass3D).unwrap();
        let mem = m.dies.iter().find(|d| d.label == "mem0").unwrap();
        let logic = m.dies.iter().find(|d| d.label == "logic0").unwrap();
        assert!(mem.z_layer < logic.z_layer);
    }

    #[test]
    fn conductivities_are_positive() {
        let m = ThermalModel::for_tech(InterposerKind::Apx).unwrap();
        for z in 0..m.nz() {
            for &k in m.k_xy[z].iter().chain(&m.k_z[z]) {
                assert!(k > 0.0);
            }
        }
    }

    #[test]
    fn monolithic_is_rejected() {
        assert!(matches!(
            ThermalModel::for_tech(InterposerKind::Monolithic2D),
            Err(crate::ThermalError::UnsupportedTech(_))
        ));
    }
}
