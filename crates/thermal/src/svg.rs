//! SVG heat-map rendering of solved temperature fields (Fig. 18 views).

use crate::solver::TemperatureField;
use crate::AMBIENT_C;
use std::fmt::Write as _;

/// Maps a normalised value in [0, 1] onto a blue→red thermal palette.
fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let r = (255.0 * t.powf(0.7)) as u8;
    let g = (150.0 * (1.0 - (2.0 * t - 1.0).abs())) as u8;
    let b = (255.0 * (1.0 - t).powf(0.7)) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Renders one z-layer of the field as an SVG heat map.
///
/// `cell_px` is the pixel size of one thermal cell. The colour scale runs
/// from ambient to the layer's own peak.
pub fn render_layer(field: &TemperatureField, z: usize, cell_px: f64) -> String {
    let layer = &field.layers[z];
    let t_max = layer.iter().cloned().fold(AMBIENT_C + 0.1, f64::max);
    let (nx, ny) = (field.nx, field.ny);
    let (w, h) = (nx as f64 * cell_px, ny as f64 * cell_px);
    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.1} {h:.1}">"##
    );
    for y in 0..ny {
        for x in 0..nx {
            let t = layer[y * nx + x];
            let norm = (t - AMBIENT_C) / (t_max - AMBIENT_C);
            let _ = writeln!(
                out,
                r##"<rect x="{:.1}" y="{:.1}" width="{cell_px:.1}" height="{cell_px:.1}" fill="{}"/>"##,
                x as f64 * cell_px,
                y as f64 * cell_px,
                heat_color(norm)
            );
        }
    }
    let _ = writeln!(
        out,
        r##"<text x="4" y="14" font-size="12" fill="#fff">peak {t_max:.1}&#176;C</text>"##
    );
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ThermalModel;
    use crate::solver::{solve, SolveConfig};
    use techlib::spec::InterposerKind;

    #[test]
    fn renders_a_heat_map() {
        let model = ThermalModel::for_tech(InterposerKind::Glass3D).unwrap();
        let field = solve(&model, &SolveConfig::default()).unwrap();
        let svg = render_layer(&field, model.nz() - 1, 4.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("peak"));
        assert_eq!(
            svg.matches("<rect").count(),
            field.nx * field.ny,
            "one rect per cell"
        );
    }

    #[test]
    fn palette_endpoints() {
        assert_eq!(heat_color(0.0), "#0000ff");
        assert_eq!(heat_color(1.0), "#ff0000");
        // Midpoint is warm-green.
        assert!(heat_color(0.5).len() == 7);
    }
}
