//! STA-lite achieved-frequency model (Table III Fmax).
//!
//! Every design targets 700 MHz. The achieved frequency is set by the
//! critical path: a base combinational-depth delay plus a wire-delay term
//! proportional to the average routed net length, plus a small
//! deterministic per-design jitter standing in for place-and-route noise
//! (the paper's per-design spread is <2 % and not systematic).

use crate::footprint::FootprintPlan;
use crate::wirelength;
use netlist::chiplet_netlist::{ChipletKind, ChipletNetlist};
use techlib::calib;
use techlib::spec::InterposerKind;

/// Achieved maximum frequency, MHz.
pub fn fmax_mhz(chiplet: &ChipletNetlist, footprint: &FootprintPlan, tech: InterposerKind) -> f64 {
    let base_ns = match chiplet.kind {
        ChipletKind::Logic => calib::BASE_PATH_DELAY_LOGIC_NS,
        ChipletKind::Memory => calib::BASE_PATH_DELAY_MEM_NS,
    };
    let avg_net = wirelength::average_net_length_um(chiplet, footprint, tech);
    let wire_ns = calib::PATH_WIRE_DELAY_COEFF * avg_net;
    let jitter = 1.0 + 0.006 * calib::design_jitter(&format!("fmax-{tech}-{}", chiplet.kind));
    let period_ns = (base_ns + wire_ns) * jitter;
    1e3 / period_ns
}

/// Worst negative slack against the 700 MHz target, ns (negative = miss).
pub fn slack_ns(fmax_mhz: f64) -> f64 {
    let target_period = 1e3 / (calib::TARGET_FREQ_HZ / 1e6);
    let achieved_period = 1e3 / fmax_mhz;
    target_period - achieved_period
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bumpmap::BumpPlan;
    use crate::footprint;
    use netlist::chiplet_netlist::chipletize;
    use netlist::openpiton::two_tile_openpiton;
    use netlist::partition::hierarchical_l3_split;
    use netlist::serdes::SerdesPlan;
    use techlib::spec::InterposerSpec;

    fn netlists() -> (ChipletNetlist, ChipletNetlist) {
        let d = two_tile_openpiton();
        let p = hierarchical_l3_split(&d).unwrap();
        chipletize(&d, &p, &SerdesPlan::paper())
    }

    fn fmax(chiplet: &ChipletNetlist, tech: InterposerKind) -> f64 {
        let spec = InterposerSpec::for_kind(tech);
        let bumps = BumpPlan::for_design(chiplet.signal_pins, chiplet.kind, &spec);
        let fp = footprint::solve(chiplet, &bumps, &spec, None);
        fmax_mhz(chiplet, &fp, tech)
    }

    #[test]
    fn all_designs_close_near_700mhz() {
        let (logic, mem) = netlists();
        for tech in InterposerKind::PACKAGED {
            let fl = fmax(&logic, tech);
            let fm = fmax(&mem, tech);
            // Paper range: 676–699 MHz.
            assert!((665.0..710.0).contains(&fl), "{tech} logic {fl}");
            assert!((665.0..710.0).contains(&fm), "{tech} mem {fm}");
        }
    }

    #[test]
    fn memory_closes_faster_than_logic() {
        let (logic, mem) = netlists();
        for tech in [InterposerKind::Glass25D, InterposerKind::Silicon25D] {
            assert!(fmax(&mem, tech) > fmax(&logic, tech), "{tech}");
        }
    }

    #[test]
    fn slack_sign_convention() {
        assert!(slack_ns(710.0) > 0.0);
        assert!(slack_ns(690.0) < 0.0);
        assert!(slack_ns(700.0).abs() < 1e-9);
    }

    #[test]
    fn fmax_is_deterministic() {
        let (logic, _) = netlists();
        assert_eq!(
            fmax(&logic, InterposerKind::Glass3D),
            fmax(&logic, InterposerKind::Glass3D)
        );
    }
}
