//! Footprint solving (Table II).
//!
//! A chiplet's die size is the larger of two constraints:
//!
//! 1. **Bump-limited** — the micro-bump array (side × pitch plus keepout)
//!    must fit every signal and P/G pin. This binds the logic chiplet on
//!    every technology (464 bumps at 35 µm pitch ⇒ 0.82 mm on glass).
//! 2. **Cell-area-limited** — placed cell area divided by the utilisation
//!    cap. This binds the memory chiplet on glass, whose bump array would
//!    otherwise push utilisation beyond the routable ceiling.
//!
//! Stacked configurations override both: the Glass 3D memory die matches
//! the logic die above it, and both Silicon 3D dies match the larger
//! footprint so the tiers align.

use crate::bumpmap::BumpPlan;
use netlist::chiplet_netlist::{ChipletKind, ChipletNetlist};
use serde::{Deserialize, Serialize};
use techlib::calib;
use techlib::cells::CellLibrary;
use techlib::spec::InterposerSpec;

/// Grid the footprint solver snaps die widths to, µm.
pub const FOOTPRINT_SNAP_UM: f64 = 5.0;

/// The solved footprint of one chiplet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FootprintPlan {
    /// Final die width (square die), µm.
    pub width_um: f64,
    /// The bump-limited width, µm.
    pub bump_limited_um: f64,
    /// The cell-area-limited width, µm.
    pub cell_limited_um: f64,
    /// Placed cell area (standard cells + AIB macros), µm².
    pub cell_area_um2: f64,
    /// True if the footprint was forced to match a stacking partner.
    pub matched: bool,
}

impl FootprintPlan {
    /// Die area, mm².
    pub fn area_mm2(&self) -> f64 {
        (self.width_um / 1e3).powi(2)
    }

    /// Placement utilisation at the final footprint.
    pub fn utilization(&self) -> f64 {
        self.cell_area_um2 / (self.width_um * self.width_um)
    }
}

/// Solves the footprint of `chiplet` on `spec`.
///
/// `match_width_um` forces the die to a stacking partner's width (Glass 3D
/// memory under logic; both Silicon 3D tiers).
pub fn solve(
    chiplet: &ChipletNetlist,
    bumps: &BumpPlan,
    _spec: &InterposerSpec,
    match_width_um: Option<f64>,
) -> FootprintPlan {
    let lib = CellLibrary::tsmc28_like();
    let cell_area = lib.population_area_um2(&chiplet.cells)
        + chiplet.signal_pins as f64 * calib::AIB_AREA_PER_SIGNAL_UM2;
    let util_cap = match chiplet.kind {
        ChipletKind::Logic => calib::LOGIC_UTIL_CAP,
        ChipletKind::Memory => calib::MEM_UTIL_CAP,
    };
    let bump_limited = bumps.bump_limited_width_um();
    let cell_limited = snap_up((cell_area / util_cap).sqrt());
    let (width, matched) = match match_width_um {
        Some(w) => (w.max(bump_limited).max(cell_limited), true),
        None => (bump_limited.max(cell_limited), false),
    };
    FootprintPlan {
        width_um: width,
        bump_limited_um: bump_limited,
        cell_limited_um: cell_limited,
        cell_area_um2: cell_area,
        matched,
    }
}

fn snap_up(w: f64) -> f64 {
    (w / FOOTPRINT_SNAP_UM).ceil() * FOOTPRINT_SNAP_UM
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bumpmap::BumpPlan;
    use netlist::chiplet_netlist::chipletize;
    use netlist::openpiton::two_tile_openpiton;
    use netlist::partition::hierarchical_l3_split;
    use netlist::serdes::SerdesPlan;
    use techlib::spec::InterposerKind;

    fn netlists() -> (ChipletNetlist, ChipletNetlist) {
        let d = two_tile_openpiton();
        let p = hierarchical_l3_split(&d).unwrap();
        chipletize(&d, &p, &SerdesPlan::paper())
    }

    fn plan(kind: InterposerKind, chiplet: &ChipletNetlist, matched: Option<f64>) -> FootprintPlan {
        let spec = InterposerSpec::for_kind(kind);
        let bumps = BumpPlan::for_design(chiplet.signal_pins, chiplet.kind, &spec);
        solve(chiplet, &bumps, &spec, matched)
    }

    #[test]
    fn glass_logic_is_bump_limited_at_820um() {
        let (logic, _) = netlists();
        let fp = plan(InterposerKind::Glass25D, &logic, None);
        assert_eq!(fp.width_um, 820.0);
        assert!(fp.bump_limited_um > fp.cell_limited_um);
        // Table III: 64.20 % utilisation.
        assert!(
            (fp.utilization() - 0.642).abs() < 0.02,
            "{}",
            fp.utilization()
        );
    }

    #[test]
    fn glass_memory_is_cell_limited_near_770um() {
        let (_, mem) = netlists();
        let fp = plan(InterposerKind::Glass25D, &mem, None);
        // Paper: 0.77–0.78 mm.
        assert!(
            (755.0..=790.0).contains(&fp.width_um),
            "width {}",
            fp.width_um
        );
        assert!(fp.cell_limited_um > fp.bump_limited_um);
        assert!((fp.utilization() - 0.8354).abs() < 0.03);
    }

    #[test]
    fn silicon_logic_is_940um_at_48_7_percent() {
        let (logic, _) = netlists();
        let fp = plan(InterposerKind::Silicon25D, &logic, None);
        assert_eq!(fp.width_um, 940.0);
        assert!((fp.utilization() - 0.487).abs() < 0.02);
    }

    #[test]
    fn silicon_memory_is_bump_limited_at_820um() {
        let (_, mem) = netlists();
        let fp = plan(InterposerKind::Silicon25D, &mem, None);
        assert_eq!(fp.width_um, 820.0);
        assert!((fp.utilization() - 0.7365).abs() < 0.03);
    }

    #[test]
    fn apx_chiplets_are_largest() {
        let (logic, mem) = netlists();
        let fl = plan(InterposerKind::Apx, &logic, None);
        let fm = plan(InterposerKind::Apx, &mem, None);
        assert_eq!(fl.width_um, 1150.0);
        assert_eq!(fm.width_um, 1000.0);
        // Table III: APX logic utilisation 34 %.
        assert!((fl.utilization() - 0.34).abs() < 0.03);
    }

    #[test]
    fn glass_3d_memory_matches_logic_footprint() {
        let (logic, mem) = netlists();
        let fl = plan(InterposerKind::Glass3D, &logic, None);
        let fm = plan(InterposerKind::Glass3D, &mem, Some(fl.width_um));
        assert_eq!(fm.width_um, fl.width_um);
        assert!(fm.matched);
        // Table III: 73.65 % for the matched glass 3D memory die.
        assert!((fm.utilization() - 0.7365).abs() < 0.03);
    }

    #[test]
    fn silicon_3d_memory_matches_logic_at_940um() {
        let (logic, mem) = netlists();
        let fl = plan(InterposerKind::Silicon3D, &logic, None);
        let fm = plan(InterposerKind::Silicon3D, &mem, Some(fl.width_um));
        assert_eq!(fl.width_um, 940.0);
        assert_eq!(fm.width_um, 940.0);
        assert!((fm.utilization() - 0.5605).abs() < 0.03);
    }

    #[test]
    fn area_ratios_match_table2() {
        let (logic, _) = netlists();
        let glass = plan(InterposerKind::Glass25D, &logic, None).area_mm2();
        let si = plan(InterposerKind::Silicon25D, &logic, None).area_mm2();
        let apx = plan(InterposerKind::Apx, &logic, None).area_mm2();
        assert!(((si / glass) - 1.31).abs() < 0.03, "{}", si / glass);
        assert!(((apx / glass) - 1.97).abs() < 0.05, "{}", apx / glass);
    }

    #[test]
    fn matching_never_shrinks_below_constraints() {
        let (_, mem) = netlists();
        let fp = plan(InterposerKind::Glass25D, &mem, Some(100.0));
        assert!(fp.width_um >= fp.bump_limited_um);
        assert!(fp.width_um >= fp.cell_limited_um);
    }
}
