//! Simulated-annealing cluster placement.
//!
//! The flow's placer works at cluster granularity: the chiplet netlist is
//! condensed into a few hundred clusters with Rent-style connectivity, the
//! AIB I/O macros are pre-placed next to their micro-bumps (as the paper
//! describes), and an annealer minimises half-perimeter wirelength (HPWL).
//! The placer's HPWL validates the analytic routed-wirelength model of
//! [`crate::wirelength`] and feeds the macro-planning ablation bench.

use netlist::chiplet_netlist::ChipletNetlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// A placeable cluster.
#[derive(Debug, Clone, Serialize)]
pub struct Cluster {
    /// Cluster area, µm².
    pub area_um2: f64,
    /// Fixed location (AIB macros pinned to the bump field), or `None` for
    /// movable clusters.
    pub fixed: Option<(f64, f64)>,
}

/// A placement problem: clusters, multi-pin nets, and a square die.
#[derive(Debug, Clone, Serialize)]
pub struct PlacementProblem {
    /// Die width (square), µm.
    pub die_um: f64,
    /// Clusters to place.
    pub clusters: Vec<Cluster>,
    /// Nets as cluster-index sets (2+ pins each).
    pub nets: Vec<Vec<usize>>,
}

/// A finished placement.
#[derive(Debug, Clone, Serialize)]
pub struct Placement {
    /// Cluster centre coordinates, µm.
    pub positions: Vec<(f64, f64)>,
    /// Total half-perimeter wirelength, µm.
    pub hpwl_um: f64,
}

/// Annealer configuration.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Moves per temperature step.
    pub moves_per_temp: usize,
    /// Initial temperature as a fraction of die width.
    pub t0_frac: f64,
    /// Geometric cooling rate per step.
    pub cooling: f64,
    /// Temperature steps.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            moves_per_temp: 600,
            t0_frac: 0.5,
            cooling: 0.92,
            steps: 60,
            seed: 11,
        }
    }
}

/// Condenses a chiplet netlist into a synthetic cluster-level placement
/// problem with Rent-style connectivity: a 2-D mesh of local nets plus a
/// population of random longer nets, deterministic in `seed`.
pub fn synthetic_problem(
    chiplet: &ChipletNetlist,
    die_um: f64,
    clusters: usize,
    seed: u64,
) -> PlacementProblem {
    assert!(clusters >= 4, "need at least 4 clusters");
    assert!(die_um > 0.0, "die must have positive width");
    let mut rng = StdRng::seed_from_u64(seed);
    let lib = techlib::cells::CellLibrary::tsmc28_like();
    let total_area = lib.population_area_um2(&chiplet.cells);
    let per = total_area / clusters as f64;
    let side = (clusters as f64).sqrt().round() as usize;
    let cs: Vec<Cluster> = (0..clusters)
        .map(|_| Cluster {
            area_um2: per,
            fixed: None,
        })
        .collect();
    let mut nets: Vec<Vec<usize>> = Vec::new();
    // Local mesh nets: each cluster talks to its +x and +y neighbours.
    for i in 0..clusters {
        let (r, c) = (i / side, i % side);
        if c + 1 < side {
            nets.push(vec![i, i + 1]);
        }
        if (r + 1) * side + c < clusters {
            nets.push(vec![i, i + side]);
        }
    }
    // Rent tail: ~0.5 multi-pin random nets per cluster.
    for _ in 0..clusters / 2 {
        let pins = rng.gen_range(3..=5);
        let mut net: Vec<usize> = (0..pins).map(|_| rng.gen_range(0..clusters)).collect();
        net.sort_unstable();
        net.dedup();
        if net.len() >= 2 {
            nets.push(net);
        }
    }
    PlacementProblem {
        die_um,
        clusters: cs,
        nets,
    }
}

/// Half-perimeter wirelength of `positions` over `nets`, µm.
pub fn hpwl(nets: &[Vec<usize>], positions: &[(f64, f64)]) -> f64 {
    nets.iter()
        .map(|net| {
            let mut min_x = f64::INFINITY;
            let mut max_x = f64::NEG_INFINITY;
            let mut min_y = f64::INFINITY;
            let mut max_y = f64::NEG_INFINITY;
            for &i in net {
                let (x, y) = positions[i];
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                min_y = min_y.min(y);
                max_y = max_y.max(y);
            }
            (max_x - min_x) + (max_y - min_y)
        })
        .sum()
}

/// Runs simulated annealing, returning the final placement.
///
/// Movable clusters start on a uniform grid and are perturbed with
/// range-limited displacement moves; fixed clusters never move. Acceptance
/// follows the Metropolis criterion with geometric cooling.
pub fn sa_place(problem: &PlacementProblem, config: &SaConfig) -> Placement {
    let n = problem.clusters.len();
    assert!(n > 0, "cannot place zero clusters");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let side = (n as f64).sqrt().ceil() as usize;
    let cell = problem.die_um / side as f64;
    let mut pos: Vec<(f64, f64)> = (0..n)
        .map(|i| match problem.clusters[i].fixed {
            Some(p) => p,
            None => {
                let (r, c) = (i / side, i % side);
                ((c as f64 + 0.5) * cell, (r as f64 + 0.5) * cell)
            }
        })
        .collect();

    // Net membership index for incremental evaluation.
    let mut member: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ni, net) in problem.nets.iter().enumerate() {
        for &c in net {
            member[c].push(ni);
        }
    }
    let net_hpwl = |net: &[usize], pos: &[(f64, f64)]| -> f64 {
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for &i in net {
            let (x, y) = pos[i];
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        (max_x - min_x) + (max_y - min_y)
    };

    let movable: Vec<usize> = (0..n)
        .filter(|&i| problem.clusters[i].fixed.is_none())
        .collect();
    if movable.is_empty() {
        let total = hpwl(&problem.nets, &pos);
        return Placement {
            positions: pos,
            hpwl_um: total,
        };
    }

    let mut t = config.t0_frac * problem.die_um;
    for _ in 0..config.steps {
        for _ in 0..config.moves_per_temp {
            let v = movable[rng.gen_range(0..movable.len())];
            let old = pos[v];
            let range = t.max(cell / 2.0);
            let nx = (old.0 + rng.gen_range(-range..=range)).clamp(0.0, problem.die_um);
            let ny = (old.1 + rng.gen_range(-range..=range)).clamp(0.0, problem.die_um);
            let before: f64 = member[v]
                .iter()
                .map(|&ni| net_hpwl(&problem.nets[ni], &pos))
                .sum();
            pos[v] = (nx, ny);
            let after: f64 = member[v]
                .iter()
                .map(|&ni| net_hpwl(&problem.nets[ni], &pos))
                .sum();
            let delta = after - before;
            if delta > 0.0 && rng.gen::<f64>() >= (-delta / t).exp() {
                pos[v] = old; // reject
            }
        }
        t *= config.cooling;
    }
    let total = hpwl(&problem.nets, &pos);
    Placement {
        positions: pos,
        hpwl_um: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::chiplet_netlist::chipletize;
    use netlist::openpiton::two_tile_openpiton;
    use netlist::partition::hierarchical_l3_split;
    use netlist::serdes::SerdesPlan;

    fn logic_netlist() -> ChipletNetlist {
        let d = two_tile_openpiton();
        let p = hierarchical_l3_split(&d).unwrap();
        chipletize(&d, &p, &SerdesPlan::paper()).0
    }

    fn small_config() -> SaConfig {
        SaConfig {
            moves_per_temp: 200,
            steps: 40,
            ..SaConfig::default()
        }
    }

    #[test]
    fn sa_improves_on_initial_grid() {
        let problem = synthetic_problem(&logic_netlist(), 820.0, 100, 3);
        let initial = {
            // Initial grid placement HPWL.
            let cfg = SaConfig {
                steps: 0,
                ..small_config()
            };
            sa_place(&problem, &cfg).hpwl_um
        };
        let refined = sa_place(&problem, &small_config()).hpwl_um;
        assert!(
            refined < initial,
            "SA should improve: {refined} vs {initial}"
        );
    }

    #[test]
    fn placement_stays_on_die() {
        let problem = synthetic_problem(&logic_netlist(), 820.0, 64, 5);
        let p = sa_place(&problem, &small_config());
        for &(x, y) in &p.positions {
            assert!((0.0..=820.0).contains(&x));
            assert!((0.0..=820.0).contains(&y));
        }
    }

    #[test]
    fn sa_is_deterministic() {
        let problem = synthetic_problem(&logic_netlist(), 820.0, 64, 5);
        let a = sa_place(&problem, &small_config());
        let b = sa_place(&problem, &small_config());
        assert_eq!(a.hpwl_um, b.hpwl_um);
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn fixed_clusters_do_not_move() {
        let mut problem = synthetic_problem(&logic_netlist(), 820.0, 64, 5);
        problem.clusters[0].fixed = Some((10.0, 10.0));
        problem.clusters[10].fixed = Some((800.0, 400.0));
        let p = sa_place(&problem, &small_config());
        assert_eq!(p.positions[0], (10.0, 10.0));
        assert_eq!(p.positions[10], (800.0, 400.0));
    }

    #[test]
    fn hpwl_of_coincident_points_is_zero() {
        let nets = vec![vec![0, 1, 2]];
        let pos = vec![(5.0, 5.0); 3];
        assert_eq!(hpwl(&nets, &pos), 0.0);
    }

    #[test]
    fn hpwl_matches_hand_example() {
        let nets = vec![vec![0, 1], vec![1, 2]];
        let pos = vec![(0.0, 0.0), (3.0, 4.0), (3.0, 0.0)];
        assert_eq!(hpwl(&nets, &pos), 7.0 + 4.0);
    }

    #[test]
    fn bigger_die_longer_wires() {
        let nl = logic_netlist();
        let cfg = small_config();
        let small = sa_place(&synthetic_problem(&nl, 820.0, 100, 3), &cfg).hpwl_um;
        let large = sa_place(&synthetic_problem(&nl, 1150.0, 100, 3), &cfg).hpwl_um;
        assert!(large > small, "{large} vs {small}");
    }
}
