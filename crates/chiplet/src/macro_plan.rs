//! AIB I/O macro pre-placement (Section V-D, Fig. 7).
//!
//! The flow pre-places each signal bump's AIB driver macro "adjacent to
//! the micro-bump locations to minimize wire delay from the input to the
//! micro-bump pad". This module computes those macro sites: each driver
//! sits at a legal, non-overlapping position as close as possible to its
//! bump, and the resulting bump-to-macro net lengths feed the Fig. 7
//! wiring statistics.

use crate::bumpmap::{BumpPlan, BumpRole};
use crate::ChipletError;
use serde::Serialize;
use techlib::iodriver::IoDriver;

/// One placed AIB macro.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MacroSite {
    /// The signal index the macro serves.
    pub signal: usize,
    /// Macro lower-left corner, µm.
    pub origin_um: (f64, f64),
    /// Manhattan distance from the macro centre to its bump, µm.
    pub bump_net_um: f64,
}

/// The macro placement of one chiplet.
#[derive(Debug, Clone, Serialize)]
pub struct MacroPlan {
    /// Placed macros, one per signal bump.
    pub sites: Vec<MacroSite>,
    /// Macro dimensions, µm.
    pub macro_um: (f64, f64),
}

impl MacroPlan {
    /// Average bump-to-macro net length, µm.
    pub fn average_net_um(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        self.sites.iter().map(|s| s.bump_net_um).sum::<f64>() / self.sites.len() as f64
    }

    /// Longest bump-to-macro net, µm.
    pub fn max_net_um(&self) -> f64 {
        self.sites.iter().map(|s| s.bump_net_um).fold(0.0, f64::max)
    }

    /// True if no two macros overlap.
    pub fn is_overlap_free(&self) -> bool {
        let (w, h) = self.macro_um;
        for (i, a) in self.sites.iter().enumerate() {
            for b in self.sites.iter().skip(i + 1) {
                let sep_x = a.origin_um.0 + w <= b.origin_um.0 + 1e-9
                    || b.origin_um.0 + w <= a.origin_um.0 + 1e-9;
                let sep_y = a.origin_um.1 + h <= b.origin_um.1 + 1e-9
                    || b.origin_um.1 + h <= a.origin_um.1 + 1e-9;
                if !(sep_x || sep_y) {
                    return false;
                }
            }
        }
        true
    }
}

/// Plans the AIB macro sites for `bumps` on a die of `die_um` width.
///
/// Strategy (matching the flow's description): macros snap to a row/column
/// grid of macro-sized slots; each signal bump claims the nearest free
/// slot, processed in bump order. Slots are spaced one macro pitch apart,
/// so the plan is overlap-free by construction.
///
/// # Errors
///
/// Returns [`ChipletError::PlacementInfeasible`] when the die offers
/// fewer legal slots than there are signal bumps.
pub fn plan(bumps: &BumpPlan, die_um: f64) -> Result<MacroPlan, ChipletError> {
    let drv = IoDriver::aib();
    let (mw, mh) = drv.layout_um;
    // Slot grid with a small routing halo between macros.
    let pitch_x = mw + 2.0;
    let pitch_y = mh + 2.0;
    let cols = (die_um / pitch_x).floor().max(1.0) as usize;
    let rows = (die_um / pitch_y).floor().max(1.0) as usize;
    let mut taken = vec![false; cols * rows];
    let mut sites = Vec::new();

    for bump in &bumps.bumps {
        let BumpRole::Signal(idx) = bump.role else {
            continue;
        };
        // Preferred slot under the bump, then spiral outward.
        let cx = ((bump.x_um / pitch_x) as usize).min(cols - 1);
        let cy = ((bump.y_um / pitch_y) as usize).min(rows - 1);
        let mut best: Option<(usize, usize, f64)> = None;
        'search: for radius in 0..cols.max(rows) {
            let x0 = cx.saturating_sub(radius);
            let x1 = (cx + radius).min(cols - 1);
            let y0 = cy.saturating_sub(radius);
            let y1 = (cy + radius).min(rows - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    if taken[y * cols + x] {
                        continue;
                    }
                    let mx = x as f64 * pitch_x + mw / 2.0;
                    let my = y as f64 * pitch_y + mh / 2.0;
                    let d = (mx - bump.x_um).abs() + (my - bump.y_um).abs();
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((x, y, d));
                    }
                }
            }
            if best.is_some() {
                // One extra ring to be sure nothing closer hides diagonally.
                if radius > 0 {
                    break 'search;
                }
            }
        }
        let Some((x, y, d)) = best else {
            return Err(ChipletError::PlacementInfeasible {
                signals: bumps.signal,
                slots: cols * rows,
            });
        };
        taken[y * cols + x] = true;
        sites.push(MacroSite {
            signal: idx,
            origin_um: (x as f64 * pitch_x, y as f64 * pitch_y),
            bump_net_um: d,
        });
    }
    Ok(MacroPlan {
        sites,
        macro_um: (mw, mh),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bumpmap::paper_plan;
    use netlist::chiplet_netlist::ChipletKind;
    use techlib::spec::InterposerKind;

    #[test]
    fn glass_logic_macros_all_place_without_overlap() {
        let bumps = paper_plan(ChipletKind::Logic, InterposerKind::Glass25D);
        let plan = plan(&bumps, 820.0).unwrap();
        assert_eq!(plan.sites.len(), 299);
        assert!(plan.is_overlap_free());
    }

    #[test]
    fn macros_sit_close_to_their_bumps() {
        // The whole point of pre-placement: bump-to-AIB nets stay within
        // a couple of bump pitches.
        let bumps = paper_plan(ChipletKind::Memory, InterposerKind::Glass25D);
        let plan = plan(&bumps, 775.0).unwrap();
        assert!(
            plan.average_net_um() < 2.0 * bumps.pitch_um,
            "avg = {}",
            plan.average_net_um()
        );
        assert!(
            plan.max_net_um() < 6.0 * bumps.pitch_um,
            "max = {}",
            plan.max_net_um()
        );
    }

    #[test]
    fn every_signal_gets_exactly_one_macro() {
        let bumps = paper_plan(ChipletKind::Logic, InterposerKind::Apx);
        let plan = plan(&bumps, 1150.0).unwrap();
        let mut seen = vec![false; 299];
        for s in &plan.sites {
            assert!(!seen[s.signal], "duplicate macro for signal {}", s.signal);
            seen[s.signal] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tiny_die_reports_infeasible_placement() {
        let bumps = paper_plan(ChipletKind::Logic, InterposerKind::Glass25D);
        let err = plan(&bumps, 30.0).unwrap_err();
        assert!(matches!(err, ChipletError::PlacementInfeasible { .. }));
    }

    #[test]
    fn macros_stay_on_die() {
        let bumps = paper_plan(ChipletKind::Logic, InterposerKind::Silicon25D);
        let p = plan(&bumps, 940.0).unwrap();
        let (w, h) = p.macro_um;
        for s in &p.sites {
            assert!(s.origin_um.0 + w <= 940.0 + w, "x = {}", s.origin_um.0);
            assert!(s.origin_um.1 + h <= 940.0 + h, "y = {}", s.origin_um.1);
        }
    }
}
