//! Silicon 3D bump/TSV region partitioning (Section V-C, Fig. 8).
//!
//! In the 4-tier TSV stack, two interconnect species coexist on each die:
//! mini-TSVs for inter-tile (logic-to-logic) connections through the
//! thinned substrate, and micro-bumps for intra-tile (logic-to-memory)
//! connections. The memory die reserves a central rectangular region for
//! the logic-to-logic TSV field, with the logic-to-memory micro-bumps
//! forming a U-shaped ring around it; the logic die mirrors the same
//! partition so the 3D interconnects align tier to tier.

use serde::Serialize;
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::via::{ViaKind, ViaModel};

/// The interconnect region plan of one Silicon 3D die.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Tsv3dPlan {
    /// Die width, µm.
    pub die_um: f64,
    /// Central TSV field: (x0, y0, x1, y1), µm.
    pub tsv_region: (f64, f64, f64, f64),
    /// Inter-tile signals carried by mini-TSVs.
    pub tsv_signals: usize,
    /// Intra-tile signals carried by micro-bumps (U-shaped ring).
    pub bump_signals: usize,
    /// Mini-TSV pitch, µm.
    pub tsv_pitch_um: f64,
    /// Micro-bump pitch, µm.
    pub bump_pitch_um: f64,
    /// Positions of the TSV sites, µm.
    pub tsv_sites: Vec<(f64, f64)>,
    /// Positions of the micro-bump sites, µm.
    pub bump_sites: Vec<(f64, f64)>,
}

impl Tsv3dPlan {
    /// Plans the regions for a die of width `die_um` carrying
    /// `tsv_signals` logic-to-logic and `bump_signals` logic-to-memory
    /// connections.
    ///
    /// Mini-TSVs are 2 µm diameter on a 10 µm pitch (substrate thinned to
    /// 20 µm); micro-bumps follow the technology's 40 µm pitch.
    ///
    /// # Panics
    ///
    /// Panics if the die cannot fit both regions.
    pub fn plan(die_um: f64, tsv_signals: usize, bump_signals: usize) -> Tsv3dPlan {
        let spec = InterposerSpec::for_kind(InterposerKind::Silicon3D);
        let tsv_pitch = 10.0;
        let bump_pitch = spec.microbump_pitch_um;
        // Central TSV field.
        let tsv_cols = (tsv_signals as f64).sqrt().ceil() as usize;
        let tsv_side = tsv_cols as f64 * tsv_pitch;
        let c = die_um / 2.0;
        let tsv_region = (
            c - tsv_side / 2.0,
            c - tsv_side / 2.0,
            c + tsv_side / 2.0,
            c + tsv_side / 2.0,
        );
        assert!(
            tsv_side < die_um * 0.8,
            "TSV field ({tsv_side} µm) does not fit die ({die_um} µm)"
        );
        let mut tsv_sites = Vec::with_capacity(tsv_signals);
        'tsv: for row in 0..tsv_cols {
            for col in 0..tsv_cols {
                if tsv_sites.len() == tsv_signals {
                    break 'tsv;
                }
                tsv_sites.push((
                    tsv_region.0 + (col as f64 + 0.5) * tsv_pitch,
                    tsv_region.1 + (row as f64 + 0.5) * tsv_pitch,
                ));
            }
        }
        // U-shaped micro-bump ring around the centre: walk the full bump
        // grid and keep sites outside the TSV keepout (left, right and
        // bottom arms — the top stays clear for power, hence the "U").
        let grid = (die_um / bump_pitch).floor() as usize;
        let keepout = (
            tsv_region.0 - bump_pitch,
            tsv_region.1 - bump_pitch,
            tsv_region.2 + bump_pitch,
            tsv_region.3 + bump_pitch,
        );
        let mut bump_sites = Vec::with_capacity(bump_signals);
        'bump: for row in 0..grid {
            for col in 0..grid {
                if bump_sites.len() == bump_signals {
                    break 'bump;
                }
                let x = (col as f64 + 0.5) * bump_pitch;
                let y = (row as f64 + 0.5) * bump_pitch;
                let in_keepout = x > keepout.0 && x < keepout.2 && y > keepout.1 && y < keepout.3;
                let in_top_arm = y > die_um * 0.75 && x > keepout.0 && x < keepout.2;
                if !in_keepout && !in_top_arm {
                    bump_sites.push((x, y));
                }
            }
        }
        assert!(
            bump_sites.len() == bump_signals,
            "die too small for {bump_signals} micro-bumps (placed {})",
            bump_sites.len()
        );
        Tsv3dPlan {
            die_um,
            tsv_region,
            tsv_signals,
            bump_signals,
            tsv_pitch_um: tsv_pitch,
            bump_pitch_um: bump_pitch,
            tsv_sites,
            bump_sites,
        }
    }

    /// The paper's plan: 940 µm dies, 68 inter-tile signals through
    /// mini-TSVs, 231 intra-tile signals through micro-bumps.
    pub fn paper() -> Tsv3dPlan {
        Tsv3dPlan::plan(940.0, 68, 231)
    }

    /// The mini-TSV electrical model used for these connections.
    pub fn tsv_model(&self) -> ViaModel {
        ViaModel::canonical(
            ViaKind::MiniTsv,
            &InterposerSpec::for_kind(InterposerKind::Silicon3D),
        )
    }

    /// True if every TSV site of `other` aligns with this plan (tier
    /// stacking requirement).
    pub fn aligns_with(&self, other: &Tsv3dPlan) -> bool {
        self.tsv_sites == other.tsv_sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plan_fits_the_die() {
        let p = Tsv3dPlan::paper();
        assert_eq!(p.tsv_sites.len(), 68);
        assert_eq!(p.bump_sites.len(), 231);
        for &(x, y) in p.tsv_sites.iter().chain(&p.bump_sites) {
            assert!((0.0..=940.0).contains(&x));
            assert!((0.0..=940.0).contains(&y));
        }
    }

    #[test]
    fn tsv_field_is_central() {
        let p = Tsv3dPlan::paper();
        let (x0, y0, x1, y1) = p.tsv_region;
        let c = 940.0 / 2.0;
        assert!((x0 + x1 - 2.0 * c).abs() < 1e-9);
        assert!((y0 + y1 - 2.0 * c).abs() < 1e-9);
    }

    #[test]
    fn bumps_avoid_the_tsv_keepout() {
        let p = Tsv3dPlan::paper();
        let (x0, y0, x1, y1) = p.tsv_region;
        for &(x, y) in &p.bump_sites {
            let inside = x > x0 && x < x1 && y > y0 && y < y1;
            assert!(!inside, "bump at ({x}, {y}) inside the TSV field");
        }
    }

    #[test]
    fn logic_and_memory_plans_align() {
        let a = Tsv3dPlan::paper();
        let b = Tsv3dPlan::paper();
        assert!(a.aligns_with(&b));
    }

    #[test]
    fn tsv_model_is_the_mini_tsv() {
        let p = Tsv3dPlan::paper();
        let m = p.tsv_model();
        assert_eq!(m.diameter_um, 2.0);
        assert_eq!(m.height_um, 20.0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_tsv_field_panics() {
        let _ = Tsv3dPlan::plan(100.0, 10_000, 10);
    }
}
