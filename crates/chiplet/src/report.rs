//! One-call chiplet analysis producing a Table III row.

use crate::bumpmap::BumpPlan;
use crate::footprint::{self, FootprintPlan};
use crate::power::{self, PowerBreakdown};
use crate::timing;
use crate::wirelength;
use crate::ChipletError;
use netlist::chiplet_netlist::ChipletNetlist;
use serde::{Deserialize, Serialize};
use techlib::calib;
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::store::{SpecField, StoreKey};

/// Algorithm version of the chiplet-reports stage (bump plan, footprint
/// solve, timing/wirelength/power models for the logic+memory pair).
/// Bump whenever any of those models or the serialized shape of
/// [`ChipletReport`] changes.
pub const REPORTS_STAGE_VERSION: u32 = 1;

/// The spec fields the chiplet pair analysis actually consumes: the
/// technology (timing/power calibration and width-matching are keyed on
/// `kind`), the stacking style, and the micro-bump pitch (bump-plan
/// geometry). Interposer wire rules and dielectric properties are
/// irrelevant here — the dies themselves don't change when the routing
/// substrate does.
pub const REPORTS_PROJECTION: &[SpecField] = &[
    SpecField::Kind,
    SpecField::Stacking,
    SpecField::MicrobumpPitchUm,
];

/// The chiplet-reports stage's store key for `spec`, downstream of the
/// chiplet netlists' key.
pub fn reports_store_key(spec: &InterposerSpec, netlists: StoreKey) -> StoreKey {
    techlib::store::projection_key(
        "chiplet_reports",
        REPORTS_STAGE_VERSION,
        spec,
        REPORTS_PROJECTION,
        &[("netlists", netlists)],
    )
}

/// Everything Table III reports for one chiplet on one technology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipletReport {
    /// Technology label.
    pub tech: InterposerKind,
    /// Chiplet label ("logic"/"mem").
    pub chiplet: String,
    /// Achieved frequency, MHz.
    pub fmax_mhz: f64,
    /// Die width, mm (square die).
    pub footprint_mm: f64,
    /// Total placed cells.
    pub cell_count: usize,
    /// Placement utilisation (0–1).
    pub utilization: f64,
    /// Routed wirelength, m.
    pub wirelength_m: f64,
    /// Power decomposition.
    pub power: PowerBreakdown,
    /// AIB macro area, µm².
    pub aib_area_um2: f64,
    /// Bump plan used.
    pub bumps: BumpPlan,
    /// Footprint plan used.
    pub footprint: FootprintPlan,
}

impl ChipletReport {
    /// Total power, mW.
    pub fn total_power_mw(&self) -> f64 {
        self.power.total_w() * 1e3
    }

    /// AIB area as a fraction of the die.
    pub fn aib_area_fraction(&self) -> f64 {
        self.aib_area_um2 / (self.footprint.width_um * self.footprint.width_um)
    }
}

/// Runs the full chiplet physical-design analysis for `chiplet` on `tech`.
///
/// `match_width_um` forces a stacked configuration's die width (Glass 3D
/// memory matches the logic die; Silicon 3D tiers match each other).
pub fn analyze(
    chiplet: &ChipletNetlist,
    spec: &InterposerSpec,
    match_width_um: Option<f64>,
) -> ChipletReport {
    let bumps = BumpPlan::for_design(chiplet.signal_pins, chiplet.kind, spec);
    let fp = footprint::solve(chiplet, &bumps, spec, match_width_um);
    let fmax = timing::fmax_mhz(chiplet, &fp, spec.kind);
    let wl = wirelength::routed_wirelength_m(chiplet, &fp, spec.kind);
    let pw = power::analyze(chiplet, &fp, spec.kind, calib::TARGET_FREQ_HZ);
    ChipletReport {
        tech: spec.kind,
        chiplet: chiplet.kind.to_string(),
        fmax_mhz: fmax,
        footprint_mm: fp.width_um / 1e3,
        cell_count: chiplet.total_cells(),
        utilization: fp.utilization(),
        wirelength_m: wl,
        power: pw,
        aib_area_um2: chiplet.signal_pins as f64 * calib::AIB_AREA_PER_SIGNAL_UM2,
        bumps,
        footprint: fp,
    }
}

/// Analyses the logic/memory pair for one technology, honouring the
/// stacking footprint-matching rules.
///
/// # Errors
///
/// Returns [`ChipletError::PlacementInfeasible`] when physical design
/// cannot fit the pair (today only reachable through the `chiplet.place`
/// fault site; the analytic models themselves are total).
pub fn analyze_pair(
    logic: &ChipletNetlist,
    memory: &ChipletNetlist,
    tech: InterposerKind,
) -> Result<(ChipletReport, ChipletReport), ChipletError> {
    analyze_pair_with(logic, memory, &InterposerSpec::for_kind(tech))
}

/// [`analyze_pair`] against an explicit (possibly overridden) spec, the
/// form scenario contexts use.
///
/// # Errors
///
/// Returns [`ChipletError::PlacementInfeasible`] when physical design
/// cannot fit the pair (today only reachable through the `chiplet.place`
/// fault site; the analytic models themselves are total).
pub fn analyze_pair_with(
    logic: &ChipletNetlist,
    memory: &ChipletNetlist,
    spec: &InterposerSpec,
) -> Result<(ChipletReport, ChipletReport), ChipletError> {
    if techlib::faults::armed("chiplet.place") {
        // Injected fault: physical design reports an unplaceable die.
        return Err(ChipletError::PlacementInfeasible {
            signals: logic.signal_pins,
            slots: 0,
        });
    }
    let logic_report = analyze(logic, spec, None);
    let matched = match spec.kind {
        InterposerKind::Glass3D | InterposerKind::Silicon3D => {
            Some(logic_report.footprint.width_um)
        }
        _ => None,
    };
    let mem_report = analyze(memory, spec, matched);
    Ok((logic_report, mem_report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::chiplet_netlist::chipletize;
    use netlist::openpiton::two_tile_openpiton;
    use netlist::partition::hierarchical_l3_split;
    use netlist::serdes::SerdesPlan;

    fn netlists() -> (ChipletNetlist, ChipletNetlist) {
        let d = two_tile_openpiton();
        let p = hierarchical_l3_split(&d).unwrap();
        chipletize(&d, &p, &SerdesPlan::paper())
    }

    #[test]
    fn full_table3_row_for_glass() {
        let (logic, mem) = netlists();
        let (rl, rm) = analyze_pair(&logic, &mem, InterposerKind::Glass25D).unwrap();
        assert_eq!(rl.footprint_mm, 0.82);
        assert_eq!(rl.cell_count, 167_495);
        assert!((rl.total_power_mw() - 142.35).abs() / 142.35 < 0.06);
        assert!((rm.total_power_mw() - 46.06).abs() / 46.06 < 0.07);
        assert!((rl.aib_area_um2 - 22_507.0).abs() < 10.0);
        assert!((rm.aib_area_um2 - 17_388.0).abs() < 10.0);
        // AIB ~3.4 % of the logic die.
        assert!((rl.aib_area_fraction() - 0.034).abs() < 0.005);
    }

    #[test]
    fn stacked_pairs_share_footprints() {
        let (logic, mem) = netlists();
        let (rl, rm) = analyze_pair(&logic, &mem, InterposerKind::Glass3D).unwrap();
        assert_eq!(rl.footprint_mm, rm.footprint_mm);
        let (rl, rm) = analyze_pair(&logic, &mem, InterposerKind::Silicon3D).unwrap();
        assert_eq!(rl.footprint_mm, 0.94);
        assert_eq!(rm.footprint_mm, 0.94);
    }

    #[test]
    fn sidebyside_pairs_differ() {
        let (logic, mem) = netlists();
        let (rl, rm) = analyze_pair(&logic, &mem, InterposerKind::Silicon25D).unwrap();
        assert!(rl.footprint_mm > rm.footprint_mm);
    }

    #[test]
    fn all_six_techs_produce_reports() {
        let (logic, mem) = netlists();
        for tech in InterposerKind::PACKAGED {
            let (rl, rm) = analyze_pair(&logic, &mem, tech).unwrap();
            assert!(rl.fmax_mhz > 600.0 && rl.fmax_mhz < 720.0, "{tech}");
            assert!(rm.fmax_mhz > 600.0 && rm.fmax_mhz < 720.0, "{tech}");
            assert!(rl.wirelength_m > rm.wirelength_m, "{tech}");
            assert!(rl.total_power_mw() > rm.total_power_mw(), "{tech}");
        }
    }
}
