//! Routed-wirelength model (Table III).
//!
//! Routed wirelength per chiplet follows the classic placement scaling law
//! — average net length proportional to the die side — multiplied by a
//! congestion detour factor that grows with utilisation. The detour term
//! is what makes the *smaller* glass die carry *more* wire than the larger
//! silicon die (Section V-D: "routing congestion in the smaller footprint
//! of the glass interposer ... increases wirelength").

use crate::footprint::FootprintPlan;
use netlist::chiplet_netlist::{ChipletKind, ChipletNetlist};
use techlib::calib;
use techlib::spec::{InterposerKind, Stacking};

/// Congestion detour factor at placement utilisation `util`.
///
/// `detour(u) = 1 + K·u²` with K fitted once against Table III (see
/// [`techlib::calib::DETOUR_UTIL_COEFF`]).
pub fn detour_factor(util: f64) -> f64 {
    1.0 + calib::DETOUR_UTIL_COEFF * util * util
}

/// Average routed net length, µm.
pub fn average_net_length_um(
    chiplet: &ChipletNetlist,
    footprint: &FootprintPlan,
    tech: InterposerKind,
) -> f64 {
    let frac = match chiplet.kind {
        ChipletKind::Logic => calib::NET_LEN_FRAC_LOGIC,
        ChipletKind::Memory => calib::NET_LEN_FRAC_MEM,
    };
    let spec = techlib::spec::InterposerSpec::for_kind(tech);
    // TSV-3D dies route external I/O to internal TSV ports rather than
    // top-layer pins, shortening nets (Section V-D).
    let tsv_factor = if spec.stacking == Stacking::TsvStack {
        calib::TSV3D_WL_FACTOR
    } else {
        1.0
    };
    let jitter = 1.0 + 0.01 * calib::design_jitter(&format!("{tech}-{}", chiplet.kind));
    frac * footprint.width_um * detour_factor(footprint.utilization()) * tsv_factor * jitter
}

/// Total routed wirelength, metres.
pub fn routed_wirelength_m(
    chiplet: &ChipletNetlist,
    footprint: &FootprintPlan,
    tech: InterposerKind,
) -> f64 {
    average_net_length_um(chiplet, footprint, tech) * chiplet.internal_nets as f64 * 1e-6
}

/// Routed wire capacitance, F (wirelength × per-metre die wire cap).
pub fn wire_capacitance_f(
    chiplet: &ChipletNetlist,
    footprint: &FootprintPlan,
    tech: InterposerKind,
) -> f64 {
    routed_wirelength_m(chiplet, footprint, tech) * calib::DIE_WIRE_CAP_PF_PER_M * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bumpmap::BumpPlan;
    use crate::footprint;
    use netlist::chiplet_netlist::chipletize;
    use netlist::openpiton::two_tile_openpiton;
    use netlist::partition::hierarchical_l3_split;
    use netlist::serdes::SerdesPlan;
    use techlib::spec::InterposerSpec;

    fn netlists() -> (ChipletNetlist, ChipletNetlist) {
        let d = two_tile_openpiton();
        let p = hierarchical_l3_split(&d).unwrap();
        chipletize(&d, &p, &SerdesPlan::paper())
    }

    fn fp(chiplet: &ChipletNetlist, tech: InterposerKind, matched: Option<f64>) -> FootprintPlan {
        let spec = InterposerSpec::for_kind(tech);
        let bumps = BumpPlan::for_design(chiplet.signal_pins, chiplet.kind, &spec);
        footprint::solve(chiplet, &bumps, &spec, matched)
    }

    #[test]
    fn glass_logic_wl_matches_table3() {
        let (logic, _) = netlists();
        let f = fp(&logic, InterposerKind::Glass25D, None);
        let wl = routed_wirelength_m(&logic, &f, InterposerKind::Glass25D);
        // Paper: 5.03 m.
        assert!((wl - 5.03).abs() / 5.03 < 0.07, "wl = {wl}");
    }

    #[test]
    fn glass_logic_wl_exceeds_silicon_despite_smaller_die() {
        let (logic, _) = netlists();
        let fg = fp(&logic, InterposerKind::Glass25D, None);
        let fs = fp(&logic, InterposerKind::Silicon25D, None);
        let wg = routed_wirelength_m(&logic, &fg, InterposerKind::Glass25D);
        let ws = routed_wirelength_m(&logic, &fs, InterposerKind::Silicon25D);
        assert!(fg.width_um < fs.width_um);
        assert!(wg > ws, "congestion detour must dominate: {wg} vs {ws}");
    }

    #[test]
    fn silicon_3d_has_shortest_logic_wl() {
        let (logic, _) = netlists();
        let f3 = fp(&logic, InterposerKind::Silicon3D, None);
        let w3 = routed_wirelength_m(&logic, &f3, InterposerKind::Silicon3D);
        for tech in [
            InterposerKind::Glass25D,
            InterposerKind::Silicon25D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            let f = fp(&logic, tech, None);
            let w = routed_wirelength_m(&logic, &f, tech);
            assert!(w3 < w, "{tech}: {w3} vs {w}");
        }
        // Paper: 4.42 m.
        assert!((w3 - 4.42).abs() / 4.42 < 0.07, "w3 = {w3}");
    }

    #[test]
    fn apx_logic_wl_is_longest() {
        let (logic, _) = netlists();
        let wa = routed_wirelength_m(
            &logic,
            &fp(&logic, InterposerKind::Apx, None),
            InterposerKind::Apx,
        );
        // Paper: 5.13 m, the longest.
        assert!((wa - 5.13).abs() / 5.13 < 0.07, "wa = {wa}");
    }

    #[test]
    fn memory_wl_matches_table3_scale() {
        let (_, mem) = netlists();
        let f = fp(&mem, InterposerKind::Glass25D, None);
        let wl = routed_wirelength_m(&mem, &f, InterposerKind::Glass25D);
        // Paper: 1.17 m.
        assert!((wl - 1.17).abs() / 1.17 < 0.12, "wl = {wl}");
    }

    #[test]
    fn detour_is_monotone_in_utilization() {
        let mut last = 0.0;
        for i in 0..=10 {
            let d = detour_factor(i as f64 / 10.0);
            assert!(d > last);
            last = d;
        }
        assert_eq!(detour_factor(0.0), 1.0);
    }

    #[test]
    fn wire_capacitance_matches_table3() {
        let (logic, _) = netlists();
        let f = fp(&logic, InterposerKind::Glass25D, None);
        let c = wire_capacitance_f(&logic, &f, InterposerKind::Glass25D) * 1e12;
        // Paper: 696.24 pF.
        assert!((c - 696.0).abs() / 696.0 < 0.08, "c = {c} pF");
    }
}
