#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
//! Chiplet physical design for the co-design flow.
//!
//! Given a [`netlist::ChipletNetlist`] and a packaging technology, this
//! crate performs what Cadence Innovus/Tempus do in the paper:
//!
//! * [`bumpmap`] — micro-bump assignment following the 2×4 unit pattern
//!   (6 signal + 2 P/G), with per-bump coordinates for the interposer
//!   router (Table II bump counts).
//! * [`footprint`] — the footprint solver: a die is either bump-limited
//!   (array side × pitch) or cell-area-limited (utilisation cap), and
//!   stacked configurations force matched footprints (Table II areas).
//! * [`placement`] — a simulated-annealing cluster placer (HPWL objective)
//!   used for macro planning and to validate the wirelength model.
//! * [`wirelength`] — the congestion-aware routed-wirelength model
//!   (Table III wirelength, including the glass small-die detour effect).
//! * [`timing`] — STA-lite achieved-frequency model (Table III Fmax).
//! * [`power`] — internal/switching/leakage decomposition (Table III).
//! * [`tsv3d`] — Silicon 3D bump/TSV region partitioning (Fig. 8).
//! * [`report`] — one-call [`report::analyze`] producing a Table III row.
//!
//! # Example
//!
//! ```
//! use netlist::openpiton::two_tile_openpiton;
//! use netlist::partition::hierarchical_l3_split;
//! use netlist::serdes::SerdesPlan;
//! use netlist::chiplet_netlist::chipletize;
//! use techlib::spec::{InterposerKind, InterposerSpec};
//!
//! let design = two_tile_openpiton();
//! let split = hierarchical_l3_split(&design)?;
//! let (logic, _mem) = chipletize(&design, &split, &SerdesPlan::paper());
//! let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
//! let report = chiplet::report::analyze(&logic, &spec, None);
//! assert!((report.footprint_mm - 0.82).abs() < 0.01);
//! # Ok::<(), netlist::NetlistError>(())
//! ```

pub mod bumpmap;
pub mod footprint;
pub mod macro_plan;
pub mod placement;
pub mod power;
pub mod report;
pub mod timing;
pub mod tsv3d;
pub mod wirelength;

pub use bumpmap::{BumpPlan, BumpRole};
pub use footprint::FootprintPlan;
pub use report::ChipletReport;

/// Errors produced by chiplet physical design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChipletError {
    /// Macro placement (or die sizing) could not fit the request.
    PlacementInfeasible {
        /// Signal bumps needing AIB macros.
        signals: usize,
        /// Legal macro slots available on the die.
        slots: usize,
    },
}

impl std::fmt::Display for ChipletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChipletError::PlacementInfeasible { signals, slots } => write!(
                f,
                "macro placement infeasible: {signals} signal macros but only {slots} slots"
            ),
        }
    }
}

impl std::error::Error for ChipletError {}
