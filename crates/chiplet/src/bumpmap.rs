//! Micro-bump assignment (Section VI-A).
//!
//! Signal and P/G bumps are assigned in a repeating 2×4 unit pattern in
//! which six of the eight sites carry signals and two carry power/ground,
//! repeated across a near-square array until all pins are placed; unused
//! sites are removed to reduce routing obstruction.

use netlist::chiplet_netlist::ChipletKind;
use serde::{Deserialize, Serialize};
use techlib::calib;
use techlib::spec::{InterposerKind, InterposerSpec};

/// What a bump site carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BumpRole {
    /// Signal pin; payload is the signal index (0-based).
    Signal(usize),
    /// Power pin.
    Power,
    /// Ground pin.
    Ground,
}

/// One placed bump.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bump {
    /// X offset from the die's lower-left corner, µm.
    pub x_um: f64,
    /// Y offset from the die's lower-left corner, µm.
    pub y_um: f64,
    /// What the bump carries.
    pub role: BumpRole,
}

/// The bump plan of one chiplet on one technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BumpPlan {
    /// Signal bump count.
    pub signal: usize,
    /// Power/ground bump count.
    pub pg: usize,
    /// Array side (bumps per row/column).
    pub cols: usize,
    /// Bump pitch, µm.
    pub pitch_um: f64,
    /// Edge keepout on each side, µm.
    pub margin_um: f64,
    /// Placed bumps (unused array sites already removed).
    pub bumps: Vec<Bump>,
}

impl BumpPlan {
    /// Builds the bump plan for a chiplet with `signal` signal pins on
    /// technology `spec`, using the paper's recorded P/G counts for the
    /// six studied designs (see [`techlib::calib::paper_pg_bumps`]).
    ///
    /// # Panics
    ///
    /// Panics if `signal` is zero.
    pub fn for_design(signal: usize, kind: ChipletKind, spec: &InterposerSpec) -> BumpPlan {
        let pg = calib::paper_pg_bumps(spec.kind, kind == ChipletKind::Logic);
        BumpPlan::with_counts(signal, pg, spec)
    }

    /// Builds a bump plan with the generative 2:1 signal-to-P/G rule
    /// (`pg = ceil(signal / 2)`), the rule Section VI-A states.
    pub fn from_rule(signal: usize, spec: &InterposerSpec) -> BumpPlan {
        BumpPlan::with_counts(signal, signal.div_ceil(2), spec)
    }

    /// Builds a bump plan with explicit counts.
    pub fn with_counts(signal: usize, pg: usize, spec: &InterposerSpec) -> BumpPlan {
        assert!(signal > 0, "chiplet needs at least one signal bump");
        let total = signal + pg;
        let cols = (total as f64).sqrt().ceil() as usize;
        let pitch = spec.microbump_pitch_um;
        let margin = calib::bump_field_margin_um(spec.kind);
        // Fill the array row-major with the repeating 2×4 unit pattern:
        // within each 8-site unit, sites 3 and 7 are P/G, the rest signal.
        let mut bumps = Vec::with_capacity(total);
        let mut sig_left = signal;
        let mut pg_left = pg;
        let mut sig_idx = 0usize;
        let mut site = 0usize;
        'fill: for row in 0..cols {
            for col in 0..cols {
                if sig_left == 0 && pg_left == 0 {
                    break 'fill;
                }
                let x = margin + col as f64 * pitch + pitch / 2.0;
                let y = margin + row as f64 * pitch + pitch / 2.0;
                let unit_pos = site % 8;
                site += 1;
                let want_pg = unit_pos == 3 || unit_pos == 7;
                let role = if (want_pg && pg_left > 0) || sig_left == 0 {
                    pg_left -= 1;
                    // Alternate power and ground within the P/G budget.
                    if pg_left.is_multiple_of(2) {
                        BumpRole::Power
                    } else {
                        BumpRole::Ground
                    }
                } else {
                    sig_left -= 1;
                    sig_idx += 1;
                    BumpRole::Signal(sig_idx - 1)
                };
                bumps.push(Bump {
                    x_um: x,
                    y_um: y,
                    role,
                });
            }
        }
        BumpPlan {
            signal,
            pg,
            cols,
            pitch_um: pitch,
            margin_um: margin,
            bumps,
        }
    }

    /// Total bump count.
    pub fn total(&self) -> usize {
        self.signal + self.pg
    }

    /// Bump-limited die width: array extent plus keepout, µm.
    pub fn bump_limited_width_um(&self) -> f64 {
        self.cols as f64 * self.pitch_um + 2.0 * self.margin_um
    }

    /// Coordinates of signal bump `i`, µm from the die corner.
    pub fn signal_position(&self, i: usize) -> Option<(f64, f64)> {
        self.bumps.iter().find_map(|b| match b.role {
            BumpRole::Signal(idx) if idx == i => Some((b.x_um, b.y_um)),
            _ => None,
        })
    }

    /// All power/ground bump coordinates.
    pub fn pg_positions(&self) -> Vec<(f64, f64)> {
        self.bumps
            .iter()
            .filter(|b| !matches!(b.role, BumpRole::Signal(_)))
            .map(|b| (b.x_um, b.y_um))
            .collect()
    }
}

/// Paper Table II signal bump counts: 299 for logic, 231 for memory.
pub fn paper_signal_count(kind: ChipletKind) -> usize {
    match kind {
        ChipletKind::Logic => 299,
        ChipletKind::Memory => 231,
    }
}

/// Builds the Table II bump plan for (`chiplet`, `tech`).
pub fn paper_plan(chiplet: ChipletKind, tech: InterposerKind) -> BumpPlan {
    paper_plan_with(chiplet, &InterposerSpec::for_kind(tech))
}

/// [`paper_plan`] against an explicit (possibly overridden) spec.
pub fn paper_plan_with(chiplet: ChipletKind, spec: &InterposerSpec) -> BumpPlan {
    BumpPlan::for_design(paper_signal_count(chiplet), chiplet, spec)
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The 2×4 unit pattern always yields roughly 3:1 signal:P/G
        /// interleaving while both budgets last, and every plan fits its
        /// own bump-limited outline.
        #[test]
        fn plans_fit_and_interleave(signal in 16usize..500, tech_idx in 0usize..6) {
            let tech = InterposerKind::PACKAGED[tech_idx];
            let spec = InterposerSpec::for_kind(tech);
            let plan = BumpPlan::from_rule(signal, &spec);
            prop_assert_eq!(plan.total(), signal + signal.div_ceil(2));
            let w = plan.bump_limited_width_um();
            for b in &plan.bumps {
                prop_assert!(b.x_um > 0.0 && b.x_um < w);
                prop_assert!(b.y_um > 0.0 && b.y_um < w);
            }
            // No two bumps share a site.
            let mut seen = std::collections::HashSet::new();
            for b in &plan.bumps {
                let key = ((b.x_um * 10.0) as i64, (b.y_um * 10.0) as i64);
                prop_assert!(seen.insert(key), "duplicate site {key:?}");
            }
        }

        /// Array side never shrinks as the pin count grows.
        #[test]
        fn cols_monotone_in_total(base in 16usize..300, extra in 0usize..200) {
            let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
            let a = BumpPlan::from_rule(base, &spec);
            let b = BumpPlan::from_rule(base + extra, &spec);
            prop_assert!(b.cols >= a.cols);
            prop_assert!(b.bump_limited_width_um() >= a.bump_limited_width_um());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glass_logic_matches_table2() {
        let p = paper_plan(ChipletKind::Logic, InterposerKind::Glass25D);
        assert_eq!(p.signal, 299);
        assert_eq!(p.pg, 165);
        assert_eq!(p.total(), 464);
        assert_eq!(p.cols, 22);
        assert!((p.bump_limited_width_um() - 820.0).abs() < 1e-9);
    }

    #[test]
    fn apx_memory_matches_table2() {
        let p = paper_plan(ChipletKind::Memory, InterposerKind::Apx);
        assert_eq!(p.total(), 347);
        assert_eq!(p.cols, 19);
        assert!((p.bump_limited_width_um() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn rule_gives_two_to_one_ratio() {
        let spec = InterposerSpec::for_kind(InterposerKind::Apx);
        let p = BumpPlan::from_rule(299, &spec);
        assert_eq!(p.pg, 150); // APX logic in Table II follows the raw rule
        let p = BumpPlan::from_rule(231, &spec);
        assert_eq!(p.pg, 116); // APX memory likewise
    }

    #[test]
    fn all_bumps_placed_and_counted() {
        for tech in InterposerKind::PACKAGED {
            for chiplet in [ChipletKind::Logic, ChipletKind::Memory] {
                let p = paper_plan(chiplet, tech);
                assert_eq!(p.bumps.len(), p.total(), "{tech} {chiplet}");
                let sig = p
                    .bumps
                    .iter()
                    .filter(|b| matches!(b.role, BumpRole::Signal(_)))
                    .count();
                assert_eq!(sig, p.signal);
            }
        }
    }

    #[test]
    fn signal_indices_are_dense_and_unique() {
        let p = paper_plan(ChipletKind::Logic, InterposerKind::Silicon25D);
        let mut seen = vec![false; p.signal];
        for b in &p.bumps {
            if let BumpRole::Signal(i) = b.role {
                assert!(!seen[i], "duplicate signal index {i}");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        for i in 0..p.signal {
            assert!(p.signal_position(i).is_some());
        }
    }

    #[test]
    fn bumps_stay_inside_the_die() {
        let p = paper_plan(ChipletKind::Memory, InterposerKind::Shinko);
        let w = p.bump_limited_width_um();
        for b in &p.bumps {
            assert!(b.x_um > 0.0 && b.x_um < w);
            assert!(b.y_um > 0.0 && b.y_um < w);
        }
    }

    #[test]
    fn pg_alternates_power_and_ground() {
        let p = paper_plan(ChipletKind::Logic, InterposerKind::Glass25D);
        let power = p.bumps.iter().filter(|b| b.role == BumpRole::Power).count();
        let ground = p
            .bumps
            .iter()
            .filter(|b| b.role == BumpRole::Ground)
            .count();
        assert!((power as i64 - ground as i64).abs() <= 1);
        assert_eq!(power + ground, p.pg);
    }
}
