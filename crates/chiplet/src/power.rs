//! Chiplet power decomposition (Table III).
//!
//! Total power = internal + switching + leakage:
//!
//! * **internal** — cell-internal (short-circuit + clock-tree) energy per
//!   cycle, from the cell library population statistics;
//! * **switching** — `α · (C_pin + C_wire) · V² · f` with the calibrated
//!   activity factors of [`techlib::calib`];
//! * **leakage** — population leakage.

use crate::footprint::FootprintPlan;
use crate::wirelength;
use netlist::chiplet_netlist::{ChipletKind, ChipletNetlist};
use serde::{Deserialize, Serialize};
use techlib::calib;
use techlib::cells::CellLibrary;
use techlib::iodriver::IoDriver;
use techlib::spec::InterposerKind;

/// Power decomposition of a chiplet, W.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Cell-internal power, W.
    pub internal_w: f64,
    /// Net switching power, W.
    pub switching_w: f64,
    /// Leakage power, W.
    pub leakage_w: f64,
    /// Total pin capacitance, F.
    pub pin_cap_f: f64,
    /// Total routed wire capacitance, F.
    pub wire_cap_f: f64,
    /// AIB I/O driver average power, W (included in `internal_w`'s total
    /// roll-up but reported separately as the paper does).
    pub aib_w: f64,
}

impl PowerBreakdown {
    /// Total chiplet power, W (internal + switching + leakage + AIB).
    pub fn total_w(&self) -> f64 {
        self.internal_w + self.switching_w + self.leakage_w + self.aib_w
    }
}

/// Computes the Table III power rows for one chiplet.
pub fn analyze(
    chiplet: &ChipletNetlist,
    footprint: &FootprintPlan,
    tech: InterposerKind,
    freq_hz: f64,
) -> PowerBreakdown {
    let lib = CellLibrary::tsmc28_like();
    let vdd = lib.vdd();
    let pin_cap = lib.population_pin_cap_f(&chiplet.cells);
    let wire_cap = wirelength::wire_capacitance_f(chiplet, footprint, tech);
    let activity = match chiplet.kind {
        ChipletKind::Logic => calib::LOGIC_ACTIVITY,
        ChipletKind::Memory => calib::MEM_ACTIVITY,
    };
    let switching = activity * (pin_cap + wire_cap) * vdd * vdd * freq_hz;
    let internal = lib.population_internal_w(&chiplet.cells, freq_hz);
    let leakage = lib.population_leakage_w(&chiplet.cells);
    let aib = chiplet.signal_pins as f64
        * IoDriver::aib().average_power_w(calib::DATA_RATE_BPS, calib::LINK_ACTIVITY);
    PowerBreakdown {
        internal_w: internal,
        switching_w: switching,
        leakage_w: leakage,
        pin_cap_f: pin_cap,
        wire_cap_f: wire_cap,
        aib_w: aib,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bumpmap::BumpPlan;
    use crate::footprint;
    use netlist::chiplet_netlist::chipletize;
    use netlist::openpiton::two_tile_openpiton;
    use netlist::partition::hierarchical_l3_split;
    use netlist::serdes::SerdesPlan;
    use techlib::spec::InterposerSpec;

    fn breakdown(tech: InterposerKind, logic: bool) -> PowerBreakdown {
        let d = two_tile_openpiton();
        let p = hierarchical_l3_split(&d).unwrap();
        let (l, m) = chipletize(&d, &p, &SerdesPlan::paper());
        let chiplet = if logic { l } else { m };
        let spec = InterposerSpec::for_kind(tech);
        let bumps = BumpPlan::for_design(chiplet.signal_pins, chiplet.kind, &spec);
        let fp = footprint::solve(&chiplet, &bumps, &spec, None);
        analyze(&chiplet, &fp, tech, calib::TARGET_FREQ_HZ)
    }

    #[test]
    fn glass_logic_power_matches_table3() {
        let p = breakdown(InterposerKind::Glass25D, true);
        // Paper: total 142.35 mW, internal 67.83, switching 67.67,
        // leakage 6.85.
        assert!(
            (p.total_w() * 1e3 - 142.35).abs() / 142.35 < 0.06,
            "{}",
            p.total_w() * 1e3
        );
        assert!((p.internal_w * 1e3 - 67.83).abs() / 67.83 < 0.06);
        assert!((p.switching_w * 1e3 - 67.67).abs() / 67.67 < 0.08);
        assert!((p.leakage_w * 1e3 - 6.85).abs() / 6.85 < 0.08);
    }

    #[test]
    fn glass_memory_power_matches_table3() {
        let p = breakdown(InterposerKind::Glass25D, false);
        // Paper: total 46.06 mW, internal 26.02, switching 18.49, leak 1.55.
        assert!(
            (p.total_w() * 1e3 - 46.06).abs() / 46.06 < 0.07,
            "{}",
            p.total_w() * 1e3
        );
        assert!((p.leakage_w * 1e3 - 1.55).abs() / 1.55 < 0.05);
    }

    #[test]
    fn pin_caps_match_table3() {
        let pl = breakdown(InterposerKind::Glass25D, true);
        let pm = breakdown(InterposerKind::Glass25D, false);
        // Paper: 395.11 pF logic, ~81.5 pF memory.
        assert!(
            (pl.pin_cap_f * 1e12 - 395.0).abs() / 395.0 < 0.05,
            "{}",
            pl.pin_cap_f * 1e12
        );
        assert!(
            (pm.pin_cap_f * 1e12 - 81.5).abs() / 81.5 < 0.05,
            "{}",
            pm.pin_cap_f * 1e12
        );
    }

    #[test]
    fn aib_power_is_negligible_fraction() {
        let p = breakdown(InterposerKind::Glass25D, true);
        // Paper: 0.54 mW, ~0.4 % of the chiplet.
        assert!((p.aib_w * 1e3) < 1.0, "{}", p.aib_w * 1e3);
        assert!(p.aib_w / p.total_w() < 0.01);
    }

    #[test]
    fn silicon_3d_has_lowest_chiplet_power() {
        let p3 = breakdown(InterposerKind::Silicon3D, true).total_w();
        for tech in [
            InterposerKind::Glass25D,
            InterposerKind::Glass3D,
            InterposerKind::Silicon25D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            let p = breakdown(tech, true).total_w();
            assert!(p3 < p, "{tech}: {p3} vs {p}");
        }
    }

    #[test]
    fn power_scales_with_frequency() {
        let d = two_tile_openpiton();
        let p = hierarchical_l3_split(&d).unwrap();
        let (l, _) = chipletize(&d, &p, &SerdesPlan::paper());
        let spec = InterposerSpec::for_kind(InterposerKind::Glass25D);
        let bumps = BumpPlan::for_design(l.signal_pins, l.kind, &spec);
        let fp = footprint::solve(&l, &bumps, &spec, None);
        let p700 = analyze(&l, &fp, InterposerKind::Glass25D, 700e6);
        let p350 = analyze(&l, &fp, InterposerKind::Glass25D, 350e6);
        assert!((p350.switching_w - p700.switching_w / 2.0).abs() < 1e-6);
        assert_eq!(p350.leakage_w, p700.leakage_w);
    }
}
