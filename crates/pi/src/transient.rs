//! IR drop and 125 MHz load-step transient (Table IV).
//!
//! IR drop is the DC supply depression at the die under the full chiplet
//! current. The transient analysis applies the paper's 125 MHz switching
//! load and reports the worst droop and the time for the die supply's
//! cycle-average to settle into a band around its final value.

use crate::pdn_model::{Excitation, PdnCircuit};
use circuit::tran::{simulate, TranConfig};
use circuit::CircuitError;
use serde::Serialize;
use techlib::calib;
use techlib::spec::InterposerKind;

/// Settling criterion: cycle-mean within this many volts of final.
pub const SETTLE_BAND_V: f64 = 2e-3;

/// Transient PDN results for one technology.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TransientReport {
    /// Technology.
    pub tech: InterposerKind,
    /// DC IR drop at the die, mV.
    pub ir_drop_mv: f64,
    /// Worst transient droop below VDD, mV.
    pub worst_droop_mv: f64,
    /// Settling time of the cycle-averaged die voltage, µs.
    pub settling_us: f64,
}

/// Runs the DC and 125 MHz transient analyses for `tech`.
///
/// # Errors
///
/// Propagates layout and solver failures.
pub fn analyze(tech: InterposerKind) -> Result<TransientReport, CircuitError> {
    // DC IR drop.
    let dc_model = PdnCircuit::build(tech, Excitation::DcLoad)
        .map_err(|_| CircuitError::InvalidParameter { parameter: "tech" })?;
    let dc = circuit::dc::solve(&dc_model.circuit)?;
    let v_die = dc.voltage(dc_model.die_node);
    // Package-only drop: exclude the VRM's own regulation resistance,
    // which the paper's IVR compensates.
    let ir_drop_mv = ((calib::VDD - v_die) * 1e3
        - dc_model.die_load_a() * crate::pdn_model::VRM_R_OHM * 1e3)
        .max(0.0);

    // 125 MHz switching transient.
    let tr_model = PdnCircuit::build(tech, Excitation::SwitchingLoad)
        .map_err(|_| CircuitError::InvalidParameter { parameter: "tech" })?;
    let result = simulate(
        &tr_model.circuit,
        &TranConfig {
            t_stop: 20e-6,
            dt: 1e-9,
        },
    )?;
    let v = result.voltage(tr_model.die_node);
    let times = &result.times;

    let worst_droop_mv = v
        .iter()
        .skip(10)
        .fold(0.0f64, |m, &x| m.max(calib::VDD - x))
        * 1e3;

    // Cycle-average (125 MHz period = 8 ns = 8 samples at 1 ns).
    let per = 8usize;
    let n_cycles = v.len() / per;
    let mut means = Vec::with_capacity(n_cycles);
    for k in 0..n_cycles {
        let s: f64 = v[k * per..(k + 1) * per].iter().sum();
        means.push(s / per as f64);
    }
    // Final value: average of the last 10 % of cycles (fully settled).
    let tail = (means.len() / 10).max(1);
    let v_final: f64 = means[means.len() - tail..].iter().sum::<f64>() / tail as f64;
    let mut settle_idx = 0;
    for (k, &m) in means.iter().enumerate() {
        if (m - v_final).abs() > SETTLE_BAND_V {
            settle_idx = k + 1;
        }
    }
    let settling_us = times[(settle_idx * per).min(times.len() - 1)] * 1e6;

    Ok(TransientReport {
        tech,
        ir_drop_mv,
        worst_droop_mv,
        settling_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_drop_is_in_table4_range() {
        // Table IV: 17–27 mV across technologies.
        for tech in [
            InterposerKind::Glass3D,
            InterposerKind::Glass25D,
            InterposerKind::Silicon25D,
        ] {
            let r = analyze(tech).unwrap();
            assert!(
                (5.0..60.0).contains(&r.ir_drop_mv),
                "{tech}: {} mV",
                r.ir_drop_mv
            );
        }
    }

    #[test]
    fn silicon_ir_drop_exceeds_glass() {
        // Table IV: 27 mV silicon vs 17–18.6 mV glass (thin 1 µm planes
        // vs 4 µm).
        let si = analyze(InterposerKind::Silicon25D).unwrap();
        let g25 = analyze(InterposerKind::Glass25D).unwrap();
        assert!(
            si.ir_drop_mv > g25.ir_drop_mv,
            "{} vs {}",
            si.ir_drop_mv,
            g25.ir_drop_mv
        );
    }

    #[test]
    fn glass_3d_settles_fastest() {
        // Table IV: 3.7 µs for Glass 3D, 4.8–5.4 µs for the rest.
        let g3 = analyze(InterposerKind::Glass3D).unwrap();
        let sh = analyze(InterposerKind::Shinko).unwrap();
        assert!(
            g3.settling_us <= sh.settling_us,
            "{} vs {}",
            g3.settling_us,
            sh.settling_us
        );
        assert!((0.5..10.0).contains(&g3.settling_us), "{}", g3.settling_us);
    }

    #[test]
    fn ir_drop_ordering_matches_table4() {
        // Paper: Si 27 mV worst; APX/Glass3D ~17 mV best; Shinko 23 mV
        // between — driven by plane thickness (1 µm Si vs 6 µm APX).
        let si = analyze(InterposerKind::Silicon25D).unwrap().ir_drop_mv;
        let sh = analyze(InterposerKind::Shinko).unwrap().ir_drop_mv;
        let g25 = analyze(InterposerKind::Glass25D).unwrap().ir_drop_mv;
        let apx = analyze(InterposerKind::Apx).unwrap().ir_drop_mv;
        assert!(si > sh, "{si} vs {sh}");
        assert!(sh > g25, "{sh} vs {g25}");
        assert!(g25 > apx, "{g25} vs {apx}");
        assert!((20.0..35.0).contains(&si), "si = {si}");
        assert!((12.0..22.0).contains(&apx), "apx = {apx}");
    }

    #[test]
    fn settling_lands_in_the_paper_band() {
        // Paper: 3.7-5.4 µs across technologies.
        for tech in [InterposerKind::Glass3D, InterposerKind::Apx] {
            let s = analyze(tech).unwrap().settling_us;
            assert!((3.0..7.0).contains(&s), "{tech}: {s}");
        }
    }

    #[test]
    fn droop_exceeds_dc_ir_drop() {
        let r = analyze(InterposerKind::Apx).unwrap();
        assert!(r.worst_droop_mv >= r.ir_drop_mv * 0.5, "{r:?}");
    }
}
