//! PDN ladder construction.
//!
//! The supply loop, from regulator to die:
//!
//! ```text
//! VRM (V, R, L) ── board/ball (R, L) ── package escape (R, L)
//!     ── power-entry via array (TGV/TSV/PTH, R/n, L/n)
//!     ── plane pair (series R, L; shunt C)
//!     ── micro-bump field (R/n, L/n) ── die node (decap ‖ load)
//! ```
//!
//! Every element except the *package escape inductance* comes from the
//! geometry in [`techlib`] and the interposer's [`interposer::pdn`] plan.
//! The escape inductance — the current loop from the ball field to the
//! power-entry vias, which depends on board/package routing the paper
//! does not describe — is a calibrated per-technology constant (fitted
//! once to the Table IV PDN impedance column and held fixed; see
//! [`escape_inductance_h`]).

use circuit::netlist::{Circuit, NodeId, Waveform};
use circuit::CircuitError;
use interposer::pdn::PdnPlan;
use interposer::report::cached_layout;
use serde::Serialize;
use techlib::bump::BumpModel;
use techlib::calib;
use techlib::spec::{InterposerKind, InterposerSpec};

/// VRM series resistance, Ω.
pub const VRM_R_OHM: f64 = 0.25;
/// VRM effective output inductance, H.
pub const VRM_L_H: f64 = 100e-9;
/// Board + ball-field series resistance up to the package, Ω.
pub const BOARD_R_OHM: f64 = 0.033;

/// Squares of power plane the supply current crosses from its entry vias
/// to the die shadow. Side-by-side interposers feed from peripheral
/// TGV/TSV/PTH fields (≈3 squares); the Glass 3D RDL feeds the embedded
/// die almost directly.
pub fn plane_squares(tech: InterposerKind) -> f64 {
    match tech {
        InterposerKind::Glass3D => 1.0,
        _ => 2.0,
    }
}
/// Board + ball-field inductance, H.
pub const BOARD_L_H: f64 = 60e-12;
/// Bulk decoupling at the regulator output, F.
pub const BULK_C_F: f64 = 4.7e-6;
/// On-die decap per chiplet system (4 chiplets of 28nm logic), F.
pub const DIE_DECAP_F: f64 = 2e-9;
/// Effective series resistance of the on-die decap, Ω.
pub const DIE_DECAP_ESR_OHM: f64 = 0.05;

/// Package escape inductance, H — the current-loop term between the ball
/// field and the power-entry vias.
///
/// Provenance: fitted once against Table IV's PDN impedance column
/// (0.97 Ω Glass 3D … 180 Ω Shinko); the *ordering* is physical — it
/// tracks how far the supply loop runs before reaching the planes
/// (embedded-die RDL ≪ silicon TSV field < glass peripheral TGV ring <
/// organic core PTH paths).
pub fn escape_inductance_h(tech: InterposerKind) -> f64 {
    match tech {
        InterposerKind::Glass3D => 0.12e-9,
        InterposerKind::Silicon25D | InterposerKind::Silicon3D => 1.0e-9,
        InterposerKind::Glass25D => 3.0e-9,
        InterposerKind::Apx => 8.5e-9,
        InterposerKind::Shinko => 27e-9,
        InterposerKind::Monolithic2D => 0.5e-9,
    }
}

/// A built PDN circuit with its probe points.
#[derive(Debug, Clone)]
pub struct PdnCircuit {
    /// The netlist.
    pub circuit: Circuit,
    /// The die supply node.
    pub die_node: NodeId,
    /// Element index of the VRM source.
    pub vrm_source: usize,
    /// Technology.
    pub tech: InterposerKind,
    /// Total die current at full activity, A.
    die_load_a: f64,
}

/// What the PDN drives and probes at the die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Excitation {
    /// 1 A AC current injection (for impedance profiles); VRM shorted.
    AcProbe,
    /// DC load draw (for IR drop).
    DcLoad,
    /// 125 MHz square switching current (for settling/droop).
    SwitchingLoad,
}

impl PdnCircuit {
    /// Builds the PDN for `tech` with the chosen excitation.
    ///
    /// # Errors
    ///
    /// Propagates routing errors when the interposer layout is needed and
    /// unavailable.
    pub fn build(
        tech: InterposerKind,
        excitation: Excitation,
    ) -> Result<PdnCircuit, interposer::RouteError> {
        let spec = InterposerSpec::for_kind(tech);
        let plan = match tech {
            InterposerKind::Silicon3D => {
                // No interposer: power enters the stack through the base
                // die's TSV field. Model the plan directly.
                PdnPlan::generate(tech, (940.0, 940.0))
            }
            InterposerKind::Monolithic2D => PdnPlan::generate(tech, (1600.0, 1600.0)),
            _ => cached_layout(tech)?.pdn.clone(),
        };
        // Total chiplet current: 2 × (logic + memory) at VDD.
        let die_load_a = 2.0 * (142e-3 + 46e-3) / calib::VDD;

        let mut c = Circuit::new();
        let vrm_out = c.node("vrm_out");
        let board = c.node("board");
        let entry = c.node("pkg_entry");
        let plane = c.node("plane");
        let die = c.node("die");

        // VRM.
        let vrm_wave = match excitation {
            Excitation::AcProbe => Waveform::Dc(0.0), // shorted for AC
            _ => Waveform::Dc(calib::VDD),
        };
        let vrm_int = c.node("vrm_int");
        c.vsource(vrm_int, Circuit::GND, vrm_wave);
        let vrm_source = c.elements().len() - 1;
        c.resistor(vrm_int, vrm_out, VRM_R_OHM);
        c.inductor(vrm_out, board, VRM_L_H);
        c.capacitor(board, Circuit::GND, BULK_C_F);

        // Board + escape.
        c.resistor(board, entry, BOARD_R_OHM);
        c.inductor(entry, plane, BOARD_L_H + escape_inductance_h(tech));

        // Power-entry via array (half the vias carry power), in series
        // ahead of the planes: board → TGV/TSV/PTH → planes → bumps.
        let n_pwr = (plan.via_count / 2).max(2);
        let via = plan.via_model.parallel(n_pwr);
        let via_mid = c.node("via_mid");
        let plane_far = c.node("plane_far");
        c.resistor(plane, via_mid, via.resistance_ohm.max(1e-5));
        c.inductor(via_mid, plane_far, via.inductance_h.max(1e-14));

        // Plane pair: shunt C where the vias land; the spreading
        // resistance (sheet resistance × squares crossed) carries the
        // current from the entry field to the die shadow, then through
        // the micro-bump field.
        c.capacitor(plane_far, Circuit::GND, plan.plane_pair_capacitance_f());
        c.resistor(
            plane_far,
            die,
            plan.plane_sheet_resistance().max(1e-5) * plane_squares(tech) + bump_field_r(&spec),
        );

        // Die decap with ESR.
        let decap = c.node("decap");
        c.resistor(die, decap, DIE_DECAP_ESR_OHM);
        c.capacitor(decap, Circuit::GND, DIE_DECAP_F);

        // Excitation at the die.
        match excitation {
            Excitation::AcProbe => {
                c.isource(Circuit::GND, die, Waveform::Dc(1.0));
            }
            Excitation::DcLoad => {
                c.isource(die, Circuit::GND, Waveform::Dc(die_load_a));
            }
            Excitation::SwitchingLoad => {
                // 125 MHz square between 20 % (idle) and 100 % activity.
                let period = 1.0 / 125e6;
                c.isource(
                    die,
                    Circuit::GND,
                    Waveform::Pulse {
                        v0: 0.2 * die_load_a,
                        v1: die_load_a,
                        delay: 0.0,
                        rise: period / 20.0,
                        fall: period / 20.0,
                        width: period / 2.0 - period / 20.0,
                        period,
                    },
                );
            }
        }

        Ok(PdnCircuit {
            circuit: c,
            die_node: die,
            vrm_source,
            tech,
            die_load_a,
        })
    }

    /// Convenience: the impedance-probe build.
    ///
    /// # Errors
    ///
    /// Same as [`PdnCircuit::build`].
    pub fn for_tech(tech: InterposerKind) -> Result<PdnCircuit, interposer::RouteError> {
        PdnCircuit::build(tech, Excitation::AcProbe)
    }

    /// Total die current at full activity, A.
    pub fn die_load_a(&self) -> f64 {
        self.die_load_a
    }
}

/// Series resistance of the P/G micro-bump field.
fn bump_field_r(spec: &InterposerSpec) -> f64 {
    if spec.microbump_pitch_um <= 0.0 {
        return 1e-4;
    }
    let bump = BumpModel::microbump(spec);
    // ~300 P/G bumps across the four chiplets carry power.
    bump.parallel(300).resistance_ohm.max(1e-5)
}

/// Solves the AC impedance at the die node at one frequency, Ω.
///
/// # Errors
///
/// Propagates solver failures.
pub fn impedance_at(model: &PdnCircuit, freq_hz: f64) -> Result<f64, CircuitError> {
    let sol = circuit::ac::solve_at(&model.circuit, freq_hz)?;
    Ok(sol.voltage(model.die_node).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_technologies_build() {
        for tech in InterposerKind::PACKAGED {
            let m = PdnCircuit::for_tech(tech).unwrap();
            assert!(m.circuit.node_count() > 5, "{tech}");
        }
    }

    #[test]
    fn impedance_is_positive_and_finite() {
        let m = PdnCircuit::for_tech(InterposerKind::Glass25D).unwrap();
        for f in [1e6, 1e7, 1e8, 1e9] {
            let z = impedance_at(&m, f).unwrap();
            assert!(z > 0.0 && z.is_finite(), "f = {f}: z = {z}");
        }
    }

    #[test]
    fn escape_inductance_ordering_is_physical() {
        assert!(
            escape_inductance_h(InterposerKind::Glass3D)
                < escape_inductance_h(InterposerKind::Silicon25D)
        );
        assert!(
            escape_inductance_h(InterposerKind::Silicon25D)
                < escape_inductance_h(InterposerKind::Glass25D)
        );
        assert!(
            escape_inductance_h(InterposerKind::Glass25D)
                < escape_inductance_h(InterposerKind::Apx)
        );
        assert!(
            escape_inductance_h(InterposerKind::Apx) < escape_inductance_h(InterposerKind::Shinko)
        );
    }

    #[test]
    fn die_decap_tames_high_frequency_impedance() {
        // Ablation: without the on-die decap, the die node would see the
        // raw escape inductance at high frequency; the ladder must stay
        // well below that bound.
        let full = PdnCircuit::for_tech(InterposerKind::Glass25D).unwrap();
        let z_with = impedance_at(&full, 4e8).unwrap();
        let l = escape_inductance_h(InterposerKind::Glass25D);
        let z_bare = 2.0 * std::f64::consts::PI * 4e8 * l;
        assert!(z_with < z_bare / 2.0, "{z_with} vs bare-L bound {z_bare}");
    }

    #[test]
    fn die_load_matches_chiplet_budget() {
        let m = PdnCircuit::for_tech(InterposerKind::Glass3D).unwrap();
        // 2 × (142 + 46) mW at 0.9 V ≈ 0.42 A.
        assert!((m.die_load_a() - 0.417).abs() < 0.01);
    }
}
