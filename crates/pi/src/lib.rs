#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
//! Power-integrity analysis (Section VII-D, Fig. 15, Table IV).
//!
//! * [`pdn_model`] — the PDN ladder for each technology: VRM and board,
//!   package power-entry vias (TGV/TSV/PTH), plane pair, micro-bump field
//!   and on-die decap, built as a [`circuit`] netlist.
//! * [`impedance`] — AC impedance profiles 1 MHz–1 GHz seen from the die
//!   (Fig. 15) and the peak impedance figure Table IV quotes.
//! * [`transient`] — DC IR drop and the 125 MHz load-step settling time.

pub mod impedance;
pub mod pdn_model;
pub mod transient;

pub use impedance::ImpedanceProfile;
pub use pdn_model::PdnCircuit;
pub use transient::TransientReport;

#[cfg(test)]
mod tests {
    #[test]
    fn modules_are_wired() {
        let m = crate::pdn_model::PdnCircuit::for_tech(techlib::spec::InterposerKind::Glass3D)
            .expect("glass 3D PDN builds");
        assert!(m.die_load_a() > 0.0);
    }
}
