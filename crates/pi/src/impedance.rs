//! PDN impedance profiles (Fig. 15) and the Table IV impedance figure.

use crate::pdn_model::{impedance_at, PdnCircuit};
use circuit::CircuitError;
use serde::Serialize;
use techlib::spec::InterposerKind;

/// Frequency range of the paper's sweep: 10⁶–10⁹ Hz.
pub const F_START_HZ: f64 = 1e6;
/// Upper sweep bound.
pub const F_STOP_HZ: f64 = 1e9;

/// An impedance-vs-frequency profile.
#[derive(Debug, Clone, Serialize)]
pub struct ImpedanceProfile {
    /// Technology.
    pub tech: InterposerKind,
    /// (frequency Hz, |Z| Ω) points, log-spaced.
    pub points: Vec<(f64, f64)>,
}

impl ImpedanceProfile {
    /// Sweeps the PDN of `tech` over the paper's range.
    ///
    /// # Errors
    ///
    /// Propagates layout and solver failures.
    pub fn sweep(tech: InterposerKind, points: usize) -> Result<ImpedanceProfile, CircuitError> {
        let model = PdnCircuit::for_tech(tech)
            .map_err(|_| CircuitError::InvalidParameter { parameter: "tech" })?;
        let ratio = (F_STOP_HZ / F_START_HZ).ln();
        let mut out = Vec::with_capacity(points);
        for i in 0..points {
            let f = F_START_HZ * (ratio * i as f64 / (points - 1) as f64).exp();
            out.push((f, impedance_at(&model, f)?));
        }
        Ok(ImpedanceProfile { tech, points: out })
    }

    /// Peak impedance over the sweep, Ω — the Table IV "PDN impedance".
    pub fn peak_ohm(&self) -> f64 {
        self.points.iter().map(|&(_, z)| z).fold(0.0, f64::max)
    }

    /// Impedance at (closest point to) `freq_hz`, Ω.
    pub fn at(&self, freq_hz: f64) -> f64 {
        self.points
            .iter()
            .min_by(|a, b| (a.0 - freq_hz).abs().total_cmp(&(b.0 - freq_hz).abs()))
            .map(|&(_, z)| z)
            .unwrap_or(f64::NAN)
    }
}

/// Sweeps all six packaged technologies (the Fig. 15 family).
///
/// # Errors
///
/// Propagates per-technology failures.
pub fn figure15(points: usize) -> Result<Vec<ImpedanceProfile>, CircuitError> {
    InterposerKind::PACKAGED
        .iter()
        .map(|&tech| ImpedanceProfile::sweep(tech, points))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak(tech: InterposerKind) -> f64 {
        ImpedanceProfile::sweep(tech, 61).unwrap().peak_ohm()
    }

    #[test]
    fn glass_3d_has_lowest_peak_impedance() {
        // Table IV: 0.97 Ω, ~10x below everything else.
        let g3 = peak(InterposerKind::Glass3D);
        for other in [
            InterposerKind::Glass25D,
            InterposerKind::Silicon25D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            assert!(g3 < peak(other) / 3.0, "{other}: g3 = {g3}");
        }
        assert!((0.3..4.0).contains(&g3), "g3 = {g3}");
    }

    #[test]
    fn impedance_ordering_matches_table4() {
        // Glass 3D (0.97) < Silicon (7.4) < Glass 2.5D (20.7) <
        // APX (58) < Shinko (180).
        let g3 = peak(InterposerKind::Glass3D);
        let si = peak(InterposerKind::Silicon25D);
        let g25 = peak(InterposerKind::Glass25D);
        let apx = peak(InterposerKind::Apx);
        let sh = peak(InterposerKind::Shinko);
        assert!(
            g3 < si && si < g25 && g25 < apx && apx < sh,
            "g3={g3:.2} si={si:.2} g25={g25:.2} apx={apx:.2} sh={sh:.2}"
        );
    }

    #[test]
    fn peaks_are_in_paper_decade() {
        let si = peak(InterposerKind::Silicon25D);
        let sh = peak(InterposerKind::Shinko);
        assert!((2.0..30.0).contains(&si), "si = {si}");
        assert!((25.0..500.0).contains(&sh), "sh = {sh}");
    }

    #[test]
    fn low_frequency_impedance_is_resistive_milliohms() {
        let p = ImpedanceProfile::sweep(InterposerKind::Glass25D, 31).unwrap();
        // At 1 MHz the bulk cap and VRM dominate: well below 1 Ω.
        assert!(p.at(1e6) < 1.0, "{}", p.at(1e6));
    }

    #[test]
    fn profile_is_log_spaced_over_the_paper_range() {
        let p = ImpedanceProfile::sweep(InterposerKind::Apx, 31).unwrap();
        assert_eq!(p.points.len(), 31);
        assert!((p.points[0].0 - 1e6).abs() < 1.0);
        assert!((p.points[30].0 - 1e9).abs() / 1e9 < 1e-9);
    }
}
