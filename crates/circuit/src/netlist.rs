//! Circuit description: nodes, linear elements, and source waveforms.

use serde::Serialize;

/// A circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct NodeId(pub usize);

/// Time-domain source waveforms.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Periodic trapezoidal pulse.
    Pulse {
        /// Low level.
        v0: f64,
        /// High level.
        v1: f64,
        /// Delay before the first rising edge, s.
        delay: f64,
        /// Rise time, s.
        rise: f64,
        /// Fall time, s.
        fall: f64,
        /// High-level width, s.
        width: f64,
        /// Repetition period, s (`f64::INFINITY` for a one-shot step).
        period: f64,
    },
    /// Piecewise-linear waveform as (time, value) breakpoints.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid: `offset + amplitude·sin(2πf·t)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency, Hz.
        freq_hz: f64,
    },
    /// PRBS-7 bit stream with trapezoidal edges.
    Prbs {
        /// Low level.
        v0: f64,
        /// High level.
        v1: f64,
        /// Bit period, s.
        bit: f64,
        /// Edge (rise/fall) time, s.
        edge: f64,
        /// LFSR seed (nonzero, 7 bits used).
        seed: u8,
    },
}

impl Waveform {
    /// A single step from 0 to `v` at `delay` with rise time `rise`.
    pub fn step(v: f64, delay: f64, rise: f64) -> Waveform {
        Waveform::Pulse {
            v0: 0.0,
            v1: v,
            delay,
            rise,
            fall: rise,
            width: f64::INFINITY,
            period: f64::INFINITY,
        }
    }

    /// A 50 %-duty clock at `freq` Hz swinging 0..`v`.
    pub fn clock(v: f64, freq: f64, edge: f64) -> Waveform {
        let period = 1.0 / freq;
        Waveform::Pulse {
            v0: 0.0,
            v1: v,
            delay: 0.0,
            rise: edge,
            fall: edge,
            width: period / 2.0 - edge,
            period,
        }
    }

    /// Evaluates the waveform at time `t` (t < 0 clamps to the t = 0
    /// value).
    pub fn at(&self, t: f64) -> f64 {
        let t = t.max(0.0);
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let tp = if period.is_finite() {
                    (t - delay) % period
                } else {
                    t - delay
                };
                if tp < *rise {
                    v0 + (v1 - v0) * tp / rise.max(1e-18)
                } else if tp < rise + width {
                    *v1
                } else if tp < rise + width + fall {
                    v1 - (v1 - v0) * (tp - rise - width) / fall.max(1e-18)
                } else {
                    *v0
                }
            }
            Waveform::Sine {
                offset,
                amplitude,
                freq_hz,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * freq_hz * t).sin(),
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0).max(1e-18);
                    }
                }
                points.last().map_or(0.0, |&(_, v)| v)
            }
            Waveform::Prbs {
                v0,
                v1,
                bit,
                edge,
                seed,
            } => {
                let idx = (t / bit) as usize;
                let frac = t - idx as f64 * bit;
                let cur = if prbs7_bit(*seed, idx) { *v1 } else { *v0 };
                let prev = if idx == 0 {
                    *v0
                } else if prbs7_bit(*seed, idx - 1) {
                    *v1
                } else {
                    *v0
                };
                if frac < *edge {
                    prev + (cur - prev) * frac / edge.max(1e-18)
                } else {
                    cur
                }
            }
        }
    }
}

/// The `idx`-th bit of the PRBS-7 sequence (x⁷ + x⁶ + 1) seeded with
/// `seed` (only the low 7 bits are used; zero is mapped to 1).
pub fn prbs7_bit(seed: u8, idx: usize) -> bool {
    let mut state = (seed & 0x7f).max(1);
    // Sequence repeats every 127 bits.
    for _ in 0..(idx % 127) {
        let new = ((state >> 6) ^ (state >> 5)) & 1;
        state = ((state << 1) | new) & 0x7f;
    }
    state & 1 == 1
}

/// Linear circuit elements.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Element {
    /// Resistor between two nodes, Ω.
    Resistor { a: NodeId, b: NodeId, ohms: f64 },
    /// Capacitor between two nodes, F.
    Capacitor { a: NodeId, b: NodeId, farads: f64 },
    /// Inductor between two nodes, H (adds an MNA branch current).
    Inductor { a: NodeId, b: NodeId, henries: f64 },
    /// Ideal voltage source `a`→`b` (adds an MNA branch current).
    VSource {
        a: NodeId,
        b: NodeId,
        wave: Waveform,
    },
    /// Ideal current source pushing current into `b` (out of `a`).
    ISource {
        a: NodeId,
        b: NodeId,
        wave: Waveform,
    },
}

/// A circuit under construction.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Circuit {
    node_count: usize,
    names: Vec<String>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground node.
    pub const GND: NodeId = NodeId(0);

    /// Creates an empty circuit (ground pre-allocated).
    pub fn new() -> Circuit {
        Circuit {
            node_count: 1,
            names: vec!["gnd".into()],
            elements: Vec::new(),
        }
    }

    /// Allocates a named node.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.names.push(name.into());
        self.node_count += 1;
        NodeId(self.node_count - 1)
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All elements.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Node name lookup.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.names[n.0]
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive and finite.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive"
        );
        self.elements.push(Element::Resistor { a, b, ohms });
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not positive and finite.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "capacitance must be positive"
        );
        self.elements.push(Element::Capacitor { a, b, farads });
    }

    /// Adds an inductor.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not positive and finite.
    pub fn inductor(&mut self, a: NodeId, b: NodeId, henries: f64) {
        assert!(
            henries > 0.0 && henries.is_finite(),
            "inductance must be positive"
        );
        self.elements.push(Element::Inductor { a, b, henries });
    }

    /// Adds a voltage source (positive terminal `a`).
    pub fn vsource(&mut self, a: NodeId, b: NodeId, wave: Waveform) {
        self.elements.push(Element::VSource { a, b, wave });
    }

    /// Adds a current source (flows from `a` through the source into `b`).
    pub fn isource(&mut self, a: NodeId, b: NodeId, wave: Waveform) {
        self.elements.push(Element::ISource { a, b, wave });
    }

    /// Element indices of every independent source (voltage and current).
    pub fn source_indices(&self) -> Vec<usize> {
        self.elements
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Element::VSource { .. } | Element::ISource { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// A copy of the circuit in which every independent source except the
    /// element at `keep` drives a constant 0 V / 0 A.
    ///
    /// The element list — and therefore the MNA matrix — is unchanged (a
    /// zeroed voltage source is a short, exactly what superposition
    /// demands), so summing the responses of `single_source(s)` over all
    /// of [`Self::source_indices`] reconstructs the full linear response.
    pub fn single_source(&self, keep: usize) -> Circuit {
        let mut c = self.clone();
        for (i, e) in c.elements.iter_mut().enumerate() {
            if i == keep {
                continue;
            }
            match e {
                Element::VSource { wave, .. } | Element::ISource { wave, .. } => {
                    *wave = Waveform::Dc(0.0);
                }
                _ => {}
            }
        }
        c
    }

    /// Count of MNA branch variables (inductors + voltage sources).
    pub fn branch_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Inductor { .. } | Element::VSource { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_waveform_shape() {
        let w = Waveform::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.8,
            period: 2.0,
        };
        assert_eq!(w.at(0.0), 0.0);
        assert_eq!(w.at(0.99), 0.0);
        assert!((w.at(1.05) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.at(1.5), 1.0);
        assert!((w.at(1.95) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.at(2.5), 0.0);
        // Periodic repeat.
        assert_eq!(w.at(3.5), 1.0);
    }

    #[test]
    fn step_is_one_shot() {
        let w = Waveform::step(0.9, 1e-9, 10e-12);
        assert_eq!(w.at(0.0), 0.0);
        assert_eq!(w.at(2e-9), 0.9);
        assert_eq!(w.at(1e-3), 0.9);
    }

    #[test]
    fn pwl_interpolates() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)]);
        assert_eq!(w.at(0.5), 1.0);
        assert_eq!(w.at(2.0), 2.0);
        assert_eq!(w.at(99.0), 2.0);
    }

    #[test]
    fn prbs7_has_period_127_and_is_balanced() {
        let ones: usize = (0..127).filter(|&i| prbs7_bit(0x5a, i)).count();
        assert_eq!(ones, 64); // PRBS-7: 64 ones, 63 zeros
        for i in 0..10 {
            assert_eq!(prbs7_bit(0x5a, i), prbs7_bit(0x5a, i + 127));
        }
    }

    #[test]
    fn prbs_waveform_levels() {
        let w = Waveform::Prbs {
            v0: 0.0,
            v1: 0.9,
            bit: 1e-9,
            edge: 50e-12,
            seed: 3,
        };
        // Mid-bit samples are at a rail.
        for i in 0..20 {
            let v = w.at(i as f64 * 1e-9 + 0.5e-9);
            assert!(v == 0.0 || v == 0.9, "v = {v}");
        }
    }

    #[test]
    fn sine_waveform_shape() {
        let w = Waveform::Sine {
            offset: 1.0,
            amplitude: 0.5,
            freq_hz: 1e9,
        };
        assert!((w.at(0.0) - 1.0).abs() < 1e-12);
        assert!((w.at(0.25e-9) - 1.5).abs() < 1e-9);
        assert!((w.at(0.75e-9) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clock_duty_cycle() {
        let w = Waveform::clock(1.0, 1e9, 20e-12);
        assert_eq!(w.at(0.25e-9), 1.0);
        assert_eq!(w.at(0.75e-9), 0.0);
    }

    #[test]
    #[should_panic(expected = "resistance")]
    fn negative_resistor_panics() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.resistor(n, Circuit::GND, -5.0);
    }

    #[test]
    fn branch_counting() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GND, Waveform::Dc(1.0));
        c.inductor(a, b, 1e-9);
        c.resistor(b, Circuit::GND, 50.0);
        assert_eq!(c.branch_count(), 2);
        assert_eq!(c.node_count(), 3);
    }
}
