//! A small SPICE-deck text parser.
//!
//! The paper's methodology converts every extracted model "into a SPICE
//! netlist for timing and power simulation". This parser accepts that
//! interchange format for the element subset the workspace uses, so decks
//! can be stored as plain text and replayed against [`crate::tran`] /
//! [`crate::ac`]:
//!
//! ```text
//! * comment
//! R1 in out 47.4
//! C1 out 0 55f
//! L1 out rx 1n
//! V1 in 0 PULSE(0 0.9 50p 20p 20p 1 1)
//! I1 0 out DC 1m
//! ```
//!
//! Node `0` (or `gnd`) is ground; other node names are allocated in order
//! of first appearance. Engineering suffixes `f p n u m k meg g t` are
//! supported.

use crate::netlist::{Circuit, NodeId, Waveform};
use std::collections::{HashMap, HashSet};

/// Parse failures, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// A parsed deck: the circuit plus the name→node map for probing.
#[derive(Debug, Clone)]
pub struct Deck {
    /// The circuit.
    pub circuit: Circuit,
    /// Node name → id.
    pub nodes: HashMap<String, NodeId>,
}

impl Deck {
    /// Looks up a node by its deck name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        if is_ground(name) {
            return Some(Circuit::GND);
        }
        self.nodes.get(&name.to_ascii_lowercase()).copied()
    }
}

fn is_ground(name: &str) -> bool {
    name == "0" || name.eq_ignore_ascii_case("gnd")
}

/// Parses an engineering-notation value: `47.4`, `55f`, `1n`, `2.2meg`.
pub fn parse_value(token: &str) -> Option<f64> {
    let t = token.trim().to_ascii_lowercase();
    let (mult, digits) = if let Some(d) = t.strip_suffix("meg") {
        (1e6, d)
    } else if let Some(d) = t.strip_suffix('f') {
        (1e-15, d)
    } else if let Some(d) = t.strip_suffix('p') {
        (1e-12, d)
    } else if let Some(d) = t.strip_suffix('n') {
        (1e-9, d)
    } else if let Some(d) = t.strip_suffix('u') {
        (1e-6, d)
    } else if let Some(d) = t.strip_suffix('m') {
        (1e-3, d)
    } else if let Some(d) = t.strip_suffix('k') {
        (1e3, d)
    } else if let Some(d) = t.strip_suffix('g') {
        (1e9, d)
    } else if let Some(d) = t.strip_suffix('t') {
        (1e12, d)
    } else {
        (1.0, t.as_str())
    };
    digits.parse::<f64>().ok().map(|v| v * mult)
}

/// Parses a deck from text.
///
/// # Errors
///
/// Returns the first offending line with a human-readable reason.
pub fn parse(text: &str) -> Result<Deck, ParseError> {
    let mut circuit = Circuit::new();
    let mut nodes: HashMap<String, NodeId> = HashMap::new();
    let mut seen_names: HashSet<String> = HashSet::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') || trimmed.starts_with('.') {
            continue;
        }
        let err = |reason: &str| ParseError {
            line,
            reason: reason.to_string(),
        };
        let tokens: Vec<&str> = trimmed.split_whitespace().collect();
        let Some((&name, _)) = tokens.split_first() else {
            // A trimmed non-empty line always tokenizes, but keep the
            // parser total rather than rely on that here.
            continue;
        };
        let Some(kind) = name.chars().next().map(|c| c.to_ascii_uppercase()) else {
            return Err(err("empty element name"));
        };
        if !seen_names.insert(name.to_ascii_lowercase()) {
            return Err(err(&format!("duplicate element name {name:?}")));
        }
        if tokens.len() < 4 {
            return Err(err("element needs at least 2 nodes and a value"));
        }
        let mut get_node = |tok: &str| -> NodeId {
            if is_ground(tok) {
                return Circuit::GND;
            }
            let key = tok.to_ascii_lowercase();
            *nodes
                .entry(key.clone())
                .or_insert_with(|| circuit.node(key))
        };
        let a = get_node(tokens[1]);
        let b = get_node(tokens[2]);
        match kind {
            'R' => {
                let v = parse_value(tokens[3]).ok_or_else(|| err("bad resistance"))?;
                if v.is_nan() || v <= 0.0 {
                    return Err(err("resistance must be positive"));
                }
                circuit.resistor(a, b, v);
            }
            'C' => {
                let v = parse_value(tokens[3]).ok_or_else(|| err("bad capacitance"))?;
                if v.is_nan() || v <= 0.0 {
                    return Err(err("capacitance must be positive"));
                }
                circuit.capacitor(a, b, v);
            }
            'L' => {
                let v = parse_value(tokens[3]).ok_or_else(|| err("bad inductance"))?;
                if v.is_nan() || v <= 0.0 {
                    return Err(err("inductance must be positive"));
                }
                circuit.inductor(a, b, v);
            }
            'V' | 'I' => {
                let wave = parse_source(&tokens[3..]).ok_or_else(|| err("bad source spec"))?;
                if kind == 'V' {
                    circuit.vsource(a, b, wave);
                } else {
                    circuit.isource(a, b, wave);
                }
            }
            other => {
                return Err(err(&format!("unsupported element type {other:?}")));
            }
        }
    }
    Ok(Deck { circuit, nodes })
}

/// Parses `DC <v>`, a bare value, `PULSE(v0 v1 delay rise fall width
/// period)` or `SIN(offset amplitude freq)`.
fn parse_source(tokens: &[&str]) -> Option<Waveform> {
    let joined = tokens.join(" ");
    let upper = joined.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("DC") {
        return parse_value(rest.trim()).map(Waveform::Dc);
    }
    if upper.starts_with("PULSE") {
        let args = arg_list(&joined)?;
        if args.len() != 7 {
            return None;
        }
        return Some(Waveform::Pulse {
            v0: args[0],
            v1: args[1],
            delay: args[2],
            rise: args[3],
            fall: args[4],
            width: args[5],
            period: args[6],
        });
    }
    if upper.starts_with("SIN") {
        let args = arg_list(&joined)?;
        if args.len() != 3 {
            return None;
        }
        return Some(Waveform::Sine {
            offset: args[0],
            amplitude: args[1],
            freq_hz: args[2],
        });
    }
    parse_value(&joined).map(Waveform::Dc)
}

fn arg_list(spec: &str) -> Option<Vec<f64>> {
    let open = spec.find('(')?;
    let close = spec.rfind(')')?;
    spec[open + 1..close]
        .split_whitespace()
        .map(parse_value)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tran::{simulate, TranConfig};

    #[test]
    fn parses_and_simulates_a_divider() {
        let deck = parse(
            "* divider\n\
             V1 top 0 DC 10\n\
             R1 top mid 1k\n\
             R2 mid 0 3k\n",
        )
        .unwrap();
        let sol = crate::dc::solve(&deck.circuit).unwrap();
        let mid = deck.node("mid").unwrap();
        assert!((sol.voltage(mid) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn engineering_suffixes() {
        assert!((parse_value("55f").unwrap() - 55e-15).abs() < 1e-27);
        assert_eq!(parse_value("1n"), Some(1e-9));
        assert_eq!(parse_value("2.2meg"), Some(2.2e6));
        assert_eq!(parse_value("47.4"), Some(47.4));
        assert_eq!(parse_value("10k"), Some(1e4));
        assert_eq!(parse_value("xyz"), None);
    }

    #[test]
    fn pulse_source_round_trips_through_transient() {
        let deck = parse(
            "V1 in 0 PULSE(0 0.9 50p 20p 20p 1 1)\n\
             R1 in out 1k\n\
             C1 out 0 1p\n",
        )
        .unwrap();
        let r = simulate(
            &deck.circuit,
            &TranConfig {
                t_stop: 10e-9,
                dt: 5e-12,
            },
        )
        .unwrap();
        let out = deck.node("out").unwrap();
        let v = r.voltage(out);
        assert!((v.last().unwrap() - 0.9).abs() < 0.01);
    }

    #[test]
    fn sine_source_parses() {
        let deck = parse("V1 a 0 SIN(0 1 1g)\nR1 a 0 50\n").unwrap();
        match &deck.circuit.elements()[0] {
            crate::netlist::Element::VSource { wave, .. } => {
                assert_eq!(
                    wave,
                    &Waveform::Sine {
                        offset: 0.0,
                        amplitude: 1.0,
                        freq_hz: 1e9
                    }
                );
            }
            other => panic!("expected source, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("R1 a 0 1k\nQ1 a 0 b x\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("unsupported"));
        let e = parse("R1 a 0\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn duplicate_element_names_are_rejected() {
        let e = parse("R1 a 0 1k\nr1 b 0 2k\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("duplicate"), "reason: {}", e.reason);
        assert!(e.reason.contains("r1"), "reason names the element");
    }

    #[test]
    fn ground_aliases() {
        let deck = parse("R1 a gnd 1k\nV1 a 0 DC 1\n").unwrap();
        assert_eq!(deck.node("gnd"), Some(Circuit::GND));
        assert_eq!(deck.node("0"), Some(Circuit::GND));
        let sol = crate::dc::solve(&deck.circuit).unwrap();
        assert!((sol.voltage(deck.node("a").unwrap()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn comments_and_directives_are_skipped() {
        let deck = parse("* title\n.tran 1n 10n\nR1 a 0 1k\nV1 a 0 DC 2\n").unwrap();
        assert_eq!(deck.circuit.elements().len(), 2);
    }
}
