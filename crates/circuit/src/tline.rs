//! Lossy RLGC transmission lines as discretised ladders.
//!
//! Interposer traces are electrically short at 0.7 Gbps (the longest net is
//! ~6 mm against a ~300 mm wavelength), so an N-section RC/RLC ladder is an
//! accurate time-domain model. Coupled victim/aggressor triples add mutual
//! capacitance at each ladder joint — the dominant crosstalk mechanism in
//! thin-dielectric RDL stacks.

use crate::netlist::{Circuit, NodeId};
use serde::Serialize;

/// Per-unit-length transmission-line parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RlgcLine {
    /// Series resistance, Ω/m.
    pub r_per_m: f64,
    /// Series inductance, H/m.
    pub l_per_m: f64,
    /// Shunt conductance, S/m.
    pub g_per_m: f64,
    /// Shunt capacitance, F/m.
    pub c_per_m: f64,
    /// Physical length, m.
    pub length_m: f64,
}

impl RlgcLine {
    /// Total series resistance, Ω.
    pub fn total_r(&self) -> f64 {
        self.r_per_m * self.length_m
    }

    /// Total capacitance, F.
    pub fn total_c(&self) -> f64 {
        self.c_per_m * self.length_m
    }

    /// Total inductance, H.
    pub fn total_l(&self) -> f64 {
        self.l_per_m * self.length_m
    }

    /// Elmore delay of the line driven by `r_source` into `c_load`, s.
    ///
    /// `0.5·R·C` distributed term plus source-resistance charging of the
    /// full line and load capacitance.
    pub fn elmore_delay(&self, r_source: f64, c_load: f64) -> f64 {
        let r = self.total_r();
        let c = self.total_c();
        0.693 * (r_source * (c + c_load) + r * (0.5 * c + c_load))
    }

    /// Adds the line to `circuit` as `segments` RLC π-sections between
    /// `input` and `output`. Returns the internal joint nodes.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    pub fn add_to_circuit(
        &self,
        circuit: &mut Circuit,
        input: NodeId,
        output: NodeId,
        segments: usize,
    ) -> Vec<NodeId> {
        assert!(segments > 0, "need at least one segment");
        let n = segments as f64;
        let r_seg = self.total_r() / n;
        let l_seg = self.total_l() / n;
        let c_seg = self.total_c() / n;
        let g_seg = self.g_per_m * self.length_m / n;

        let mut joints = Vec::with_capacity(segments - 1);
        // Half-capacitance at the input end.
        if c_seg > 0.0 {
            circuit.capacitor(input, Circuit::GND, c_seg / 2.0);
        }
        let mut prev = input;
        for s in 0..segments {
            let next = if s == segments - 1 {
                output
            } else {
                let j = circuit.node(format!("tl{}", s));
                joints.push(j);
                j
            };
            // Series R + L through an intermediate node.
            if l_seg > 1e-18 {
                let mid = circuit.node(format!("tlm{}", s));
                circuit.resistor(prev, mid, r_seg.max(1e-6));
                circuit.inductor(mid, next, l_seg);
            } else {
                circuit.resistor(prev, next, r_seg.max(1e-6));
            }
            // Shunt C (full at internal joints, half at the far end).
            let c_here = if s == segments - 1 {
                c_seg / 2.0
            } else {
                c_seg
            };
            if c_here > 0.0 {
                circuit.capacitor(next, Circuit::GND, c_here);
            }
            if g_seg > 0.0 {
                circuit.resistor(next, Circuit::GND, 1.0 / g_seg);
            }
            prev = next;
        }
        joints
    }
}

/// A coupled three-line bundle: one victim between two aggressors, with
/// mutual capacitance `cm_per_m` to each neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CoupledTriple {
    /// The per-line RLGC parameters.
    pub line: RlgcLine,
    /// Victim-to-aggressor mutual capacitance, F/m.
    pub cm_per_m: f64,
}

/// Node pairs returned by [`CoupledTriple::add_to_circuit`].
#[derive(Debug, Clone)]
pub struct CoupledNodes {
    /// Victim (input, output).
    pub victim: (NodeId, NodeId),
    /// Aggressor 1 (input, output).
    pub aggressor1: (NodeId, NodeId),
    /// Aggressor 2 (input, output).
    pub aggressor2: (NodeId, NodeId),
}

impl CoupledTriple {
    /// Builds the three coupled ladders in `circuit`, returning the six
    /// terminal nodes. Mutual capacitance is lumped at each ladder joint.
    pub fn add_to_circuit(&self, circuit: &mut Circuit, segments: usize) -> CoupledNodes {
        assert!(segments > 0, "need at least one segment");
        let vi = circuit.node("victim_in");
        let vo = circuit.node("victim_out");
        let a1i = circuit.node("agg1_in");
        let a1o = circuit.node("agg1_out");
        let a2i = circuit.node("agg2_in");
        let a2o = circuit.node("agg2_out");
        let jv = self.line.add_to_circuit(circuit, vi, vo, segments);
        let j1 = self.line.add_to_circuit(circuit, a1i, a1o, segments);
        let j2 = self.line.add_to_circuit(circuit, a2i, a2o, segments);
        // Mutual capacitance at each internal joint plus the endpoints.
        let cm_total = self.cm_per_m * self.line.length_m;
        let points = jv.len() + 2;
        let cm_each = cm_total / points as f64;
        if cm_each > 0.0 {
            let v_pts: Vec<NodeId> = std::iter::once(vi)
                .chain(jv.iter().copied())
                .chain(std::iter::once(vo))
                .collect();
            let a1_pts: Vec<NodeId> = std::iter::once(a1i)
                .chain(j1.iter().copied())
                .chain(std::iter::once(a1o))
                .collect();
            let a2_pts: Vec<NodeId> = std::iter::once(a2i)
                .chain(j2.iter().copied())
                .chain(std::iter::once(a2o))
                .collect();
            for k in 0..points {
                circuit.capacitor(v_pts[k], a1_pts[k], cm_each);
                circuit.capacitor(v_pts[k], a2_pts[k], cm_each);
            }
        }
        CoupledNodes {
            victim: (vi, vo),
            aggressor1: (a1i, a1o),
            aggressor2: (a2i, a2o),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;
    use crate::tran::{delay_50, simulate, TranConfig};

    fn test_line() -> RlgcLine {
        // Glass-like: 2 mm of 2µm × 4µm copper, ~140 fF/mm.
        RlgcLine {
            r_per_m: 2_150.0,
            l_per_m: 4e-7,
            g_per_m: 0.0,
            c_per_m: 140e-12,
            length_m: 2e-3,
        }
    }

    #[test]
    fn totals_scale_with_length() {
        let l = test_line();
        assert!((l.total_r() - 4.3).abs() < 0.01);
        assert!((l.total_c() - 280e-15).abs() < 1e-18);
    }

    #[test]
    fn ladder_delay_close_to_elmore() {
        // RC-only comparison: Elmore ignores inductance, so drop L here.
        let line = RlgcLine {
            l_per_m: 1e-12,
            ..test_line()
        };
        let r_src = 47.4;
        let c_load = 55e-15;
        let mut c = Circuit::new();
        let src = c.node("src");
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(src, Circuit::GND, Waveform::step(0.9, 10e-12, 20e-12));
        c.resistor(src, inp, r_src);
        line.add_to_circuit(&mut c, inp, out, 10);
        c.capacitor(out, Circuit::GND, c_load);
        let r = simulate(
            &c,
            &TranConfig {
                t_stop: 2e-9,
                dt: 0.5e-12,
            },
        )
        .unwrap();
        let d = delay_50(&r.times, &r.voltage(src), &r.voltage(out), 0.9).unwrap();
        let elmore = line.elmore_delay(r_src, c_load);
        // Simulated delay within 40 % of the Elmore estimate.
        assert!(
            (d - elmore).abs() / elmore < 0.4,
            "sim {d} vs elmore {elmore}"
        );
    }

    #[test]
    fn longer_line_longer_delay() {
        let mut delays = Vec::new();
        for len_mm in [1.0, 2.0, 4.0] {
            let line = RlgcLine {
                length_m: len_mm * 1e-3,
                ..test_line()
            };
            let mut c = Circuit::new();
            let src = c.node("src");
            let inp = c.node("in");
            let out = c.node("out");
            c.vsource(src, Circuit::GND, Waveform::step(0.9, 10e-12, 20e-12));
            c.resistor(src, inp, 47.4);
            line.add_to_circuit(&mut c, inp, out, 10);
            c.capacitor(out, Circuit::GND, 55e-15);
            let r = simulate(
                &c,
                &TranConfig {
                    t_stop: 4e-9,
                    dt: 1e-12,
                },
            )
            .unwrap();
            delays.push(delay_50(&r.times, &r.voltage(src), &r.voltage(out), 0.9).unwrap());
        }
        assert!(delays[0] < delays[1] && delays[1] < delays[2], "{delays:?}");
    }

    #[test]
    fn coupled_triple_produces_crosstalk() {
        let triple = CoupledTriple {
            line: test_line(),
            cm_per_m: 40e-12,
        };
        let mut c = Circuit::new();
        let nodes = triple.add_to_circuit(&mut c, 8);
        // Victim held low through a 50 Ω termination; aggressors switch.
        c.resistor(nodes.victim.0, Circuit::GND, 50.0);
        c.resistor(nodes.victim.1, Circuit::GND, 1e4);
        for (i, (inp, out)) in [nodes.aggressor1, nodes.aggressor2].iter().enumerate() {
            let src = c.node(format!("asrc{i}"));
            c.vsource(src, Circuit::GND, Waveform::step(0.9, 50e-12, 30e-12));
            c.resistor(src, *inp, 47.4);
            c.capacitor(*out, Circuit::GND, 55e-15);
        }
        let r = simulate(
            &c,
            &TranConfig {
                t_stop: 1e-9,
                dt: 0.5e-12,
            },
        )
        .unwrap();
        let v = r.voltage(nodes.victim.1);
        let peak = v.iter().cloned().fold(0.0f64, |m, x| m.max(x.abs()));
        assert!(peak > 0.01, "expected visible crosstalk, peak = {peak}");
        assert!(peak < 0.45, "crosstalk must stay below half swing, {peak}");
    }

    #[test]
    #[should_panic(expected = "segment")]
    fn zero_segments_panics() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        test_line().add_to_circuit(&mut c, a, b, 0);
    }
}
