//! DC operating-point analysis.
//!
//! Capacitors open, inductors short (modelled as 0 V branch constraints),
//! sources at their `t = 0⁺` steady value — i.e. [`crate::netlist::Waveform::at`] evaluated
//! at `t = 0` for [`crate::netlist::Waveform::Dc`] sources, which is what the PDN IR-drop
//! analysis uses.

use crate::matrix::Matrix;
use crate::mna::MnaLayout;
use crate::netlist::{Circuit, Element, NodeId};
use crate::CircuitError;

/// The DC solution.
#[derive(Debug, Clone)]
pub struct DcSolution {
    layout: MnaLayout,
    x: Vec<f64>,
}

impl DcSolution {
    /// Voltage of a node, V.
    pub fn voltage(&self, n: NodeId) -> f64 {
        match self.layout.node_index(n) {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// Branch current of element `element_index` (inductor or V source), A.
    ///
    /// Returns `None` for elements without a branch variable.
    pub fn branch_current(&self, element_index: usize) -> Option<f64> {
        self.layout
            .branch_of_element
            .get(element_index)
            .copied()
            .flatten()
            .map(|b| self.x[self.layout.branch_index(b)])
    }
}

/// Solves the DC operating point.
///
/// # Errors
///
/// Returns [`CircuitError::SingularMatrix`] for floating subcircuits.
pub fn solve(circuit: &Circuit) -> Result<DcSolution, CircuitError> {
    let layout = MnaLayout::new(circuit);
    let n = layout.dim();
    let mut a = Matrix::<f64>::zeros(n);
    let mut rhs = vec![0.0; n];

    for (ei, e) in circuit.elements().iter().enumerate() {
        match e {
            Element::Resistor { a: na, b: nb, ohms } => {
                stamp_conductance(&mut a, &layout, *na, *nb, 1.0 / ohms);
            }
            Element::Capacitor { .. } => {} // open at DC
            Element::Inductor { a: na, b: nb, .. } => {
                // Short: v_a - v_b = 0 with a branch current.
                let b = layout.branch_of(ei)?;
                stamp_branch(&mut a, &layout, *na, *nb, b, 0.0);
            }
            Element::VSource { a: na, b: nb, wave } => {
                let b = layout.branch_of(ei)?;
                let row = layout.branch_index(b);
                stamp_branch(&mut a, &layout, *na, *nb, b, 0.0);
                rhs[row] = wave.at(0.0);
            }
            Element::ISource { a: na, b: nb, wave } => {
                let i = wave.at(0.0);
                if let Some(ia) = layout.node_index(*na) {
                    rhs[ia] -= i;
                }
                if let Some(ib) = layout.node_index(*nb) {
                    rhs[ib] += i;
                }
            }
        }
    }

    let x = crate::matrix::solve(a, &rhs)?;
    Ok(DcSolution { layout, x })
}

/// Stamps a conductance `g` between nodes.
pub(crate) fn stamp_conductance(
    m: &mut Matrix<f64>,
    layout: &MnaLayout,
    a: NodeId,
    b: NodeId,
    g: f64,
) {
    if let Some(i) = layout.node_index(a) {
        m.add(i, i, g);
    }
    if let Some(j) = layout.node_index(b) {
        m.add(j, j, g);
    }
    if let (Some(i), Some(j)) = (layout.node_index(a), layout.node_index(b)) {
        m.add(i, j, -g);
        m.add(j, i, -g);
    }
}

/// Stamps a branch (voltage source / inductor companion) with series
/// "resistance" `r_eq`: row `v_a - v_b - r_eq·i = rhs` plus KCL coupling.
pub(crate) fn stamp_branch(
    m: &mut Matrix<f64>,
    layout: &MnaLayout,
    a: NodeId,
    b: NodeId,
    branch: usize,
    r_eq: f64,
) {
    let row = layout.branch_index(branch);
    if let Some(i) = layout.node_index(a) {
        m.add(row, i, 1.0);
        m.add(i, row, 1.0);
    }
    if let Some(j) = layout.node_index(b) {
        m.add(row, j, -1.0);
        m.add(j, row, -1.0);
    }
    if r_eq != 0.0 {
        m.add(row, row, -r_eq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        c.vsource(top, Circuit::GND, Waveform::Dc(10.0));
        c.resistor(top, mid, 1_000.0);
        c.resistor(mid, Circuit::GND, 3_000.0);
        let s = solve(&c).unwrap();
        assert!((s.voltage(top) - 10.0).abs() < 1e-9);
        assert!((s.voltage(mid) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn source_current_is_reported() {
        let mut c = Circuit::new();
        let top = c.node("top");
        c.vsource(top, Circuit::GND, Waveform::Dc(5.0));
        c.resistor(top, Circuit::GND, 100.0);
        let s = solve(&c).unwrap();
        // 50 mA flows out of the source (through the branch a→b).
        assert!((s.branch_current(0).unwrap().abs() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GND, Waveform::Dc(1.0));
        c.inductor(a, b, 1e-6);
        c.resistor(b, Circuit::GND, 50.0);
        let s = solve(&c).unwrap();
        assert!((s.voltage(b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_dc_open() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GND, Waveform::Dc(1.0));
        c.resistor(a, b, 1_000.0);
        c.capacitor(b, Circuit::GND, 1e-12);
        // Need a bleed to avoid a floating node through the open cap.
        c.resistor(b, Circuit::GND, 1e9);
        let s = solve(&c).unwrap();
        assert!((s.voltage(b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.isource(Circuit::GND, n, Waveform::Dc(0.01));
        c.resistor(n, Circuit::GND, 200.0);
        let s = solve(&c).unwrap();
        assert!((s.voltage(n) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GND, Waveform::Dc(1.0));
        c.resistor(a, Circuit::GND, 100.0);
        // b touches only a capacitor: floating at DC.
        c.capacitor(b, Circuit::GND, 1e-12);
        assert!(matches!(
            solve(&c),
            Err(CircuitError::SingularMatrix { .. })
        ));
    }
}
