#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
//! SPICE-lite circuit simulation.
//!
//! This crate stands in for the HSPICE / Keysight ADS / HyperLynx solver
//! chain the paper uses. It provides:
//!
//! * [`complex`] — complex arithmetic (no external linear-algebra crates).
//! * [`matrix`] — dense LU factorisation/solve over `f64` and complex.
//! * [`netlist`] — circuit description: R, L, C, sources with DC / pulse /
//!   PWL / PRBS waveforms.
//! * [`mna`] — modified nodal analysis stamping shared by the analyses.
//! * [`dc`] — operating-point analysis.
//! * [`ac`] — complex frequency sweeps (PDN impedance profiles).
//! * [`tran`] — trapezoidal transient analysis with one-time factorisation
//!   (linear circuits), plus waveform measurement helpers.
//! * [`tline`] — lossy RLGC transmission-line ladders, including coupled
//!   victim/aggressor triples for crosstalk studies.
//! * [`twoport`] — ABCD-matrix two-ports and S-parameter conversion (the
//!   "extract S-parameters, then simulate" flow of Fig. 13).
//! * [`driver`] — the behavioural AIB output stage (Thevenin source with
//!   finite slew and 47.4 Ω output impedance).
//!
//! # Example: RC low-pass step response
//!
//! ```
//! use circuit::netlist::{Circuit, Waveform};
//! use circuit::tran::{TranConfig, simulate};
//!
//! let mut c = Circuit::new();
//! let inp = c.node("in");
//! let out = c.node("out");
//! c.vsource(inp, Circuit::GND, Waveform::step(1.0, 1e-9, 10e-12));
//! c.resistor(inp, out, 1_000.0);
//! c.capacitor(out, Circuit::GND, 1e-12); // τ = 1 ns
//! let result = simulate(&c, &TranConfig { t_stop: 10e-9, dt: 5e-12 })?;
//! let v_end = result.voltage(out).last().copied().unwrap();
//! assert!((v_end - 1.0).abs() < 0.01);
//! # Ok::<(), circuit::CircuitError>(())
//! ```

pub mod ac;
pub mod complex;
pub mod dc;
pub mod driver;
pub mod matrix;
pub mod mna;
pub mod netlist;
pub mod parser;
pub mod tline;
pub mod tran;
pub mod twoport;

pub use complex::Complex64;
pub use netlist::{Circuit, NodeId, Waveform};

/// Errors produced by circuit construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The MNA matrix was singular (floating node, shorted source loop...).
    SingularMatrix {
        /// Pivot index where elimination failed.
        pivot: usize,
    },
    /// A simulation parameter was invalid (non-positive step, empty sweep).
    InvalidParameter {
        /// Parameter name.
        parameter: &'static str,
    },
    /// An element value was invalid (negative resistance...).
    InvalidElement {
        /// Description of the problem.
        reason: &'static str,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::SingularMatrix { pivot } => {
                write!(f, "singular MNA matrix at pivot {pivot} (floating node?)")
            }
            CircuitError::InvalidParameter { parameter } => {
                write!(f, "invalid simulation parameter {parameter}")
            }
            CircuitError::InvalidElement { reason } => write!(f, "invalid element: {reason}"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
        assert!(!CircuitError::SingularMatrix { pivot: 3 }
            .to_string()
            .is_empty());
        assert!(!CircuitError::InvalidParameter { parameter: "dt" }
            .to_string()
            .is_empty());
    }
}
