//! Modified nodal analysis: unknown ordering and stamp helpers.
//!
//! Unknowns are ordered `[v1 .. v_{n-1}, i_b0 .. i_bm]`: node voltages for
//! every node except ground, then one branch current per inductor and
//! voltage source, in element order.

use crate::netlist::{Circuit, Element, NodeId};
use crate::CircuitError;

/// Index map from circuit entities to MNA unknowns.
#[derive(Debug, Clone)]
pub struct MnaLayout {
    /// Node-voltage unknowns (node count - 1).
    pub node_vars: usize,
    /// Branch-current unknowns.
    pub branch_vars: usize,
    /// For each element index, its branch variable index (if any).
    pub branch_of_element: Vec<Option<usize>>,
}

impl MnaLayout {
    /// Builds the layout for `circuit`.
    pub fn new(circuit: &Circuit) -> MnaLayout {
        let mut branch_of_element = Vec::with_capacity(circuit.elements().len());
        let mut next_branch = 0usize;
        for e in circuit.elements() {
            match e {
                Element::Inductor { .. } | Element::VSource { .. } => {
                    branch_of_element.push(Some(next_branch));
                    next_branch += 1;
                }
                _ => branch_of_element.push(None),
            }
        }
        MnaLayout {
            node_vars: circuit.node_count() - 1,
            branch_vars: next_branch,
            branch_of_element,
        }
    }

    /// Total unknown count.
    pub fn dim(&self) -> usize {
        self.node_vars + self.branch_vars
    }

    /// MNA row/column of a node voltage, or `None` for ground.
    pub fn node_index(&self, n: NodeId) -> Option<usize> {
        if n.0 == 0 {
            None
        } else {
            Some(n.0 - 1)
        }
    }

    /// MNA row/column of a branch current.
    pub fn branch_index(&self, b: usize) -> usize {
        self.node_vars + b
    }

    /// The branch variable of element `ei`, as a typed error when absent
    /// (only inductors and voltage sources carry one — hitting the error
    /// indicates a layout/circuit mismatch, which the analyses report
    /// instead of panicking).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidElement`] when `ei` is out of range
    /// or the element has no branch variable.
    pub fn branch_of(&self, ei: usize) -> Result<usize, CircuitError> {
        self.branch_of_element
            .get(ei)
            .copied()
            .flatten()
            .ok_or(CircuitError::InvalidElement {
                reason: "element has no MNA branch variable",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn layout_counts() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GND, Waveform::Dc(1.0));
        c.resistor(a, b, 10.0);
        c.inductor(b, Circuit::GND, 1e-9);
        let l = MnaLayout::new(&c);
        assert_eq!(l.node_vars, 2);
        assert_eq!(l.branch_vars, 2);
        assert_eq!(l.dim(), 4);
        assert_eq!(l.node_index(Circuit::GND), None);
        assert_eq!(l.node_index(a), Some(0));
        assert_eq!(l.branch_of_element, vec![Some(0), None, Some(1)]);
        assert_eq!(l.branch_index(1), 3);
    }
}
