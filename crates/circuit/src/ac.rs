//! AC (small-signal frequency-domain) analysis.
//!
//! Sources with [`Waveform::Dc`] waveforms act as phasor excitations of
//! that magnitude (phase 0), and [`Waveform::Sine`] sources excite at
//! their amplitude; all other waveforms are quiescent in AC. The
//! PDN impedance profile of Fig. 15 is produced by injecting a 1 A
//! [`Circuit::isource`] at the die node and sweeping `|V|`.

use crate::complex::Complex64;
use crate::matrix::Matrix;
use crate::mna::MnaLayout;
use crate::netlist::{Circuit, Element, NodeId, Waveform};
use crate::CircuitError;

/// The AC solution at one frequency.
#[derive(Debug, Clone)]
pub struct AcSolution {
    layout: MnaLayout,
    x: Vec<Complex64>,
    /// The analysis frequency, Hz.
    pub freq_hz: f64,
}

impl AcSolution {
    /// Complex node voltage.
    pub fn voltage(&self, n: NodeId) -> Complex64 {
        match self.layout.node_index(n) {
            Some(i) => self.x[i],
            None => Complex64::ZERO,
        }
    }

    /// Complex branch current of an element (inductor or V source).
    pub fn branch_current(&self, element_index: usize) -> Option<Complex64> {
        self.layout.branch_of_element[element_index].map(|b| self.x[self.layout.branch_index(b)])
    }
}

/// Solves the circuit at a single frequency.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidParameter`] for non-positive frequency
/// and [`CircuitError::SingularMatrix`] for degenerate circuits.
pub fn solve_at(circuit: &Circuit, freq_hz: f64) -> Result<AcSolution, CircuitError> {
    if freq_hz <= 0.0 || !freq_hz.is_finite() {
        return Err(CircuitError::InvalidParameter {
            parameter: "freq_hz",
        });
    }
    let omega = 2.0 * std::f64::consts::PI * freq_hz;
    let layout = MnaLayout::new(circuit);
    let n = layout.dim();
    let mut m = Matrix::<Complex64>::zeros(n);
    let mut rhs = vec![Complex64::ZERO; n];

    let stamp_adm =
        |m: &mut Matrix<Complex64>, a: NodeId, b: NodeId, y: Complex64, layout: &MnaLayout| {
            if let Some(i) = layout.node_index(a) {
                m.add(i, i, y);
            }
            if let Some(j) = layout.node_index(b) {
                m.add(j, j, y);
            }
            if let (Some(i), Some(j)) = (layout.node_index(a), layout.node_index(b)) {
                m.add(i, j, -y);
                m.add(j, i, -y);
            }
        };

    for (ei, e) in circuit.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms } => {
                stamp_adm(&mut m, *a, *b, Complex64::from_re(1.0 / ohms), &layout);
            }
            Element::Capacitor { a, b, farads } => {
                stamp_adm(&mut m, *a, *b, Complex64::new(0.0, omega * farads), &layout);
            }
            Element::Inductor { a, b, henries } => {
                // Branch: v_a - v_b - jωL·i = 0.
                let br = layout.branch_of(ei)?;
                let row = layout.branch_index(br);
                if let Some(i) = layout.node_index(*a) {
                    m.add(row, i, Complex64::ONE);
                    m.add(i, row, Complex64::ONE);
                }
                if let Some(j) = layout.node_index(*b) {
                    m.add(row, j, -Complex64::ONE);
                    m.add(j, row, -Complex64::ONE);
                }
                m.add(row, row, Complex64::new(0.0, -omega * henries));
            }
            Element::VSource { a, b, wave } => {
                let br = layout.branch_of(ei)?;
                let row = layout.branch_index(br);
                if let Some(i) = layout.node_index(*a) {
                    m.add(row, i, Complex64::ONE);
                    m.add(i, row, Complex64::ONE);
                }
                if let Some(j) = layout.node_index(*b) {
                    m.add(row, j, -Complex64::ONE);
                    m.add(j, row, -Complex64::ONE);
                }
                rhs[row] = Complex64::from_re(ac_magnitude(wave));
            }
            Element::ISource { a, b, wave } => {
                let i = Complex64::from_re(ac_magnitude(wave));
                if let Some(ia) = layout.node_index(*a) {
                    rhs[ia] -= i;
                }
                if let Some(ib) = layout.node_index(*b) {
                    rhs[ib] += i;
                }
            }
        }
    }

    let x = crate::matrix::solve(m, &rhs)?;
    Ok(AcSolution { layout, x, freq_hz })
}

fn ac_magnitude(wave: &Waveform) -> f64 {
    match wave {
        Waveform::Dc(v) => *v,
        Waveform::Sine { amplitude, .. } => *amplitude,
        _ => 0.0,
    }
}

/// Sweeps `|V(node)|` over logarithmically spaced frequencies — the
/// impedance profile when the exciting source is a 1 A current injection.
///
/// # Errors
///
/// Propagates solver errors; rejects empty or non-positive ranges.
pub fn impedance_sweep(
    circuit: &Circuit,
    node: NodeId,
    f_start: f64,
    f_stop: f64,
    points: usize,
) -> Result<Vec<(f64, f64)>, CircuitError> {
    if points < 2 || f_start <= 0.0 || f_stop <= f_start {
        return Err(CircuitError::InvalidParameter { parameter: "sweep" });
    }
    let ratio = (f_stop / f_start).ln();
    (0..points)
        .map(|i| {
            let f = f_start * (ratio * i as f64 / (points - 1) as f64).exp();
            let sol = solve_at(circuit, f)?;
            Ok((f, sol.voltage(node).abs()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_lowpass_response() {
        // R = 1k, C = 1nF: f_3dB = 159 kHz.
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(inp, Circuit::GND, Waveform::Dc(1.0));
        c.resistor(inp, out, 1_000.0);
        c.capacitor(out, Circuit::GND, 1e-9);
        let f3 = 1.0 / (2.0 * std::f64::consts::PI * 1_000.0 * 1e-9);
        let sol = solve_at(&c, f3).unwrap();
        assert!((sol.voltage(out).abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        // Deep stopband: ~-40 dB two decades up.
        let sol = solve_at(&c, f3 * 100.0).unwrap();
        assert!(sol.voltage(out).abs() < 0.011);
    }

    #[test]
    fn series_lc_resonance() {
        // 1 nH + 1 nF resonates at 159 MHz; impedance dips to ~0 there.
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        let n2 = c.node("n2");
        c.isource(Circuit::GND, n1, Waveform::Dc(1.0));
        c.inductor(n1, n2, 1e-9);
        c.capacitor(n2, Circuit::GND, 1e-9);
        c.resistor(n1, Circuit::GND, 1e6); // keep DC path
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-9_f64 * 1e-9).sqrt());
        let z_res = solve_at(&c, f0).unwrap().voltage(n1).abs();
        let z_off = solve_at(&c, f0 * 10.0).unwrap().voltage(n1).abs();
        assert!(z_res < 0.05, "resonance |Z| = {z_res}");
        assert!(z_off > 1.0, "off-resonance |Z| = {z_off}");
    }

    #[test]
    fn inductor_impedance_rises_with_f() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.isource(Circuit::GND, n, Waveform::Dc(1.0));
        c.inductor(n, Circuit::GND, 1e-9);
        let z1 = solve_at(&c, 1e6).unwrap().voltage(n).abs();
        let z2 = solve_at(&c, 1e9).unwrap().voltage(n).abs();
        assert!((z1 - 2.0 * std::f64::consts::PI * 1e6 * 1e-9).abs() / z1 < 1e-9);
        assert!((z2 / z1 - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn sweep_is_log_spaced_and_monotone_freq() {
        let mut c = Circuit::new();
        let n = c.node("n");
        c.isource(Circuit::GND, n, Waveform::Dc(1.0));
        c.resistor(n, Circuit::GND, 5.0);
        let sweep = impedance_sweep(&c, n, 1e6, 1e9, 31).unwrap();
        assert_eq!(sweep.len(), 31);
        assert_eq!(sweep[0].0, 1e6);
        assert!((sweep[30].0 - 1e9).abs() / 1e9 < 1e-12);
        for w in sweep.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        // Pure resistor: flat 5 Ω.
        for &(_, z) in &sweep {
            assert!((z - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_sweep_rejected() {
        let c = Circuit::new();
        assert!(impedance_sweep(&c, Circuit::GND, 1e9, 1e6, 10).is_err());
        assert!(solve_at(&c, -5.0).is_err());
    }
}
