//! Minimal complex arithmetic for AC analysis and S-parameters.

use serde::Serialize;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular parts.
    pub fn new(re: f64, im: f64) -> Complex64 {
        Complex64 { re, im }
    }

    /// Creates a purely real value.
    pub fn from_re(re: f64) -> Complex64 {
        Complex64 { re, im: 0.0 }
    }

    /// Creates from polar form (magnitude, angle in radians).
    pub fn from_polar(mag: f64, angle: f64) -> Complex64 {
        Complex64::new(mag * angle.cos(), mag * angle.sin())
    }

    /// Magnitude |z|.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase), radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex64 {
        Complex64::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self` is zero.
    pub fn recip(self) -> Complex64 {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "reciprocal of zero");
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Complex64 {
        Complex64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Complex exponential.
    pub fn exp(self) -> Complex64 {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Complex hyperbolic cosine.
    pub fn cosh(self) -> Complex64 {
        (self.exp() + (-self).exp()) * Complex64::from_re(0.5)
    }

    /// Complex hyperbolic sine.
    pub fn sinh(self) -> Complex64 {
        (self.exp() - (-self).exp()) * Complex64::from_re(0.5)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Complex64 {
        Complex64::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Division by reciprocal is the intended formulation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl std::fmt::Display for Complex64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z * z.recip(), Complex64::ONE));
        assert!(close(z / z, Complex64::ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn abs_and_arg() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((Complex64::I.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, Complex64::from_re(-1.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        for z in [
            Complex64::new(2.0, 3.0),
            Complex64::new(-1.0, 0.5),
            Complex64::new(0.0, -2.0),
        ] {
            let s = z.sqrt();
            assert!((s * s - z).abs() < 1e-10, "{z}");
        }
    }

    #[test]
    fn exp_euler_identity() {
        let z = Complex64::new(0.0, std::f64::consts::PI);
        assert!((z.exp() + Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn cosh_sinh_identity() {
        let z = Complex64::new(0.3, 0.7);
        let c = z.cosh();
        let s = z.sinh();
        assert!((c * c - s * s - Complex64::ONE).abs() < 1e-10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
