//! Transient analysis (trapezoidal integration).
//!
//! The circuits this workspace simulates are linear (behavioural drivers
//! are Thevenin sources), so the MNA matrix with trapezoidal companion
//! models is constant over time: it is factored once and re-solved per
//! step — the property that makes 100k-step eye-diagram runs cheap.

use crate::matrix::{Lu, Matrix};
use crate::mna::MnaLayout;
use crate::netlist::{Circuit, Element, NodeId};
use crate::CircuitError;

/// Transient run configuration.
#[derive(Debug, Clone, Copy)]
pub struct TranConfig {
    /// Stop time, s.
    pub t_stop: f64,
    /// Fixed time step, s.
    pub dt: f64,
}

/// Transient results: time points and waveforms.
#[derive(Debug, Clone)]
pub struct TranResult {
    layout: MnaLayout,
    /// Time points, s.
    pub times: Vec<f64>,
    /// Per-unknown waveforms, indexed `[unknown][step]`.
    waves: Vec<Vec<f64>>,
}

impl TranResult {
    /// Voltage waveform of a node (ground returns a zero waveform).
    pub fn voltage(&self, n: NodeId) -> Vec<f64> {
        match self.layout.node_index(n) {
            Some(i) => self.waves[i].clone(),
            None => vec![0.0; self.times.len()],
        }
    }

    /// Branch-current waveform of element `element_index` (inductor or
    /// voltage source), if it has a branch variable.
    pub fn branch_current(&self, element_index: usize) -> Option<Vec<f64>> {
        self.layout.branch_of_element[element_index]
            .map(|b| self.waves[self.layout.branch_index(b)].clone())
    }
}

/// Runs the transient analysis.
///
/// # Errors
///
/// Rejects non-positive `dt`/`t_stop`; propagates singular-matrix errors.
pub fn simulate(circuit: &Circuit, config: &TranConfig) -> Result<TranResult, CircuitError> {
    if config.dt <= 0.0 || !config.dt.is_finite() {
        return Err(CircuitError::InvalidParameter { parameter: "dt" });
    }
    if config.t_stop.is_nan() || config.t_stop <= config.dt {
        return Err(CircuitError::InvalidParameter {
            parameter: "t_stop",
        });
    }
    let layout = MnaLayout::new(circuit);
    let n = layout.dim();
    let dt = config.dt;
    let steps = (config.t_stop / dt).ceil() as usize;

    // Build the constant system matrix.
    let mut m = Matrix::<f64>::zeros(n);
    for (ei, e) in circuit.elements().iter().enumerate() {
        match e {
            Element::Resistor { a, b, ohms } => {
                crate::dc::stamp_conductance(&mut m, &layout, *a, *b, 1.0 / ohms);
            }
            Element::Capacitor { a, b, farads } => {
                crate::dc::stamp_conductance(&mut m, &layout, *a, *b, 2.0 * farads / dt);
            }
            Element::Inductor { a, b, henries } => {
                let br = layout.branch_of(ei)?;
                crate::dc::stamp_branch(&mut m, &layout, *a, *b, br, 2.0 * henries / dt);
            }
            Element::VSource { a, b, .. } => {
                let br = layout.branch_of(ei)?;
                crate::dc::stamp_branch(&mut m, &layout, *a, *b, br, 0.0);
            }
            Element::ISource { .. } => {}
        }
    }
    let lu: Lu<f64> = m.lu()?;

    // Element state for companion models.
    #[derive(Clone, Copy)]
    struct CapState {
        v_prev: f64,
        i_prev: f64,
    }
    #[derive(Clone, Copy)]
    struct IndState {
        v_prev: f64,
        i_prev: f64,
    }
    let mut cap_state: Vec<CapState> = Vec::new();
    let mut ind_state: Vec<IndState> = Vec::new();
    for e in circuit.elements() {
        match e {
            Element::Capacitor { .. } => cap_state.push(CapState {
                v_prev: 0.0,
                i_prev: 0.0,
            }),
            Element::Inductor { .. } => ind_state.push(IndState {
                v_prev: 0.0,
                i_prev: 0.0,
            }),
            _ => {}
        }
    }

    let mut waves: Vec<Vec<f64>> = vec![Vec::with_capacity(steps + 1); n];
    let mut times = Vec::with_capacity(steps + 1);
    let mut x = vec![0.0; n];
    // Record t = 0 state (all zeros: caps discharged, inductors relaxed).
    times.push(0.0);
    for (w, &xi) in waves.iter_mut().zip(&x) {
        w.push(xi);
    }

    let node_v = |x: &[f64], node: NodeId, layout: &MnaLayout| -> f64 {
        layout.node_index(node).map_or(0.0, |i| x[i])
    };

    // One rhs buffer for the whole run; `solve_into` likewise reuses `x`.
    let mut rhs = vec![0.0; n];
    for step in 1..=steps {
        let t = step as f64 * dt;
        rhs.fill(0.0);
        let mut ci = 0usize;
        let mut li = 0usize;
        for (ei, e) in circuit.elements().iter().enumerate() {
            match e {
                Element::Capacitor { a, b, farads } => {
                    let st = cap_state[ci];
                    ci += 1;
                    let g = 2.0 * farads / dt;
                    // Companion current source into node a.
                    let ieq = g * st.v_prev + st.i_prev;
                    if let Some(i) = layout.node_index(*a) {
                        rhs[i] += ieq;
                    }
                    if let Some(j) = layout.node_index(*b) {
                        rhs[j] -= ieq;
                    }
                }
                Element::Inductor { henries, .. } => {
                    let st = ind_state[li];
                    li += 1;
                    let br = layout.branch_of(ei)?;
                    let r_eq = 2.0 * henries / dt;
                    rhs[layout.branch_index(br)] = -(r_eq * st.i_prev + st.v_prev);
                }
                Element::VSource { wave, .. } => {
                    let br = layout.branch_of(ei)?;
                    rhs[layout.branch_index(br)] = wave.at(t);
                }
                Element::ISource { a, b, wave } => {
                    let i = wave.at(t);
                    if let Some(ia) = layout.node_index(*a) {
                        rhs[ia] -= i;
                    }
                    if let Some(ib) = layout.node_index(*b) {
                        rhs[ib] += i;
                    }
                }
                Element::Resistor { .. } => {}
            }
        }
        lu.solve_into(&rhs, &mut x);

        // Update companion states.
        let mut ci = 0usize;
        let mut li = 0usize;
        for (ei, e) in circuit.elements().iter().enumerate() {
            match e {
                Element::Capacitor { a, b, farads } => {
                    let g = 2.0 * farads / dt;
                    let v = node_v(&x, *a, &layout) - node_v(&x, *b, &layout);
                    let st = &mut cap_state[ci];
                    ci += 1;
                    let i_new = g * (v - st.v_prev) - st.i_prev;
                    st.v_prev = v;
                    st.i_prev = i_new;
                }
                Element::Inductor { a, b, .. } => {
                    let br = layout.branch_of(ei)?;
                    let v = node_v(&x, *a, &layout) - node_v(&x, *b, &layout);
                    let st = &mut ind_state[li];
                    li += 1;
                    st.v_prev = v;
                    st.i_prev = x[layout.branch_index(br)];
                }
                _ => {}
            }
        }

        times.push(t);
        for (w, &xi) in waves.iter_mut().zip(&x) {
            w.push(xi);
        }
    }

    Ok(TranResult {
        layout,
        times,
        waves,
    })
}

/// First time `wave` crosses `level` in the given direction at or after
/// `after`, with linear interpolation. Returns `None` if it never does.
pub fn cross_time(
    times: &[f64],
    wave: &[f64],
    level: f64,
    rising: bool,
    after: f64,
) -> Option<f64> {
    for i in 1..wave.len() {
        if times[i] < after {
            continue;
        }
        let (a, b) = (wave[i - 1], wave[i]);
        let crossed = if rising {
            a < level && b >= level
        } else {
            a > level && b <= level
        };
        if crossed {
            let frac = (level - a) / (b - a);
            return Some(times[i - 1] + frac * (times[i] - times[i - 1]));
        }
    }
    None
}

/// Index of the sample with the largest value, using a total order so
/// NaN samples (e.g. from a diverging or degenerate run) never panic:
/// under `f64::total_cmp` positive NaN sorts *above* every finite
/// value, so a polluted waveform reports a NaN sample rather than
/// aborting the caller. Ties keep the last of equally-maximal samples
/// (`max_by`). Returns `None` only for an empty waveform.
pub fn peak_index(wave: &[f64]) -> Option<usize> {
    wave.iter()
        .enumerate()
        .max_by(|x, y| x.1.total_cmp(y.1))
        .map(|(i, _)| i)
}

/// 50 %-to-50 % propagation delay between two waveforms swinging 0..`vdd`.
pub fn delay_50(times: &[f64], input: &[f64], output: &[f64], vdd: f64) -> Option<f64> {
    let t_in = cross_time(times, input, vdd / 2.0, true, 0.0)?;
    let t_out = cross_time(times, output, vdd / 2.0, true, t_in)?;
    Some(t_out - t_in)
}

/// Average of `v(t) · i(t)` over the simulated interval, W.
pub fn average_power(times: &[f64], v: &[f64], i: &[f64]) -> f64 {
    if times.len() < 2 {
        return 0.0;
    }
    let mut energy = 0.0;
    for k in 1..times.len() {
        let p0 = v[k - 1] * i[k - 1];
        let p1 = v[k] * i[k];
        energy += 0.5 * (p0 + p1) * (times[k] - times[k - 1]);
    }
    energy / (times[times.len() - 1] - times[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Waveform;

    #[test]
    fn superposition_of_single_source_decks_matches_joint_simulation() {
        // Two sources driving a coupled RLC bridge: the sum of the
        // per-source responses must equal the joint response (linearity),
        // which is what lets the eye decks run one transient per source.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let mid = c.node("mid");
        c.vsource(a, Circuit::GND, Waveform::step(1.0, 0.0, 50e-12));
        c.vsource(b, Circuit::GND, Waveform::clock(0.8, 1e9, 40e-12));
        c.resistor(a, mid, 100.0);
        c.inductor(b, mid, 1e-9);
        c.capacitor(mid, Circuit::GND, 2e-12);
        c.resistor(mid, Circuit::GND, 500.0);
        let cfg = TranConfig {
            t_stop: 4e-9,
            dt: 2e-12,
        };
        let joint = simulate(&c, &cfg).unwrap();
        let vj = joint.voltage(mid);
        let mut sum = vec![0.0; vj.len()];
        for s in c.source_indices() {
            let part = simulate(&c.single_source(s), &cfg).unwrap();
            for (acc, v) in sum.iter_mut().zip(part.voltage(mid)) {
                *acc += v;
            }
        }
        for (k, (&a, &b)) in vj.iter().zip(&sum).enumerate() {
            assert!((a - b).abs() < 1e-9, "step {k}: joint {a} vs sum {b}");
        }
    }

    #[test]
    fn rc_step_time_constant() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(inp, Circuit::GND, Waveform::step(1.0, 0.0, 1e-12));
        c.resistor(inp, out, 1_000.0);
        c.capacitor(out, Circuit::GND, 1e-12); // τ = 1 ns
        let r = simulate(
            &c,
            &TranConfig {
                t_stop: 5e-9,
                dt: 2e-12,
            },
        )
        .unwrap();
        let v = r.voltage(out);
        // At t = τ the response is 1 - 1/e ≈ 0.632.
        let idx = r.times.iter().position(|&t| t >= 1e-9).unwrap();
        assert!((v[idx] - 0.632).abs() < 0.01, "v(τ) = {}", v[idx]);
        assert!((v.last().unwrap() - 1.0).abs() < 0.01);
    }

    #[test]
    fn lc_oscillation_period() {
        // Series RLC with tiny R: period 2π√(LC) = 6.28 ns for 1nH/1µF...
        // use 10nH, 10pF → T = 1.987 ns.
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GND, Waveform::step(1.0, 0.0, 1e-12));
        c.inductor(a, b, 10e-9);
        c.capacitor(b, Circuit::GND, 10e-12);
        c.resistor(b, Circuit::GND, 1e6);
        let r = simulate(
            &c,
            &TranConfig {
                t_stop: 6e-9,
                dt: 1e-12,
            },
        )
        .unwrap();
        let v = r.voltage(b);
        // Under-damped: output overshoots toward 2.0.
        let peak = v.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 1.8, "peak = {peak}");
        // First peak at half a period ≈ 0.99 ns.
        let idx = peak_index(&v).unwrap();
        let t_peak = r.times[idx];
        assert!((t_peak - 0.99e-9).abs() < 0.15e-9, "t_peak = {t_peak}");
    }

    #[test]
    fn peak_index_survives_nan_and_degenerate_waveforms() {
        // A healthy waveform: plain argmax.
        assert_eq!(peak_index(&[0.0, 1.5, 0.7]), Some(1));
        // All-equal (flat) waveform: a stable, deterministic answer
        // (max_by keeps the last of equally-maximal samples).
        assert_eq!(peak_index(&[2.0, 2.0, 2.0]), Some(2));
        // Signed zeros are ordered (-0.0 < +0.0 under total_cmp).
        assert_eq!(peak_index(&[-0.0, 0.0]), Some(1));
        // NaN-polluted waveform — the shape a diverging solve produces.
        // The old partial_cmp(..).unwrap() comparator panicked here;
        // total_cmp ranks NaN above every finite sample instead.
        let polluted = [0.0, f64::INFINITY, f64::NAN, 3.0];
        assert_eq!(peak_index(&polluted), Some(2));
        // Empty waveform: no panic, just None.
        assert_eq!(peak_index(&[]), None);
    }

    #[test]
    fn delay_measurement_on_rc() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(inp, Circuit::GND, Waveform::step(1.0, 0.5e-9, 1e-12));
        c.resistor(inp, out, 1_000.0);
        c.capacitor(out, Circuit::GND, 1e-12);
        let r = simulate(
            &c,
            &TranConfig {
                t_stop: 8e-9,
                dt: 1e-12,
            },
        )
        .unwrap();
        let d = delay_50(&r.times, &r.voltage(inp), &r.voltage(out), 1.0).unwrap();
        // RC step 50 % delay = τ ln 2 = 0.693 ns.
        assert!((d - 0.693e-9).abs() < 0.02e-9, "d = {d}");
    }

    #[test]
    fn average_power_of_resistor_load() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource(a, Circuit::GND, Waveform::Dc(2.0));
        c.resistor(a, Circuit::GND, 100.0);
        let r = simulate(
            &c,
            &TranConfig {
                t_stop: 1e-9,
                dt: 1e-12,
            },
        )
        .unwrap();
        let i = r.branch_current(0).unwrap();
        let v = r.voltage(a);
        // Source delivers 40 mW (branch current flows a→b inside source).
        let p = average_power(&r.times, &v, &i).abs();
        assert!((p - 0.04).abs() < 0.002, "p = {p}");
    }

    #[test]
    fn transient_sine_matches_ac_analysis() {
        // Physics crosscheck: drive the RC low-pass with a sine at its
        // corner frequency; the steady-state transient amplitude must
        // match the AC solution (1/√2) within integration error.
        let f3 = 1.0 / (2.0 * std::f64::consts::PI * 1_000.0 * 1e-9);
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.vsource(
            inp,
            Circuit::GND,
            Waveform::Sine {
                offset: 0.0,
                amplitude: 1.0,
                freq_hz: f3,
            },
        );
        c.resistor(inp, out, 1_000.0);
        c.capacitor(out, Circuit::GND, 1e-9);
        let period = 1.0 / f3;
        let r = simulate(
            &c,
            &TranConfig {
                t_stop: 12.0 * period,
                dt: period / 400.0,
            },
        )
        .unwrap();
        // Amplitude over the last two periods.
        let v = r.voltage(out);
        let tail = &v[v.len() - 800..];
        let amp = tail.iter().cloned().fold(0.0f64, f64::max);
        let ac = crate::ac::solve_at(&c, f3).unwrap().voltage(out).abs();
        assert!((amp - ac).abs() / ac < 0.01, "tran {amp} vs ac {ac}");
        assert!((ac - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn invalid_config_rejected() {
        let c = Circuit::new();
        assert!(simulate(
            &c,
            &TranConfig {
                t_stop: 1e-9,
                dt: 0.0
            }
        )
        .is_err());
        assert!(simulate(
            &c,
            &TranConfig {
                t_stop: 0.0,
                dt: 1e-12
            }
        )
        .is_err());
    }

    #[test]
    fn cross_time_interpolates() {
        let times = [0.0, 1.0, 2.0];
        let wave = [0.0, 1.0, 0.0];
        let t = cross_time(&times, &wave, 0.5, true, 0.0).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        let t = cross_time(&times, &wave, 0.5, false, 0.0).unwrap();
        assert!((t - 1.5).abs() < 1e-12);
        assert!(cross_time(&times, &wave, 2.0, true, 0.0).is_none());
    }
}
