//! Behavioural AIB driver stages for transient decks.
//!
//! The transmitter is a Thevenin source (data waveform with finite edges
//! behind the 47.4 Ω output impedance); the receiver is its input
//! capacitance plus the chiplet pad parasitic. This is the linearised
//! version of the inverter chain of Fig. 6 — adequate because the paper's
//! decks also fix TX/RX strengths (128X/16X) for every experiment.

use crate::netlist::{Circuit, NodeId, Waveform};
use techlib::iodriver::IoDriver;

/// Instantiates the transmitter: `data` behind the driver impedance.
/// Returns the element index of the source (for current/power probes).
pub fn add_tx(circuit: &mut Circuit, driver: &IoDriver, out: NodeId, data: Waveform) -> usize {
    let internal = circuit.node("tx_int");
    circuit.vsource(internal, Circuit::GND, data);
    let src_index = circuit.elements().len() - 1;
    circuit.resistor(internal, out, driver.output_impedance_ohm);
    src_index
}

/// Instantiates the receiver load (RX input + pad capacitance) at `node`.
pub fn add_rx(circuit: &mut Circuit, driver: &IoDriver, node: NodeId) {
    circuit.capacitor(node, Circuit::GND, driver.rx_input_cap_f);
}

/// The step waveform the Table V decks drive: 0→VDD at `delay` with the
/// driver's 20 ps output edge.
pub fn step_data(vdd: f64, delay: f64) -> Waveform {
    Waveform::step(vdd, delay, 20e-12)
}

/// The PRBS-7 waveform the eye-diagram decks drive at `rate_bps`.
pub fn prbs_data(vdd: f64, rate_bps: f64, seed: u8) -> Waveform {
    Waveform::Prbs {
        v0: 0.0,
        v1: vdd,
        bit: 1.0 / rate_bps,
        edge: 40e-12,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tran::{cross_time, simulate, TranConfig};

    #[test]
    fn tx_drives_a_load_through_rout() {
        let mut c = Circuit::new();
        let pad = c.node("pad");
        let drv = IoDriver::aib();
        add_tx(&mut c, &drv, pad, step_data(0.9, 10e-12));
        add_rx(&mut c, &drv, pad);
        let r = simulate(
            &c,
            &TranConfig {
                t_stop: 1e-9,
                dt: 1e-12,
            },
        )
        .unwrap();
        let v = r.voltage(pad);
        assert!((v.last().unwrap() - 0.9).abs() < 1e-3);
        // RC = 47.4 × 55 fF = 2.6 ps: essentially instant at this scale.
        let t = cross_time(&r.times, &v, 0.45, true, 0.0).unwrap();
        assert!(t < 60e-12, "t = {t}");
    }

    #[test]
    fn source_index_probes_current() {
        let mut c = Circuit::new();
        let pad = c.node("pad");
        let drv = IoDriver::aib();
        let src = add_tx(&mut c, &drv, pad, Waveform::Dc(0.9));
        c.resistor(pad, Circuit::GND, 47.4);
        let r = simulate(
            &c,
            &TranConfig {
                t_stop: 0.1e-9,
                dt: 1e-12,
            },
        )
        .unwrap();
        let i = r.branch_current(src).expect("vsource branch");
        // Divider: 0.9 V over 94.8 Ω ≈ 9.5 mA.
        assert!((i.last().unwrap().abs() - 0.0095).abs() < 0.0002);
    }

    #[test]
    fn prbs_data_uses_bit_period() {
        let w = prbs_data(0.9, 0.7e9, 7);
        if let Waveform::Prbs { bit, .. } = w {
            assert!((bit - 1.0 / 0.7e9).abs() < 1e-18);
        } else {
            panic!("expected PRBS waveform");
        }
    }
}
