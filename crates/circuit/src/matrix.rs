//! Dense LU factorisation with partial pivoting, generic over the scalar.
//!
//! MNA systems in this workspace are small (tens to a few hundred
//! unknowns), so a dense solver is simpler and faster than a sparse one.
//! The factorisation is reusable: transient analysis factors once and
//! re-solves per step.

use crate::complex::Complex64;
use crate::CircuitError;

/// Scalar types the solver works over.
pub trait Scalar:
    Copy
    + Default
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Magnitude for pivot selection.
    fn magnitude(self) -> f64;
}

impl Scalar for f64 {
    fn zero() -> f64 {
        0.0
    }
    fn one() -> f64 {
        1.0
    }
    fn magnitude(self) -> f64 {
        self.abs()
    }
}

impl Scalar for Complex64 {
    fn zero() -> Complex64 {
        Complex64::ZERO
    }
    fn one() -> Complex64 {
        Complex64::ONE
    }
    fn magnitude(self) -> f64 {
        self.abs()
    }
}

/// A dense row-major matrix.
#[derive(Debug, Clone)]
pub struct Matrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Matrix<T> {
        Matrix {
            n,
            data: vec![T::zero(); n * n],
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.n + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.data[r * self.n + c] = v;
    }

    /// Adds `v` to element `(r, c)` — the MNA stamp primitive.
    pub fn add(&mut self, r: usize, c: usize, v: T) {
        let i = r * self.n + c;
        self.data[i] = self.data[i] + v;
    }

    /// Factors the matrix in place (Doolittle LU with partial pivoting).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularMatrix`] if a pivot underflows.
    pub fn lu(mut self) -> Result<Lu<T>, CircuitError> {
        if techlib::faults::armed("circuit.lu") {
            // Injected fault: report the factorisation as singular at the
            // first pivot, the same error a genuinely degenerate system
            // would produce.
            return Err(CircuitError::SingularMatrix { pivot: 0 });
        }
        techlib::obs::add(techlib::obs::CIRCUIT_LU_FACTOR, 1);
        let n = self.n;
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Pivot.
            let mut p = k;
            let mut best = self.get(k, k).magnitude();
            for r in (k + 1)..n {
                let m = self.get(r, k).magnitude();
                if m > best {
                    best = m;
                    p = r;
                }
            }
            if best < 1e-300 {
                return Err(CircuitError::SingularMatrix { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    let a = self.get(k, c);
                    let b = self.get(p, c);
                    self.set(k, c, b);
                    self.set(p, c, a);
                }
                perm.swap(k, p);
            }
            let pivot = self.get(k, k);
            for r in (k + 1)..n {
                let factor = self.get(r, k) / pivot;
                self.set(r, k, factor);
                for c in (k + 1)..n {
                    let v = self.get(r, c) - factor * self.get(k, c);
                    self.set(r, c, v);
                }
            }
        }
        Ok(Lu { m: self, perm })
    }
}

/// A reusable LU factorisation.
#[derive(Debug, Clone)]
pub struct Lu<T> {
    m: Matrix<T>,
    perm: Vec<usize>,
}

impl<T: Scalar> Lu<T> {
    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x = vec![T::zero(); self.m.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-provided buffer — the allocation-
    /// free form the transient stepper uses once per time step.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` does not match the matrix
    /// dimension.
    pub fn solve_into(&self, b: &[T], x: &mut [T]) {
        techlib::obs::add(techlib::obs::CIRCUIT_LU_SOLVE, 1);
        let n = self.m.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(x.len(), n, "solution length mismatch");
        // Apply permutation.
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        // Forward substitution (L has unit diagonal).
        for r in 1..n {
            let mut acc = x[r];
            for (c, &xc) in x.iter().enumerate().take(r) {
                acc = acc - self.m.get(r, c) * xc;
            }
            x[r] = acc;
        }
        // Back substitution.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for (c, &xc) in x.iter().enumerate().skip(r + 1) {
                acc = acc - self.m.get(r, c) * xc;
            }
            x[r] = acc / self.m.get(r, r);
        }
    }
}

/// Convenience: solve `A x = b` in one call.
///
/// # Errors
///
/// Returns [`CircuitError::SingularMatrix`] if `a` is singular.
pub fn solve<T: Scalar>(a: Matrix<T>, b: &[T]) -> Result<Vec<T>, CircuitError> {
    Ok(a.lu()?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_2x2_real() {
        let mut a = Matrix::<f64>::zeros(2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        let x = solve(a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut a = Matrix::<f64>::zeros(2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 0.0);
        let x = solve(a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = Matrix::<f64>::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        assert!(matches!(
            solve(a, &[1.0, 2.0]),
            Err(CircuitError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn solves_complex_system() {
        // (1+i) x = 2i  =>  x = 2i/(1+i) = 1+i
        let mut a = Matrix::<Complex64>::zeros(1);
        a.set(0, 0, Complex64::new(1.0, 1.0));
        let x = solve(a, &[Complex64::new(0.0, 2.0)]).unwrap();
        assert!((x[0] - Complex64::new(1.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn factorisation_is_reusable() {
        let mut a = Matrix::<f64>::zeros(2);
        a.set(0, 0, 4.0);
        a.set(1, 1, 2.0);
        let lu = a.lu().unwrap();
        let x1 = lu.solve(&[4.0, 2.0]);
        let x2 = lu.solve(&[8.0, 6.0]);
        assert_eq!(x1, vec![1.0, 1.0]);
        assert_eq!(x2, vec![2.0, 3.0]);
    }

    #[test]
    fn random_5x5_round_trip() {
        // A·x recovered by solve must equal the original x.
        let n = 5;
        let mut a = Matrix::<f64>::zeros(n);
        let mut seed = 1u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, next() + if r == c { 3.0 } else { 0.0 });
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let mut b = vec![0.0; n];
        for (r, bi) in b.iter_mut().enumerate() {
            for (c, &xc) in x_true.iter().enumerate() {
                *bi += a.get(r, c) * xc;
            }
        }
        let x = solve(a, &b).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9);
        }
    }
}
