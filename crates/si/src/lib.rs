#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
//! Signal-integrity analysis (Section VII, Tables V/VI, Fig. 14).
//!
//! * [`rlgc`] — analytic per-unit-length RLGC extraction from each
//!   technology's stackup (the HyperLynx step of the paper's flow).
//! * [`link`] — end-to-end inter-chiplet link simulation: AIB TX →
//!   micro-bump → channel (RDL trace, stacked-via column, micro-bump, or
//!   back-to-back mini-TSV) → micro-bump → AIB RX, measuring propagation
//!   delay and power (Table V).
//! * [`eye`] — PRBS-7 eye diagrams with two switching aggressors at
//!   0.7 Gbps (Fig. 14), reporting eye width and height.
//! * [`material_study`] — the fixed-length (400 µm) material comparison of
//!   Table VI.

pub mod eye;
pub mod jitter;
pub mod link;
pub mod material_study;
pub mod rlgc;
pub mod sparams;

pub use eye::EyeReport;
pub use link::{ChannelKind, LinkReport};

#[cfg(test)]
mod tests {
    #[test]
    fn modules_are_wired() {
        // Compile-time smoke check that the public API is reachable.
        let spec = techlib::spec::InterposerSpec::for_kind(techlib::spec::InterposerKind::Glass25D);
        let line = crate::rlgc::extract_line(&spec, 1e-3);
        assert!(line.c_per_m > 0.0);
    }
}
