//! Channel S-parameters (the Fig. 13 HFSS→ADS hand-off, reproduced).
//!
//! Each technology's worst-class channel is composed as a cascade of ABCD
//! two-ports — TX bump, line (or via column / TSV pair), RX bump — swept
//! in frequency, with Touchstone export for interoperability with any
//! RF tool.

use crate::link::ChannelKind;
use crate::rlgc;
use circuit::complex::Complex64;
use circuit::twoport::{cascade_all, Abcd};
use serde::Serialize;
use techlib::bump::BumpModel;
use techlib::spec::InterposerSpec;
use techlib::via::{stacked_via_column, ViaKind, ViaModel};

/// An S-parameter sweep of one channel.
#[derive(Debug, Clone, Serialize)]
pub struct ChannelSweep {
    /// The channel description.
    pub channel: ChannelKind,
    /// (frequency Hz, |S21| dB) points.
    pub insertion_loss_db: Vec<(f64, f64)>,
    /// (frequency Hz, |S11| dB) points.
    pub return_loss_db: Vec<(f64, f64)>,
}

/// Builds the ABCD network of `channel` at `freq_hz`.
pub fn channel_abcd(channel: &ChannelKind, freq_hz: f64) -> Abcd {
    let omega = 2.0 * std::f64::consts::PI * freq_hz;
    let spec = InterposerSpec::for_kind(channel.tech());
    let bump = BumpModel::microbump(&spec);
    let bump_port = |b: &BumpModel| -> Abcd {
        Abcd::shunt(Complex64::new(0.0, omega * b.capacitance_f)).cascade(Abcd::series(
            Complex64::new(b.resistance_ohm, omega * b.inductance_h),
        ))
    };
    let body = match channel {
        ChannelKind::RdlTrace { tech, length_um } => {
            let line = rlgc::extract_line(&InterposerSpec::for_kind(*tech), length_um * 1e-6);
            Abcd::line(&line, freq_hz)
        }
        ChannelKind::StackedViaColumn { levels } => {
            let (r, c, l, _) = stacked_via_column(&spec, *levels);
            Abcd::series(Complex64::new(r, omega * l))
                .cascade(Abcd::shunt(Complex64::new(0.0, omega * c)))
        }
        ChannelKind::MicroBump => {
            let b = BumpModel::microbump(&spec);
            Abcd::series(Complex64::new(b.resistance_ohm, omega * b.inductance_h))
                .cascade(Abcd::shunt(Complex64::new(0.0, omega * b.capacitance_f)))
        }
        ChannelKind::BackToBackTsv => {
            let tsv = ViaModel::canonical(ViaKind::MiniTsv, &spec);
            let one = Abcd::series(Complex64::new(tsv.resistance_ohm, omega * tsv.inductance_h))
                .cascade(Abcd::shunt(Complex64::new(0.0, omega * tsv.capacitance_f)));
            one.cascade(one)
        }
    };
    cascade_all(&[bump_port(&bump), body, bump_port(&bump)])
}

/// Sweeps the channel from `f_start` to `f_stop` (log-spaced).
///
/// # Panics
///
/// Panics if the range is empty or non-positive.
pub fn sweep(channel: &ChannelKind, f_start: f64, f_stop: f64, points: usize) -> ChannelSweep {
    assert!(
        points >= 2 && f_start > 0.0 && f_stop > f_start,
        "bad sweep"
    );
    let ratio = (f_stop / f_start).ln();
    let mut il = Vec::with_capacity(points);
    let mut rl = Vec::with_capacity(points);
    for i in 0..points {
        let f = f_start * (ratio * i as f64 / (points - 1) as f64).exp();
        let net = channel_abcd(channel, f);
        let (s11, _, s21, _) = net.to_s(50.0);
        il.push((f, 20.0 * s21.abs().log10()));
        rl.push((f, 20.0 * s11.abs().max(1e-12).log10()));
    }
    ChannelSweep {
        channel: channel.clone(),
        insertion_loss_db: il,
        return_loss_db: rl,
    }
}

/// Insertion loss at the 0.7 Gbps Nyquist frequency (0.35 GHz), dB.
pub fn nyquist_loss_db(channel: &ChannelKind) -> f64 {
    let net = channel_abcd(channel, 0.35e9);
    net.s21_db(50.0)
}

/// Touchstone export of the channel over the sweep range.
pub fn touchstone(channel: &ChannelKind, f_start: f64, f_stop: f64, points: usize) -> String {
    assert!(
        points >= 2 && f_start > 0.0 && f_stop > f_start,
        "bad sweep"
    );
    let ratio = (f_stop / f_start).ln();
    let pts: Vec<(f64, Abcd)> = (0..points)
        .map(|i| {
            let f = f_start * (ratio * i as f64 / (points - 1) as f64).exp();
            (f, channel_abcd(channel, f))
        })
        .collect();
    circuit::twoport::to_touchstone(&pts, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use techlib::spec::InterposerKind;

    #[test]
    fn short_channels_are_nearly_transparent() {
        // Table V's vertical links barely attenuate at Nyquist.
        for ch in [
            ChannelKind::MicroBump,
            ChannelKind::BackToBackTsv,
            ChannelKind::StackedViaColumn { levels: 3 },
        ] {
            let loss = nyquist_loss_db(&ch);
            assert!(loss > -0.5, "{ch:?}: {loss} dB");
        }
    }

    #[test]
    fn long_silicon_trace_is_lossiest() {
        let si = nyquist_loss_db(&ChannelKind::RdlTrace {
            tech: InterposerKind::Silicon25D,
            length_um: 2_000.0,
        });
        let glass = nyquist_loss_db(&ChannelKind::RdlTrace {
            tech: InterposerKind::Glass25D,
            length_um: 2_000.0,
        });
        assert!(si < glass, "{si} vs {glass}");
    }

    #[test]
    fn insertion_loss_grows_with_frequency() {
        let sweep = sweep(
            &ChannelKind::RdlTrace {
                tech: InterposerKind::Shinko,
                length_um: 3_700.0,
            },
            1e8,
            2e10,
            21,
        );
        let first = sweep.insertion_loss_db.first().unwrap().1;
        let last = sweep.insertion_loss_db.last().unwrap().1;
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn touchstone_format_is_wellformed() {
        let ts = touchstone(
            &ChannelKind::RdlTrace {
                tech: InterposerKind::Glass25D,
                length_um: 5_980.0,
            },
            1e8,
            1e10,
            11,
        );
        assert!(ts.contains("# Hz S RI R 50"));
        // Header comment + option line + 11 data rows.
        assert_eq!(ts.lines().count(), 13);
        let cols = ts.lines().last().unwrap().split_whitespace().count();
        assert_eq!(cols, 9, "freq + 8 S-parameter numbers");
    }
}
