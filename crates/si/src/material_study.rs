//! Material-impact study at fixed wirelength (Table VI).
//!
//! A 400 µm logic-to-logic line plus a pair of build-up vias is simulated
//! on every interposer technology. With length fixed, the comparison
//! isolates the material/geometry effects: APX's thick wide copper wins,
//! silicon's thin narrow wires lose, and glass lands mid-pack with a
//! slight penalty over Shinko from its larger (22 µm) vias.

use crate::link::{simulate_link, ChannelKind, LinkReport};
use circuit::CircuitError;
use serde::Serialize;
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::via::{ViaKind, ViaModel};

/// Fixed line length of the study, µm.
pub const STUDY_LENGTH_UM: f64 = 400.0;

/// One Table VI row.
#[derive(Debug, Clone, Serialize)]
pub struct MaterialRow {
    /// Technology.
    pub tech: InterposerKind,
    /// Propagation delay over line + via pair, ps.
    pub delay_ps: f64,
    /// Power over line + via pair, µW.
    pub power_uw: f64,
}

/// Runs the fixed-length study for one technology.
///
/// The via pair is added analytically on top of the line simulation: each
/// via contributes its RC to the delay (Elmore) and its capacitance to the
/// switched energy.
///
/// # Errors
///
/// Propagates transient-simulation failures.
pub fn material_row(tech: InterposerKind) -> Result<MaterialRow, CircuitError> {
    let spec = InterposerSpec::for_kind(tech);
    let line: LinkReport = simulate_link(&ChannelKind::RdlTrace {
        tech,
        length_um: STUDY_LENGTH_UM,
    })?;
    let via = ViaModel::canonical(ViaKind::Microvia, &spec);
    let rout = techlib::iodriver::IoDriver::aib().output_impedance_ohm;
    let via_delay_ps = 0.693 * (rout + via.resistance_ohm) * (2.0 * via.capacitance_f) * 1e12;
    let toggle = 0.5 * techlib::calib::DATA_RATE_BPS * techlib::calib::TABLE5_LINK_ACTIVITY;
    let via_power_uw =
        2.0 * via.capacitance_f * techlib::calib::VDD * techlib::calib::VDD * toggle * 1e6;
    Ok(MaterialRow {
        tech,
        delay_ps: line.interconnect_delay_ps + via_delay_ps,
        power_uw: line.interconnect_power_uw + via_power_uw,
    })
}

/// Runs the whole Table VI (all five interposer technologies).
///
/// # Errors
///
/// Propagates per-row failures.
pub fn table6() -> Result<Vec<MaterialRow>, CircuitError> {
    [
        InterposerKind::Glass25D,
        InterposerKind::Silicon25D,
        InterposerKind::Shinko,
        InterposerKind::Apx,
    ]
    .iter()
    .map(|&tech| material_row(tech))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(tech: InterposerKind) -> MaterialRow {
        material_row(tech).unwrap()
    }

    #[test]
    fn silicon_has_highest_delay_and_power() {
        // Section VII-F: "the silicon interposer exhibits the highest
        // delay and power due to narrower wires".
        let si = row(InterposerKind::Silicon25D);
        for other in [
            InterposerKind::Glass25D,
            InterposerKind::Shinko,
            InterposerKind::Apx,
        ] {
            let o = row(other);
            assert!(
                si.delay_ps > o.delay_ps,
                "{other}: {} vs {}",
                si.delay_ps,
                o.delay_ps
            );
            assert!(si.power_uw > o.power_uw, "{other}");
        }
    }

    #[test]
    fn apx_has_lowest_delay() {
        // Section VII-F: "APX interposer shows the lowest delay and power
        // due to thicker metal lines".
        let apx = row(InterposerKind::Apx);
        for other in [
            InterposerKind::Glass25D,
            InterposerKind::Silicon25D,
            InterposerKind::Shinko,
        ] {
            assert!(apx.delay_ps < row(other).delay_ps, "{other}");
        }
    }

    #[test]
    fn glass_trails_shinko_slightly() {
        // Section VII-F: similar line widths, but the glass via is larger,
        // so glass carries marginally higher delay and power.
        let glass = row(InterposerKind::Glass25D);
        let shinko = row(InterposerKind::Shinko);
        assert!(
            glass.delay_ps >= shinko.delay_ps * 0.95,
            "{} vs {}",
            glass.delay_ps,
            shinko.delay_ps
        );
    }

    #[test]
    fn table6_has_four_rows() {
        let rows = table6().unwrap();
        assert_eq!(rows.len(), 4);
        for r in rows {
            assert!(r.delay_ps > 0.0 && r.power_uw > 0.0);
        }
    }
}
