//! Inter-chiplet link delay and power (Table V).
//!
//! Each link deck is: AIB TX (Thevenin behind 47.4 Ω) → TX micro-bump →
//! channel → RX micro-bump → AIB RX load, simulated in the time domain.
//! The *interconnect delay* is the 50 % arrival shift relative to a
//! zero-length baseline deck (driver + bumps + RX only), matching the
//! paper's driver/interconnect split where the driver column is constant
//! per technology. Interconnect power comes from the charge the source
//! delivers per transition, scaled to the 0.7 Gbps toggle pattern.

use circuit::netlist::Circuit;
use circuit::tran::{cross_time, simulate, TranConfig};
use circuit::CircuitError;
use serde::{Deserialize, Serialize};
use techlib::bump::BumpModel;
use techlib::calib;
use techlib::iodriver::IoDriver;
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::via::{stacked_via_column, ViaKind, ViaModel};

/// The physical channel of an inter-chiplet link.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum ChannelKind {
    /// Lateral RDL trace of the given length on the technology.
    RdlTrace {
        /// Technology the trace is on.
        tech: InterposerKind,
        /// Routed length, µm.
        length_um: f64,
    },
    /// Glass 3D stacked-via column down to the embedded die.
    StackedViaColumn {
        /// Via levels in the column.
        levels: usize,
    },
    /// Silicon 3D tier-to-tier micro-bump.
    MicroBump,
    /// Silicon 3D back-to-back mini-TSV pair (inter-tile, Fig. 13b).
    BackToBackTsv,
}

impl ChannelKind {
    /// The technology whose bumps terminate this channel.
    pub fn tech(&self) -> InterposerKind {
        match self {
            ChannelKind::RdlTrace { tech, .. } => *tech,
            ChannelKind::StackedViaColumn { .. } => InterposerKind::Glass3D,
            ChannelKind::MicroBump | ChannelKind::BackToBackTsv => InterposerKind::Silicon3D,
        }
    }

    /// Physical channel length, µm (via-column height, bump standoff, or
    /// trace length — the Table V "WL" column).
    pub fn length_um(&self) -> f64 {
        self.length_um_with(&InterposerSpec::for_kind(self.tech()))
    }

    /// [`ChannelKind::length_um`] against an explicit (possibly
    /// overridden) spec for this channel's technology.
    pub fn length_um_with(&self, spec: &InterposerSpec) -> f64 {
        match self {
            ChannelKind::RdlTrace { length_um, .. } => *length_um,
            ChannelKind::StackedViaColumn { levels } => stacked_via_column(spec, *levels).3,
            ChannelKind::MicroBump => BumpModel::microbump(spec).height_um,
            ChannelKind::BackToBackTsv => {
                2.0 * ViaModel::canonical(ViaKind::MiniTsv, spec).height_um
            }
        }
    }
}

/// Delay/power result of one link (one Table V row half).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkReport {
    /// Driver (TX+RX) delay including local bump loading, ps.
    pub driver_delay_ps: f64,
    /// Interconnect delay beyond the zero-length baseline, ps.
    pub interconnect_delay_ps: f64,
    /// Driver power at the data rate, µW.
    pub driver_power_uw: f64,
    /// Interconnect (channel charging) power, µW.
    pub interconnect_power_uw: f64,
    /// Channel length, µm.
    pub length_um: f64,
}

impl LinkReport {
    /// Total link delay, ps.
    pub fn total_delay_ps(&self) -> f64 {
        self.driver_delay_ps + self.interconnect_delay_ps
    }

    /// Total link power, µW.
    pub fn total_power_uw(&self) -> f64 {
        self.driver_power_uw + self.interconnect_power_uw
    }
}

const STEP_DELAY_S: f64 = 50e-12;
/// Driver output edge time (see [`circuit::driver::step_data`]).
const STEP_EDGE_S: f64 = 20e-12;

fn build_deck(
    channel: Option<&ChannelKind>,
    spec: &InterposerSpec,
) -> (Circuit, usize, circuit::netlist::NodeId) {
    let driver = IoDriver::aib();
    let bump = BumpModel::microbump(spec);
    let mut c = Circuit::new();
    let tx_pad = c.node("tx_pad");
    let src = circuit::driver::add_tx(
        &mut c,
        &driver,
        tx_pad,
        circuit::driver::step_data(calib::VDD, STEP_DELAY_S),
    );
    // TX bump: series L+R, shunt C.
    c.capacitor(tx_pad, Circuit::GND, bump.capacitance_f);
    let ch_in = c.node("ch_in");
    c.resistor(tx_pad, ch_in, bump.resistance_ohm.max(1e-4));
    let ch_out = match channel {
        None => ch_in,
        Some(ChannelKind::RdlTrace { length_um, .. }) => {
            let line = crate::rlgc::extract_line(spec, length_um * 1e-6);
            let out = c.node("ch_out");
            let segments = ((length_um / 200.0).ceil() as usize).clamp(4, 40);
            line.add_to_circuit(&mut c, ch_in, out, segments);
            out
        }
        Some(ChannelKind::StackedViaColumn { levels }) => {
            let (r, cap, l, _) = stacked_via_column(spec, *levels);
            let out = c.node("ch_out");
            let mid = c.node("ch_mid");
            c.resistor(ch_in, mid, r.max(1e-4));
            c.inductor(mid, out, l.max(1e-15));
            c.capacitor(out, Circuit::GND, cap.max(1e-18));
            out
        }
        Some(ChannelKind::MicroBump) => {
            let b = BumpModel::microbump(spec);
            let out = c.node("ch_out");
            let mid = c.node("ch_mid");
            c.resistor(ch_in, mid, b.resistance_ohm.max(1e-4));
            c.inductor(mid, out, b.inductance_h.max(1e-15));
            c.capacitor(out, Circuit::GND, b.capacitance_f);
            out
        }
        Some(ChannelKind::BackToBackTsv) => {
            let tsv = ViaModel::canonical(ViaKind::MiniTsv, spec);
            let mut prev = ch_in;
            for i in 0..2 {
                let mid = c.node(format!("tsv_m{i}"));
                let out = c.node(format!("tsv_o{i}"));
                c.resistor(prev, mid, tsv.resistance_ohm.max(1e-4));
                c.inductor(mid, out, tsv.inductance_h.max(1e-15));
                c.capacitor(out, Circuit::GND, tsv.capacitance_f.max(1e-18));
                prev = out;
            }
            prev
        }
    };
    // RX bump + receiver.
    let rx_pad = c.node("rx_pad");
    c.resistor(ch_out, rx_pad, bump.resistance_ohm.max(1e-4));
    c.capacitor(rx_pad, Circuit::GND, bump.capacitance_f);
    circuit::driver::add_rx(&mut c, &IoDriver::aib(), rx_pad);
    (c, src, rx_pad)
}

fn deck_t50_and_charge(
    channel: Option<&ChannelKind>,
    spec: &InterposerSpec,
) -> Result<(f64, f64), CircuitError> {
    let (c, src, rx) = build_deck(channel, spec);
    let result = simulate(
        &c,
        &TranConfig {
            t_stop: 3e-9,
            dt: 0.5e-12,
        },
    )?;
    let v_rx = result.voltage(rx);
    // Reference the source waveform's own 50 % point (delay + half edge).
    let t50 = cross_time(&result.times, &v_rx, calib::VDD / 2.0, true, 0.0)
        .ok_or(CircuitError::InvalidParameter { parameter: "t50" })?
        - (STEP_DELAY_S + STEP_EDGE_S / 2.0);
    // Charge drawn by the source over the transition.
    let i = result
        .branch_current(src)
        .ok_or(CircuitError::InvalidElement {
            reason: "tx source has no branch current",
        })?;
    let mut charge = 0.0;
    for k in 1..result.times.len() {
        charge += 0.5 * (i[k] + i[k - 1]) * (result.times[k] - result.times[k - 1]);
    }
    Ok((t50, charge.abs()))
}

/// Simulates one link and reports the Table V delay/power split.
///
/// # Errors
///
/// Propagates solver failures from the transient analysis.
pub fn simulate_link(channel: &ChannelKind) -> Result<LinkReport, CircuitError> {
    simulate_link_with(channel, &InterposerSpec::for_kind(channel.tech()))
}

/// [`simulate_link`] against an explicit (possibly overridden) spec for
/// the channel's technology, the form scenario contexts use.
///
/// # Errors
///
/// Propagates solver failures from the transient analysis.
pub fn simulate_link_with(
    channel: &ChannelKind,
    spec: &InterposerSpec,
) -> Result<LinkReport, CircuitError> {
    if techlib::faults::armed("si.link") {
        // Injected fault: report the link deck as singular, the same
        // error a degenerate MNA system would produce.
        return Err(CircuitError::SingularMatrix { pivot: 0 });
    }
    techlib::obs::add(techlib::obs::SI_LINKS_SIMULATED, 1);
    let driver = IoDriver::aib();
    let bump = BumpModel::microbump(spec);
    let (t50_base, q_base) = deck_t50_and_charge(None, spec)?;
    let (t50_chan, q_chan) = deck_t50_and_charge(Some(channel), spec)?;
    let toggle_rate = 0.5 * calib::DATA_RATE_BPS * calib::TABLE5_LINK_ACTIVITY;
    let e_base = q_base * calib::VDD;
    let e_chan = q_chan * calib::VDD;
    Ok(LinkReport {
        driver_delay_ps: driver.intrinsic_delay_ps + t50_base * 1e12,
        interconnect_delay_ps: (t50_chan - t50_base) * 1e12,
        driver_power_uw: (driver.full_rate_power_w() + e_base * toggle_rate) * 1e6,
        interconnect_power_uw: (e_chan - e_base).max(0.0) * toggle_rate * 1e6,
        length_um: channel.length_um_with(spec),
    })
    .map(|mut r| {
        // Keep the local-bump loading in the driver column, as the paper
        // does (driver delay is constant per technology).
        let _ = bump;
        r.interconnect_delay_ps = r.interconnect_delay_ps.max(0.0);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rdl(tech: InterposerKind, len: f64) -> LinkReport {
        simulate_link(&ChannelKind::RdlTrace {
            tech,
            length_um: len,
        })
        .unwrap()
    }

    #[test]
    fn driver_delay_is_near_constant_39ps() {
        // Table V: 39.47–39.79 ps for every design.
        for tech in [
            InterposerKind::Glass25D,
            InterposerKind::Silicon25D,
            InterposerKind::Apx,
        ] {
            let r = rdl(tech, 1_000.0);
            assert!(
                (37.0..44.0).contains(&r.driver_delay_ps),
                "{tech}: {}",
                r.driver_delay_ps
            );
        }
    }

    #[test]
    fn silicon_3d_links_are_fastest() {
        // Table V: micro-bump 0.29 ps, B2B TSV 1.53 ps.
        let ub = simulate_link(&ChannelKind::MicroBump).unwrap();
        let tsv = simulate_link(&ChannelKind::BackToBackTsv).unwrap();
        assert!(
            ub.interconnect_delay_ps < 2.0,
            "{}",
            ub.interconnect_delay_ps
        );
        assert!(
            tsv.interconnect_delay_ps < 5.0,
            "{}",
            tsv.interconnect_delay_ps
        );
        assert!(ub.interconnect_delay_ps < tsv.interconnect_delay_ps);
    }

    #[test]
    fn glass_3d_stacked_via_beats_any_lateral_route() {
        let col = simulate_link(&ChannelKind::StackedViaColumn { levels: 3 }).unwrap();
        let lateral = rdl(InterposerKind::Glass25D, 2_000.0);
        assert!(col.interconnect_delay_ps < lateral.interconnect_delay_ps);
        assert!(
            col.interconnect_delay_ps < 3.0,
            "{}",
            col.interconnect_delay_ps
        );
    }

    #[test]
    fn silicon_25d_paper_length_matches_table5_scale() {
        // Paper: 1,952 µm silicon L2M → 17.77 ps interconnect delay.
        let r = rdl(InterposerKind::Silicon25D, 1_952.0);
        assert!(
            (10.0..28.0).contains(&r.interconnect_delay_ps),
            "{}",
            r.interconnect_delay_ps
        );
        // Paper: 65.82 µW interconnect power.
        assert!(
            (35.0..110.0).contains(&r.interconnect_power_uw),
            "{}",
            r.interconnect_power_uw
        );
    }

    #[test]
    fn glass_beats_silicon_per_unit_delay_at_paper_lengths() {
        // The Table V claim: glass's thick wires carry a 3x longer net
        // with *less* delay than silicon's.
        let glass = rdl(InterposerKind::Glass25D, 5_980.0);
        let si = rdl(InterposerKind::Silicon25D, 1_952.0);
        let glass_per_mm = glass.interconnect_delay_ps / 5.98;
        let si_per_mm = si.interconnect_delay_ps / 1.952;
        assert!(glass_per_mm < si_per_mm, "{glass_per_mm} vs {si_per_mm}");
    }

    #[test]
    fn delay_and_power_grow_with_length() {
        let a = rdl(InterposerKind::Shinko, 1_000.0);
        let b = rdl(InterposerKind::Shinko, 3_000.0);
        assert!(b.interconnect_delay_ps > a.interconnect_delay_ps);
        assert!(b.interconnect_power_uw > a.interconnect_power_uw);
    }

    #[test]
    fn lengths_match_channel_geometry() {
        assert!((40.0..90.0).contains(&ChannelKind::StackedViaColumn { levels: 3 }.length_um()));
        assert_eq!(ChannelKind::BackToBackTsv.length_um(), 40.0);
        assert_eq!(
            ChannelKind::RdlTrace {
                tech: InterposerKind::Apx,
                length_um: 3500.0
            }
            .length_um(),
            3500.0
        );
    }
}
