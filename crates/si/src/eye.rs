//! PRBS eye diagrams with switching aggressors (Fig. 14).
//!
//! The victim carries a PRBS-7 stream at 0.7 Gbps; the two adjacent
//! aggressors carry independently seeded PRBS streams. The received
//! waveform is folded at the unit interval and the eye opening measured:
//! height as the vertical gap between the lowest "1" and highest "0"
//! sample in the centre window, width as the horizontal span over which
//! the eye remains open at the mid level.

use crate::rlgc;
use circuit::driver::{add_rx, add_tx, prbs_data};
use circuit::netlist::{prbs7_bit, Circuit, NodeId};
use circuit::tran::{simulate, TranConfig};
use circuit::CircuitError;
use serde::Serialize;
use techlib::bump::BumpModel;
use techlib::calib;
use techlib::iodriver::IoDriver;
use techlib::spec::{InterposerKind, InterposerSpec};
use techlib::via::stacked_via_column;

/// A measured eye opening.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EyeReport {
    /// Horizontal opening, ns (unit interval is 1.429 ns at 0.7 Gbps).
    pub width_ns: f64,
    /// Vertical opening, V.
    pub height_v: f64,
    /// Bits simulated.
    pub bits: usize,
}

/// Eye-diagram deck configuration.
#[derive(Debug, Clone)]
pub struct EyeConfig {
    /// Number of PRBS bits to simulate.
    pub bits: usize,
    /// Include the two aggressors.
    pub aggressors: bool,
    /// Receiver termination, Ω. `None` models the capacitive AIB input;
    /// `Some(50.0)` reproduces the paper's 50 Ω-I/O ADS deck, where the
    /// resistive divider against the line resistance sets the eye height.
    pub rx_termination_ohm: Option<f64>,
    /// Data rate, bit/s (the study's point is 0.7 Gbps; higher rates
    /// stress the channel for design-space exploration).
    pub data_rate_bps: f64,
}

impl Default for EyeConfig {
    fn default() -> Self {
        EyeConfig {
            bits: 96,
            aggressors: true,
            rx_termination_ohm: None,
            data_rate_bps: calib::DATA_RATE_BPS,
        }
    }
}

impl EyeConfig {
    /// The paper's deck: 50 Ω I/O impedance at the receiver.
    pub fn paper_deck() -> EyeConfig {
        EyeConfig {
            rx_termination_ohm: Some(50.0),
            ..EyeConfig::default()
        }
    }
}

/// Simulates the eye of a lateral coupled channel of `length_um` on
/// `tech`.
///
/// # Errors
///
/// Propagates transient-solver failures.
pub fn lateral_eye(
    tech: InterposerKind,
    length_um: f64,
    config: &EyeConfig,
) -> Result<EyeReport, CircuitError> {
    let spec = InterposerSpec::for_kind(tech);
    let triple = rlgc::extract_coupled(&spec, length_um * 1e-6);
    let driver = IoDriver::aib();
    let bump = BumpModel::microbump(&spec);
    let mut c = Circuit::new();
    let segments = ((length_um / 250.0).ceil() as usize).clamp(4, 24);
    let nodes = triple.add_to_circuit(&mut c, segments);

    // Victim: TX → bump → line → bump → RX.
    let (vin, vout) = nodes.victim;
    attach_ends(&mut c, &driver, &bump, vin, vout, 11, config.data_rate_bps);
    if let Some(r) = config.rx_termination_ohm {
        c.resistor(vout, Circuit::GND, r);
    }
    if config.aggressors {
        for (seed, (ain, aout)) in [(0x2du8, nodes.aggressor1), (0x47u8, nodes.aggressor2)] {
            attach_ends(
                &mut c,
                &driver,
                &bump,
                ain,
                aout,
                seed,
                config.data_rate_bps,
            );
        }
    } else {
        // Quiet terminations.
        for (ain, aout) in [nodes.aggressor1, nodes.aggressor2] {
            c.resistor(ain, Circuit::GND, 50.0);
            c.resistor(aout, Circuit::GND, 50.0);
        }
    }
    measure_eye(
        &c,
        vout_probe(&c, vout),
        config.bits,
        11,
        config.data_rate_bps,
    )
}

/// Simulates the Glass 3D vertical (stacked-via) eye: the victim column
/// with two neighbouring columns as aggressors, coupled through the
/// 35 µm-pitch pad field.
///
/// # Errors
///
/// Propagates transient-solver failures.
pub fn stacked_via_eye(config: &EyeConfig) -> Result<EyeReport, CircuitError> {
    let spec = InterposerSpec::for_kind(InterposerKind::Glass3D);
    let driver = IoDriver::aib();
    let bump = BumpModel::microbump(&spec);
    let (r, cap, l, _) = stacked_via_column(&spec, 3);
    let mut c = Circuit::new();
    let mut outs = Vec::new();
    for (i, seed) in [(0usize, 11u8), (1, 0x2d), (2, 0x47)] {
        let pad = c.node(format!("pad{i}"));
        let mid = c.node(format!("mid{i}"));
        let out = c.node(format!("out{i}"));
        if i == 0 || config.aggressors {
            add_tx(
                &mut c,
                &driver,
                pad,
                prbs_data(calib::VDD, config.data_rate_bps, seed),
            );
        } else {
            c.resistor(pad, Circuit::GND, 50.0);
        }
        c.capacitor(pad, Circuit::GND, bump.capacitance_f);
        c.resistor(pad, mid, r.max(1e-4));
        c.inductor(mid, out, l.max(1e-15));
        c.capacitor(out, Circuit::GND, cap.max(1e-18));
        add_rx(&mut c, &driver, out);
        if i == 0 {
            if let Some(rt) = config.rx_termination_ohm {
                c.resistor(out, Circuit::GND, rt);
            }
        }
        outs.push(out);
    }
    // Neighbour coupling across the via field (same fringe model as the
    // bump pads).
    let cm = bump.capacitance_f * 0.4;
    c.capacitor(outs[0], outs[1], cm);
    c.capacitor(outs[0], outs[2], cm);
    measure_eye(&c, outs[0], config.bits, 11, config.data_rate_bps)
}

fn attach_ends(
    c: &mut Circuit,
    driver: &IoDriver,
    bump: &BumpModel,
    input: NodeId,
    output: NodeId,
    seed: u8,
    rate_bps: f64,
) {
    let pad = c.node("pad");
    add_tx(c, driver, pad, prbs_data(calib::VDD, rate_bps, seed));
    c.capacitor(pad, Circuit::GND, bump.capacitance_f);
    c.resistor(pad, input, bump.resistance_ohm.max(1e-4));
    c.capacitor(output, Circuit::GND, bump.capacitance_f);
    add_rx(c, driver, output);
}

fn vout_probe(_c: &Circuit, out: NodeId) -> NodeId {
    out
}

fn measure_eye(
    c: &Circuit,
    probe: NodeId,
    bits: usize,
    victim_seed: u8,
    rate_bps: f64,
) -> Result<EyeReport, CircuitError> {
    let ui = 1.0 / rate_bps;
    let dt = 2e-12;
    let config = TranConfig {
        t_stop: bits as f64 * ui,
        dt,
    };
    // The decks are linear (Thevenin drivers, R/L/C channel), so the
    // received waveform decomposes exactly by superposition: one
    // transient per source with every other source zeroed — the same MNA
    // matrix, so each run factors the identical system. The independent
    // per-source runs fan out across workers; summing in fixed source
    // order keeps the result identical for any worker count.
    let sources = c.source_indices();
    let (times, v) = if sources.len() <= 1 {
        let result = simulate(c, &config)?;
        let v = result.voltage(probe);
        (result.times, v)
    } else {
        let per = techlib::par::ordered_map(&sources, |&s| {
            simulate(&c.single_source(s), &config).map(|r| {
                let v = r.voltage(probe);
                (r.times, v)
            })
        });
        let mut acc: Option<(Vec<f64>, Vec<f64>)> = None;
        for trace in per {
            let (t, w) = trace?;
            match &mut acc {
                None => acc = Some((t, w)),
                Some((_, total)) => {
                    for (a, b) in total.iter_mut().zip(&w) {
                        *a += b;
                    }
                }
            }
        }
        acc.ok_or(CircuitError::InvalidParameter {
            parameter: "sources",
        })?
    };
    let times = &times;

    // Fold into the UI, skipping the first 4 warm-up bits. For each
    // sample classify the *current* bit from the PRBS sequence; track the
    // per-phase min of ones and max of zeros.
    let phases = 64usize;
    let mut one_min = vec![f64::INFINITY; phases];
    let mut zero_max = vec![f64::NEG_INFINITY; phases];
    for (k, &t) in times.iter().enumerate() {
        // The final sample lands exactly on `t == bits · ui` (the
        // transient's t_stop), where the raw quotient is `bits` — one
        // past the last generated PRBS bit. Clamp before any use as a
        // pattern index; the warm-up/tail guard below then drops the
        // clamped tail samples, so retained samples are unchanged.
        let bit_idx = ((t / ui) as usize).min(bits.saturating_sub(1));
        if bit_idx < 4 || bit_idx + 1 >= bits {
            continue;
        }
        let phase = (((t / ui) - bit_idx as f64) * phases as f64) as usize % phases;
        // Account for the line's latency being well under one UI: the
        // received symbol at phase p of bit n is bit n.
        if prbs7_bit(victim_seed, bit_idx) {
            one_min[phase] = one_min[phase].min(v[k]);
        } else {
            zero_max[phase] = zero_max[phase].max(v[k]);
        }
    }

    // Eye height: the *worst-case* vertical opening across the central
    // sampling band (±10 % of the UI around the centre) — what a receiver
    // sampling there actually sees.
    let centre_band = (phases * 2 / 5)..(phases * 3 / 5);
    let mut height = f64::INFINITY;
    for p in centre_band {
        if one_min[p].is_finite() && zero_max[p].is_finite() {
            height = height.min(one_min[p] - zero_max[p]);
        }
    }
    if !height.is_finite() {
        height = 0.0;
    }
    // Eye width: contiguous span of phases where the eye is open at the
    // decision threshold — halfway between the received one/zero levels
    // (for a terminated receiver the "1" level is the resistive divider,
    // not the rail).
    let centre = (phases * 2 / 5)..(phases * 3 / 5);
    let v_hi = centre
        .clone()
        .map(|p| one_min[p])
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    let v_lo = centre
        .map(|p| zero_max[p])
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min);
    let mid = if v_hi.is_finite() && v_lo.is_finite() {
        (v_hi + v_lo) / 2.0
    } else {
        calib::VDD / 2.0
    };
    let open: Vec<bool> = (0..phases)
        .map(|p| {
            one_min[p].is_finite()
                && zero_max[p].is_finite()
                && one_min[p] > mid
                && zero_max[p] < mid
        })
        .collect();
    // Longest circular run of open phases.
    let mut best = 0usize;
    let mut run = 0usize;
    for i in 0..2 * phases {
        if open[i % phases] {
            run += 1;
            best = best.max(run.min(phases));
        } else {
            run = 0;
        }
    }
    Ok(EyeReport {
        width_ns: best as f64 / phases as f64 * ui * 1e9,
        height_v: height.max(0.0),
        bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> EyeConfig {
        EyeConfig {
            bits: 48,
            aggressors: true,
            ..EyeConfig::default()
        }
    }

    #[test]
    fn short_glass_link_has_wide_open_eye() {
        let eye = lateral_eye(InterposerKind::Glass25D, 500.0, &quick()).unwrap();
        // Nearly the full 1.429 ns UI and most of the 0.9 V swing.
        assert!(eye.width_ns > 1.0, "width = {}", eye.width_ns);
        assert!(eye.height_v > 0.5, "height = {}", eye.height_v);
    }

    #[test]
    fn long_silicon_link_has_degraded_eye() {
        let short = lateral_eye(InterposerKind::Silicon25D, 300.0, &quick()).unwrap();
        let long = lateral_eye(InterposerKind::Silicon25D, 3_000.0, &quick()).unwrap();
        assert!(long.height_v < short.height_v);
        assert!(long.width_ns <= short.width_ns + 0.05);
    }

    #[test]
    fn aggressors_close_the_eye() {
        let with = lateral_eye(InterposerKind::Silicon25D, 2_000.0, &quick()).unwrap();
        let without = lateral_eye(
            InterposerKind::Silicon25D,
            2_000.0,
            &EyeConfig {
                bits: 48,
                aggressors: false,
                ..EyeConfig::default()
            },
        )
        .unwrap();
        assert!(
            with.height_v < without.height_v,
            "crosstalk must reduce height: {} vs {}",
            with.height_v,
            without.height_v
        );
    }

    #[test]
    fn stacked_via_eye_is_nearly_ideal() {
        // Fig. 14: Glass 3D shows the widest L2M eye (1.415 ns, 0.89 V).
        let eye = stacked_via_eye(&quick()).unwrap();
        assert!(eye.width_ns > 1.25, "width = {}", eye.width_ns);
        assert!(eye.height_v > 0.75, "height = {}", eye.height_v);
    }

    #[test]
    fn higher_data_rate_closes_the_eye() {
        // Design-space extension: the same silicon channel that is clean
        // at 0.7 Gbps degrades visibly at 7 Gbps (UI 143 ps vs ~50 ps of
        // channel RC).
        let slow = lateral_eye(InterposerKind::Silicon25D, 2_000.0, &quick()).unwrap();
        let fast = lateral_eye(
            InterposerKind::Silicon25D,
            2_000.0,
            &EyeConfig {
                data_rate_bps: 7e9,
                ..quick()
            },
        )
        .unwrap();
        // Normalised to the UI, the fast eye is fractionally narrower.
        let slow_frac = slow.width_ns / (1e9 / 0.7e9);
        let fast_frac = fast.width_ns / (1e9 / 7e9);
        assert!(fast_frac < slow_frac, "{fast_frac} vs {slow_frac}");
    }

    #[test]
    fn eye_width_never_exceeds_ui() {
        let eye = lateral_eye(InterposerKind::Shinko, 1_000.0, &quick()).unwrap();
        assert!(eye.width_ns <= 1.0 / 0.7 + 1e-9);
    }

    #[test]
    fn trace_end_sample_stays_inside_the_prbs_pattern() {
        // The transient's last sample sits exactly at t_stop = bits · ui,
        // where the raw bit index is `bits` — one past the final PRBS
        // bit. With a minimal bit count (just above the 4 warm-up bits)
        // the tail dominates the trace; the fold must clamp and drop it
        // rather than classify against an out-of-pattern bit.
        let eye = lateral_eye(
            InterposerKind::Glass25D,
            500.0,
            &EyeConfig {
                bits: 6,
                aggressors: false,
                ..EyeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(eye.bits, 6);
        assert!(eye.height_v >= 0.0);
        assert!(eye.width_ns >= 0.0 && eye.width_ns <= 1.0 / 0.7 + 1e-9);
    }
}
