//! Analytic RLGC extraction for interposer traces.
//!
//! R comes from the copper cross-section (with a skin-effect correction at
//! the analysis frequency), C from the parallel-plate + fringe + lateral
//! model of [`techlib::spec::InterposerSpec::wire_capacitance_per_m`],
//! L from the effective permittivity so that `L·C = εr_eff / c₀²` (which
//! guarantees a physical propagation velocity), and G from the dielectric
//! loss tangent at the data rate.

use circuit::tline::{CoupledTriple, RlgcLine};
use techlib::spec::InterposerSpec;
use techlib::units::{C_0, EPSILON_0};

/// Effective relative permittivity of an RDL microstrip (field partly in
/// the dielectric, partly in air/overmold above).
pub fn effective_permittivity(spec: &InterposerSpec) -> f64 {
    0.5 * (spec.dielectric_constant + 1.0) + 0.1 * spec.dielectric_constant
}

/// Skin-effect-corrected series resistance, Ω/m, at frequency `f_hz`.
pub fn resistance_per_m(spec: &InterposerSpec, f_hz: f64) -> f64 {
    let rho = techlib::material::COPPER.resistivity_ohm_m;
    let w = spec.min_wire_width_um * 1e-6;
    let t = spec.metal_thickness_um * 1e-6;
    // Skin depth at f.
    let delta = (rho / (std::f64::consts::PI * f_hz * techlib::units::MU_0)).sqrt();
    let t_eff = t.min(2.0 * delta);
    let w_eff = w.min(w.min(2.0 * delta) + t_eff); // thin lines barely affected
    rho / (w_eff * t_eff)
}

/// Dielectric shunt conductance, S/m, at frequency `f_hz`
/// (`G = ω·C·tanδ`).
pub fn conductance_per_m(spec: &InterposerSpec, f_hz: f64) -> f64 {
    2.0 * std::f64::consts::PI * f_hz * spec.wire_capacitance_per_m() * spec.loss_tangent
}

/// Victim-to-one-neighbour mutual capacitance, F/m, at minimum spacing.
pub fn mutual_capacitance_per_m(spec: &InterposerSpec) -> f64 {
    let eps = spec.dielectric_constant * EPSILON_0;
    let t = spec.metal_thickness_um;
    let s = spec.min_wire_space_um;
    eps * (t / s) * 0.6 + 0.3 * eps
}

/// Extracts the single-line RLGC model for a trace of `length_m` metres on
/// technology `spec`, evaluated at the study's 0.7 Gbps fundamental.
pub fn extract_line(spec: &InterposerSpec, length_m: f64) -> RlgcLine {
    let f = techlib::calib::DATA_RATE_BPS; // fundamental of the bit stream
    let c = spec.wire_capacitance_per_m();
    let er_eff = effective_permittivity(spec);
    let l = er_eff / (C_0 * C_0 * c);
    RlgcLine {
        r_per_m: resistance_per_m(spec, f),
        l_per_m: l,
        g_per_m: conductance_per_m(spec, f),
        c_per_m: c,
        length_m,
    }
}

/// Extracts the coupled victim + two-aggressor model for the crosstalk
/// decks of Fig. 14.
pub fn extract_coupled(spec: &InterposerSpec, length_m: f64) -> CoupledTriple {
    CoupledTriple {
        line: extract_line(spec, length_m),
        cm_per_m: mutual_capacitance_per_m(spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use techlib::spec::InterposerKind;

    fn spec(k: InterposerKind) -> InterposerSpec {
        InterposerSpec::for_kind(k)
    }

    #[test]
    fn propagation_velocity_is_physical() {
        for k in InterposerKind::PACKAGED {
            let s = spec(k);
            if s.signal_metal_layers == 0 {
                continue;
            }
            let line = extract_line(&s, 1e-3);
            let v = 1.0 / (line.l_per_m * line.c_per_m).sqrt();
            assert!(v < C_0, "{k}: v = {v}");
            assert!(v > C_0 / 3.0, "{k}: v = {v}");
        }
    }

    #[test]
    fn silicon_has_highest_r_and_c_per_m() {
        let si = extract_line(&spec(InterposerKind::Silicon25D), 1e-3);
        let gl = extract_line(&spec(InterposerKind::Glass25D), 1e-3);
        let apx = extract_line(&spec(InterposerKind::Apx), 1e-3);
        assert!(si.r_per_m > 10.0 * gl.r_per_m);
        assert!(si.c_per_m > gl.c_per_m);
        assert!(apx.r_per_m < gl.r_per_m, "thick wide APX copper");
    }

    #[test]
    fn skin_effect_raises_r_at_high_frequency() {
        let s = spec(InterposerKind::Glass25D);
        let r_dc = resistance_per_m(&s, 1e3);
        let r_10g = resistance_per_m(&s, 10e9);
        assert!(r_10g >= r_dc, "{r_10g} vs {r_dc}");
    }

    #[test]
    fn mutual_cap_fraction_is_spacing_driven() {
        // APX's 6 µm spacing gives proportionally less coupling than
        // glass's 2 µm (Section VII-C: APX "reduces crosstalk").
        let gl = spec(InterposerKind::Glass25D);
        let apx = spec(InterposerKind::Apx);
        let frac = |s: &InterposerSpec| mutual_capacitance_per_m(s) / s.wire_capacitance_per_m();
        assert!(frac(&apx) < frac(&gl), "{} vs {}", frac(&apx), frac(&gl));
    }

    #[test]
    fn conductance_scales_with_loss_tangent() {
        let gl = conductance_per_m(&spec(InterposerKind::Glass25D), 1e9);
        let apx = conductance_per_m(&spec(InterposerKind::Apx), 1e9);
        assert!(gl > 0.0 && apx > 0.0);
    }
}
