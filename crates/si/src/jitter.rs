//! Jitter/closure decomposition of an eye (Fig. 14's discussion,
//! quantified).
//!
//! The paper attributes eye differences to two mechanisms — ISI from the
//! channel's own memory, and crosstalk from the neighbouring aggressors.
//! This module separates them by differencing the eye with the aggressors
//! enabled and quieted, the standard ablation used in SI sign-off.

use crate::eye::{lateral_eye, EyeConfig, EyeReport};
use circuit::CircuitError;
use serde::Serialize;
use techlib::spec::InterposerKind;

/// The decomposition of a channel's eye closure.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ClosureBudget {
    /// Eye with aggressors quieted.
    pub isi_only: EyeReport,
    /// Eye with both aggressors switching.
    pub full: EyeReport,
    /// Height lost to ISI alone, V (ideal swing minus quiet-eye height).
    pub isi_height_v: f64,
    /// Additional height lost to crosstalk, V.
    pub crosstalk_height_v: f64,
    /// Width lost to crosstalk, ns.
    pub crosstalk_width_ns: f64,
}

/// Decomposes the closure of a lateral channel.
///
/// # Errors
///
/// Propagates transient-simulation failures.
pub fn decompose(
    tech: InterposerKind,
    length_um: f64,
    config: &EyeConfig,
) -> Result<ClosureBudget, CircuitError> {
    let quiet = lateral_eye(
        tech,
        length_um,
        &EyeConfig {
            aggressors: false,
            ..config.clone()
        },
    )?;
    let full = lateral_eye(
        tech,
        length_um,
        &EyeConfig {
            aggressors: true,
            ..config.clone()
        },
    )?;
    // The ideal swing at the receiver is the quiet eye's own best case —
    // everything it loses from there is channel ISI, referenced against
    // the nominal rail for an unterminated receiver.
    let ideal = match config.rx_termination_ohm {
        None => techlib::calib::VDD,
        Some(_) => quiet.height_v.max(full.height_v),
    };
    Ok(ClosureBudget {
        isi_only: quiet,
        full,
        isi_height_v: (ideal - quiet.height_v).max(0.0),
        crosstalk_height_v: (quiet.height_v - full.height_v).max(0.0),
        crosstalk_width_ns: (quiet.width_ns - full.width_ns).max(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EyeConfig {
        EyeConfig {
            bits: 48,
            ..EyeConfig::paper_deck()
        }
    }

    #[test]
    fn crosstalk_share_is_nonnegative_and_bounded() {
        let b = decompose(InterposerKind::Silicon25D, 2_000.0, &cfg()).unwrap();
        assert!(b.crosstalk_height_v >= 0.0);
        assert!(b.crosstalk_height_v < 0.9);
        assert!(b.full.height_v <= b.isi_only.height_v + 1e-9);
    }

    #[test]
    fn crosstalk_share_grows_with_data_rate() {
        // At the study's 0.7 Gbps the aggressor glitches decay long
        // before the sampling point; stressing the same silicon channel
        // to 7 Gbps pushes them into the eye centre.
        let slow = decompose(InterposerKind::Silicon25D, 2_000.0, &cfg()).unwrap();
        let fast = decompose(
            InterposerKind::Silicon25D,
            2_000.0,
            &EyeConfig {
                data_rate_bps: 7e9,
                ..cfg()
            },
        )
        .unwrap();
        assert!(
            fast.crosstalk_height_v > slow.crosstalk_height_v,
            "{} vs {}",
            fast.crosstalk_height_v,
            slow.crosstalk_height_v
        );
    }

    #[test]
    fn longer_channel_more_isi() {
        let short = decompose(InterposerKind::Shinko, 500.0, &cfg()).unwrap();
        let long = decompose(InterposerKind::Shinko, 3_500.0, &cfg()).unwrap();
        assert!(long.isi_only.height_v <= short.isi_only.height_v + 1e-9);
    }
}
