//! Shared helpers for the benchmark harness.
//!
//! The regeneration binaries (`table1` … `headline`) print one paper
//! table/figure each; the Criterion benches time the underlying engines.

use codesign::flow::TechStudy;
use codesign::table5::MonitorLengths;

/// Runs (and process-caches) the full six-technology study used by the
/// table binaries.
pub fn studies() -> &'static [TechStudy] {
    use std::sync::OnceLock;
    static CACHE: OnceLock<Vec<TechStudy>> = OnceLock::new();
    CACHE.get_or_init(|| {
        codesign::flow::run_all(MonitorLengths::Routed).expect("full study completes")
    })
}

/// Snapshot of the observability layer as a JSON value for
/// `BENCH_flow.json`: per-stage call counts and total milliseconds
/// (summed over scenarios, sorted by stage name) plus every kernel work
/// counter. Call it while `techlib::obs` recording is on, right after
/// the run it should describe.
pub fn stages_value() -> serde_json::Value {
    use std::collections::BTreeMap;
    let mut by_stage: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for stat in techlib::obs::aggregate_spans() {
        let entry = by_stage.entry(stat.stage).or_insert((0, 0));
        entry.0 += stat.count;
        entry.1 += stat.total_us;
    }
    let stages = serde_json::Value::Object(
        by_stage
            .into_iter()
            .map(|(stage, (calls, total_us))| {
                (
                    stage.to_string(),
                    serde_json::Value::Object(vec![
                        ("calls".into(), serde_json::Value::from(calls)),
                        (
                            "total_ms".into(),
                            serde_json::Value::from(total_us as f64 / 1e3),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let counters = serde_json::Value::Object(
        techlib::obs::counter_totals()
            .into_iter()
            .map(|(name, value)| (name.to_string(), serde_json::Value::from(value)))
            .collect(),
    );
    serde_json::Value::Object(vec![
        ("by_stage".into(), stages),
        ("counters".into(), counters),
    ])
}

/// Distils the router's share of a [`stages_value`] snapshot into the
/// `"router"` section of `BENCH_flow.json`: the `route.nets` span totals
/// plus every `router.*` work counter, flattened to bare keys so perf
/// PRs can diff them without digging through the full stage map.
pub fn router_value(stages: &serde_json::Value) -> serde_json::Value {
    let span = |key: &str| {
        stages
            .get("by_stage")
            .and_then(|s| s.get("route.nets"))
            .and_then(|r| r.get(key))
            .cloned()
            .unwrap_or(serde_json::Value::from(0u64))
    };
    let counter = |name: &str| {
        let value = stages
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0);
        serde_json::Value::from(value)
    };
    serde_json::Value::Object(vec![
        ("route_nets_calls".into(), span("calls")),
        ("route_nets_total_ms".into(), span("total_ms")),
        ("nets_routed".into(), counter("router.nets_routed")),
        ("batch_rounds".into(), counter("router.batch_rounds")),
        ("heap_pops".into(), counter("router.heap_pops")),
        ("expansions".into(), counter("router.expansions")),
        (
            "window_fallbacks".into(),
            counter("router.window_fallbacks"),
        ),
        (
            "incremental_reroutes".into(),
            counter("router.incremental_reroutes"),
        ),
        (
            "conflict_reroutes".into(),
            counter("router.conflict_reroutes"),
        ),
    ])
}

/// Prints a paper-vs-measured header.
pub fn banner(what: &str) {
    println!("==================================================================");
    println!("{what}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_does_not_panic() {
        super::banner("smoke");
    }

    #[test]
    fn router_value_flattens_span_and_counters() {
        let stages: serde_json::Value = serde_json::from_str(
            r#"{
                "by_stage": {"route.nets": {"calls": 5, "total_ms": 123.5}},
                "counters": {
                    "router.nets_routed": 530,
                    "router.heap_pops": 9001,
                    "router.window_fallbacks": 3
                }
            }"#,
        )
        .unwrap();
        let r = super::router_value(&stages);
        assert_eq!(r.get("route_nets_calls").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(r.get("nets_routed").and_then(|v| v.as_u64()), Some(530));
        assert_eq!(r.get("heap_pops").and_then(|v| v.as_u64()), Some(9001));
        // Counters absent from the snapshot report zero, not null.
        assert_eq!(r.get("expansions").and_then(|v| v.as_u64()), Some(0));
    }
}
