//! Shared helpers for the benchmark harness.
//!
//! The regeneration binaries (`table1` … `headline`) print one paper
//! table/figure each; the Criterion benches time the underlying engines.

use codesign::flow::TechStudy;
use codesign::table5::MonitorLengths;

/// Runs (and process-caches) the full six-technology study used by the
/// table binaries.
pub fn studies() -> &'static [TechStudy] {
    use std::sync::OnceLock;
    static CACHE: OnceLock<Vec<TechStudy>> = OnceLock::new();
    CACHE.get_or_init(|| {
        codesign::flow::run_all(MonitorLengths::Routed).expect("full study completes")
    })
}

/// Snapshot of the observability layer as a JSON value for
/// `BENCH_flow.json`: per-stage call counts and total milliseconds
/// (summed over scenarios, sorted by stage name) plus every kernel work
/// counter. Call it while `techlib::obs` recording is on, right after
/// the run it should describe.
pub fn stages_value() -> serde_json::Value {
    use std::collections::BTreeMap;
    let mut by_stage: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for stat in techlib::obs::aggregate_spans() {
        let entry = by_stage.entry(stat.stage).or_insert((0, 0));
        entry.0 += stat.count;
        entry.1 += stat.total_us;
    }
    let stages = serde_json::Value::Object(
        by_stage
            .into_iter()
            .map(|(stage, (calls, total_us))| {
                (
                    stage.to_string(),
                    serde_json::Value::Object(vec![
                        ("calls".into(), serde_json::Value::from(calls)),
                        (
                            "total_ms".into(),
                            serde_json::Value::from(total_us as f64 / 1e3),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let counters = serde_json::Value::Object(
        techlib::obs::counter_totals()
            .into_iter()
            .map(|(name, value)| (name.to_string(), serde_json::Value::from(value)))
            .collect(),
    );
    serde_json::Value::Object(vec![
        ("by_stage".into(), stages),
        ("counters".into(), counters),
    ])
}

/// Prints a paper-vs-measured header.
pub fn banner(what: &str) {
    println!("==================================================================");
    println!("{what}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_does_not_panic() {
        super::banner("smoke");
    }
}
