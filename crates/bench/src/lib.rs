//! Shared helpers for the benchmark harness.
//!
//! The regeneration binaries (`table1` … `headline`) print one paper
//! table/figure each; the Criterion benches time the underlying engines.

use codesign::flow::TechStudy;
use codesign::table5::MonitorLengths;

/// Runs (and process-caches) the full six-technology study used by the
/// table binaries.
pub fn studies() -> &'static [TechStudy] {
    use std::sync::OnceLock;
    static CACHE: OnceLock<Vec<TechStudy>> = OnceLock::new();
    CACHE.get_or_init(|| {
        codesign::flow::run_all(MonitorLengths::Routed).expect("full study completes")
    })
}

/// Snapshot of the observability layer as a JSON value for
/// `BENCH_flow.json`: per-stage call counts and total milliseconds
/// (summed over scenarios, sorted by stage name) plus every kernel work
/// counter. Call it while `techlib::obs` recording is on, right after
/// the run it should describe.
pub fn stages_value() -> serde_json::Value {
    use std::collections::BTreeMap;
    let mut by_stage: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for stat in techlib::obs::aggregate_spans() {
        let entry = by_stage.entry(stat.stage).or_insert((0, 0));
        entry.0 += stat.count;
        entry.1 += stat.total_us;
    }
    let stages = serde_json::Value::Object(
        by_stage
            .into_iter()
            .map(|(stage, (calls, total_us))| {
                (
                    stage.to_string(),
                    serde_json::Value::Object(vec![
                        ("calls".into(), serde_json::Value::from(calls)),
                        (
                            "total_ms".into(),
                            serde_json::Value::from(total_us as f64 / 1e3),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let counters = serde_json::Value::Object(
        techlib::obs::counter_totals()
            .into_iter()
            .map(|(name, value)| (name.to_string(), serde_json::Value::from(value)))
            .collect(),
    );
    // Per-technology router timing: flow spans carry a
    // `"{scenario}:{tech}"` label, so splitting the `route.nets` rows of
    // the (label, stage) aggregation on the first colon attributes each
    // call to its technology. Unlabeled spans (router benches outside
    // the flow) land under "(unlabeled)".
    let mut by_tech: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for stat in techlib::obs::aggregate_spans() {
        if stat.stage != "route.nets" {
            continue;
        }
        let tech = match stat.label.split_once(':') {
            Some((_, tech)) if !tech.is_empty() => tech.to_string(),
            _ if !stat.label.is_empty() => stat.label.clone(),
            _ => "(unlabeled)".to_string(),
        };
        let entry = by_tech.entry(tech).or_insert((0, 0));
        entry.0 += stat.count;
        entry.1 += stat.total_us;
    }
    let route_nets_by_tech = serde_json::Value::Object(
        by_tech
            .into_iter()
            .map(|(tech, (calls, total_us))| {
                (
                    tech,
                    serde_json::Value::Object(vec![
                        ("calls".into(), serde_json::Value::from(calls)),
                        (
                            "total_ms".into(),
                            serde_json::Value::from(total_us as f64 / 1e3),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    serde_json::Value::Object(vec![
        ("by_stage".into(), stages),
        ("counters".into(), counters),
        ("route_nets_by_tech".into(), route_nets_by_tech),
    ])
}

/// Distils the router's share of a [`stages_value`] snapshot into the
/// `"router"` section of `BENCH_flow.json`: the `route.nets` span totals
/// plus every `router.*` work counter, flattened to bare keys so perf
/// PRs can diff them without digging through the full stage map.
pub fn router_value(stages: &serde_json::Value) -> serde_json::Value {
    let span = |key: &str| {
        stages
            .get("by_stage")
            .and_then(|s| s.get("route.nets"))
            .and_then(|r| r.get(key))
            .cloned()
            .unwrap_or(serde_json::Value::from(0u64))
    };
    let counter = |name: &str| {
        let value = stages
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0);
        serde_json::Value::from(value)
    };
    serde_json::Value::Object(vec![
        ("route_nets_calls".into(), span("calls")),
        ("route_nets_total_ms".into(), span("total_ms")),
        ("nets_routed".into(), counter("router.nets_routed")),
        ("batch_rounds".into(), counter("router.batch_rounds")),
        (
            "batch_candidates".into(),
            counter("router.batch_candidates"),
        ),
        (
            "batch_conflict_rejects".into(),
            counter("router.batch_conflict_rejects"),
        ),
        ("heap_pops".into(), counter("router.heap_pops")),
        ("bucket_pops".into(), counter("router.bucket_pops")),
        (
            "heuristic_prunes".into(),
            counter("router.heuristic_prunes"),
        ),
        ("expansions".into(), counter("router.expansions")),
        (
            "window_fallbacks".into(),
            counter("router.window_fallbacks"),
        ),
        (
            "incremental_reroutes".into(),
            counter("router.incremental_reroutes"),
        ),
        (
            "conflict_reroutes".into(),
            counter("router.conflict_reroutes"),
        ),
        (
            "route_nets_by_tech".into(),
            stages
                .get("route_nets_by_tech")
                .cloned()
                .unwrap_or(serde_json::Value::Null),
        ),
    ])
}

/// Prints a paper-vs-measured header.
pub fn banner(what: &str) {
    println!("==================================================================");
    println!("{what}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_does_not_panic() {
        super::banner("smoke");
    }

    #[test]
    fn router_value_flattens_span_and_counters() {
        let stages: serde_json::Value = serde_json::from_str(
            r#"{
                "by_stage": {"route.nets": {"calls": 5, "total_ms": 123.5}},
                "counters": {
                    "router.nets_routed": 530,
                    "router.heap_pops": 9001,
                    "router.bucket_pops": 9001,
                    "router.batch_candidates": 40,
                    "router.batch_conflict_rejects": 7,
                    "router.heuristic_prunes": 11,
                    "router.window_fallbacks": 3
                },
                "route_nets_by_tech": {
                    "Glass 2.5D": {"calls": 1, "total_ms": 20.0}
                }
            }"#,
        )
        .unwrap();
        let r = super::router_value(&stages);
        assert_eq!(r.get("route_nets_calls").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(r.get("nets_routed").and_then(|v| v.as_u64()), Some(530));
        assert_eq!(r.get("heap_pops").and_then(|v| v.as_u64()), Some(9001));
        assert_eq!(r.get("bucket_pops").and_then(|v| v.as_u64()), Some(9001));
        assert_eq!(r.get("batch_candidates").and_then(|v| v.as_u64()), Some(40));
        assert_eq!(
            r.get("batch_conflict_rejects").and_then(|v| v.as_u64()),
            Some(7)
        );
        assert_eq!(r.get("heuristic_prunes").and_then(|v| v.as_u64()), Some(11));
        // Counters absent from the snapshot report zero, not null.
        assert_eq!(r.get("expansions").and_then(|v| v.as_u64()), Some(0));
        // The per-tech map passes through intact.
        assert_eq!(
            r.get("route_nets_by_tech")
                .and_then(|m| m.get("Glass 2.5D"))
                .and_then(|t| t.get("calls"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn stages_value_attributes_route_nets_to_technologies() {
        // Record a labeled route.nets span the way the flow does and
        // check the per-tech aggregation splits the scenario prefix off.
        techlib::obs::enable();
        techlib::obs::reset();
        {
            let _label = techlib::obs::enter_label(Some(std::sync::Arc::from("paper:Glass 2.5D")));
            let _span = techlib::obs::span("route.nets");
        }
        let v = super::stages_value();
        let by_tech = v.get("route_nets_by_tech").expect("per-tech map present");
        assert_eq!(
            by_tech
                .get("Glass 2.5D")
                .and_then(|t| t.get("calls"))
                .and_then(|c| c.as_u64()),
            Some(1)
        );
        techlib::obs::reset();
    }
}
