//! Shared helpers for the benchmark harness.
//!
//! The regeneration binaries (`table1` … `headline`) print one paper
//! table/figure each; the Criterion benches time the underlying engines.

use codesign::flow::TechStudy;
use codesign::table5::MonitorLengths;

/// Runs (and process-caches) the full six-technology study used by the
/// table binaries.
pub fn studies() -> &'static [TechStudy] {
    use std::sync::OnceLock;
    static CACHE: OnceLock<Vec<TechStudy>> = OnceLock::new();
    CACHE.get_or_init(|| {
        codesign::flow::run_all(MonitorLengths::Routed).expect("full study completes")
    })
}

/// Prints a paper-vs-measured header.
pub fn banner(what: &str) {
    println!("==================================================================");
    println!("{what}");
    println!("==================================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_does_not_panic() {
        super::banner("smoke");
    }
}
