//! Regenerates Table I (interposer specifications).
fn main() {
    bench::banner("Table I - interposer specifications (inputs)");
    println!("{}", codesign::tables::table1());
}
