//! Times the six-technology study sequentially vs in parallel and writes
//! `BENCH_flow.json` at the repository root.
//!
//! Because the flow memoizes shared artifacts (netlists, layouts, chiplet
//! reports) per process, a fair cold comparison needs fresh processes:
//! the binary re-executes itself once per mode. The sequential child is
//! pinned to one worker (`CODESIGN_THREADS=1`) and calls
//! [`codesign::flow::run_all_sequential`]; the parallel children call
//! [`codesign::flow::run_all`] at each worker count in [`WORKER_SWEEP`]
//! (explicitly pinned via `CODESIGN_THREADS`, so `parallel_cold_s`
//! measures real fan-out even on hosts whose default thread count is 1).
//! Each child also re-runs its flow warm to show what the artifact cache
//! saves, and prints a hash of the serialized studies so the parent can
//! verify every mode produced byte-identical output.
//!
//! The parallel children additionally record `techlib::obs` stage spans
//! and kernel work counters and hand them up on a `STAGES` line; they
//! land under the `"stages"` key (widest run) and the per-width
//! `"parallel_sweep"` entries of `BENCH_flow.json`. The top-level
//! `"router"` section distills the single-worker parallel child: at one
//! worker the `route.nets` spans never overlap, so their sum is the real
//! CPU cost of routing and the stable basis for the CI perf ceiling.

use codesign::flow::TechStudy;
use codesign::table5::MonitorLengths;
use codesign::FlowError;
use std::io::Write as _;
use std::time::Instant;
use techlib::spec::InterposerKind;

const CHILD_ENV: &str = "FLOW_TIMING_CHILD";
/// Comma-separated technology-label filter (case-insensitive substring
/// match against [`InterposerKind::label`], e.g. `"silicon 2.5d"`).
/// Unset runs the full six-technology study. CI's router smoke step uses
/// this to time a single technology.
const TECHS_ENV: &str = "FLOW_TIMING_TECHS";
/// Overrides the output path (default: `BENCH_flow.json` at the repo
/// root), so smoke runs don't clobber the published numbers.
const OUT_ENV: &str = "FLOW_TIMING_OUT";
/// Worker counts for the parallel children. One worker isolates the
/// router's CPU cost (no span overlap, no speculative batching); the
/// widest entry exercises cross-tech fan-out plus intra-tech speculative
/// batching (`router.batch_rounds > 0` is CI-gated at this width).
const WORKER_SWEEP: [usize; 2] = [1, 4];

/// Resolves the `FLOW_TIMING_TECHS` filter against the packaged set.
/// Children inherit the parent's environment, so both processes resolve
/// the identical list.
fn selected_techs() -> Vec<InterposerKind> {
    let Ok(filter) = std::env::var(TECHS_ENV) else {
        return InterposerKind::PACKAGED.to_vec();
    };
    let techs: Vec<InterposerKind> = filter
        .split(',')
        .map(str::trim)
        .filter(|pat| !pat.is_empty())
        .map(|pat| {
            let lower = pat.to_ascii_lowercase();
            InterposerKind::PACKAGED
                .iter()
                .copied()
                .find(|t| t.label().to_ascii_lowercase().contains(&lower))
                .unwrap_or_else(|| panic!("{TECHS_ENV}: no packaged technology matches {pat:?}"))
        })
        .collect();
    assert!(!techs.is_empty(), "{TECHS_ENV} selected no technologies");
    techs
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn child(parallel: bool) {
    // The parallel child records stage spans and work counters; the
    // sequential child stays untraced, so the parent's hash equality
    // also proves tracing never changes a study byte.
    if parallel {
        techlib::obs::enable();
    }
    let techs = selected_techs();
    let run = || -> Result<Vec<TechStudy>, FlowError> {
        if techs.len() == InterposerKind::PACKAGED.len() {
            if parallel {
                codesign::flow::run_all(MonitorLengths::Routed)
            } else {
                codesign::flow::run_all_sequential(MonitorLengths::Routed)
            }
        } else if parallel {
            codesign::exec::try_ordered_map(&techs, |&tech| {
                codesign::flow::run_tech_with(tech, MonitorLengths::Routed)
            })
        } else {
            techs
                .iter()
                .map(|&tech| codesign::flow::run_tech_with(tech, MonitorLengths::Routed))
                .collect()
        }
    };
    let t0 = Instant::now();
    let studies = run().expect("flow completes");
    let cold_s = t0.elapsed().as_secs_f64();
    // Snapshot before the warm re-run so "stages" describes the cold run.
    let stages = parallel.then(bench::stages_value);
    let t1 = Instant::now();
    let again = run().expect("warm flow completes");
    let warm_s = t1.elapsed().as_secs_f64();
    let json = serde_json::to_string(&studies).expect("studies serialize");
    assert_eq!(
        json,
        serde_json::to_string(&again).expect("studies serialize"),
        "warm re-run must reproduce the cold result"
    );
    println!(
        "RESULT cold_s={cold_s:.3} warm_s={warm_s:.3} hash={:016x} studies={}",
        fnv1a(json.as_bytes()),
        studies.len()
    );
    if let Some(stages) = stages {
        println!(
            "STAGES {}",
            serde_json::to_string(&stages).expect("stages serialize")
        );
    }
}

struct ChildResult {
    cold_s: f64,
    warm_s: f64,
    hash: String,
    /// Per-stage timing breakdown; only the traced (parallel) children
    /// print one.
    stages: Option<serde_json::Value>,
}

fn run_child(parallel: bool, workers: usize) -> ChildResult {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = std::process::Command::new(exe);
    cmd.env(CHILD_ENV, if parallel { "par" } else { "seq" });
    // Pin the width explicitly: children must not inherit the host's
    // default (or an ambient CODESIGN_THREADS) or the sweep would
    // measure whatever the machine happens to be.
    cmd.env(techlib::par::THREADS_ENV, workers.to_string());
    let out = cmd.output().expect("child runs");
    assert!(out.status.success(), "child failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("RESULT "))
        .expect("child printed RESULT");
    let field = |key: &str| -> String {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in {line}"))
            .to_string()
    };
    let stages = stdout
        .lines()
        .find_map(|l| l.strip_prefix("STAGES "))
        .map(|json| serde_json::from_str(json).expect("child STAGES line parses"));
    ChildResult {
        cold_s: field("cold_s").parse().expect("cold_s parses"),
        warm_s: field("warm_s").parse().expect("warm_s parses"),
        hash: field("hash"),
        stages,
    }
}

fn main() {
    if let Ok(role) = std::env::var(CHILD_ENV) {
        child(role == "par");
        return;
    }

    let techs = selected_techs();
    let widest = WORKER_SWEEP[WORKER_SWEEP.len() - 1];
    println!(
        "flow_timing: sequential (1 worker) vs parallel (workers {WORKER_SWEEP:?}), {} technologies",
        techs.len()
    );
    println!("running sequential child...");
    let seq = run_child(false, 1);
    println!("  cold {:.3} s, warm {:.3} s", seq.cold_s, seq.warm_s);
    let sweep: Vec<(usize, ChildResult)> = WORKER_SWEEP
        .iter()
        .map(|&workers| {
            println!("running parallel child ({workers} workers)...");
            let r = run_child(true, workers);
            println!("  cold {:.3} s, warm {:.3} s", r.cold_s, r.warm_s);
            (workers, r)
        })
        .collect();

    for (workers, r) in &sweep {
        assert_eq!(
            seq.hash, r.hash,
            "parallel run_all at {workers} workers must serialize \
             byte-identically to sequential"
        );
    }
    println!("determinism: OK (serialized studies hash {})", seq.hash);
    let (_, par) = sweep
        .iter()
        .find(|(w, _)| *w == widest)
        .expect("widest sweep entry exists");
    let speedup = seq.cold_s / par.cold_s;
    println!("cold speedup at {widest} workers: {speedup:.2}x");

    let sweep_value = serde_json::Value::Array(
        sweep
            .iter()
            .map(|(workers, r)| {
                serde_json::Value::Object(vec![
                    ("workers".into(), serde_json::Value::from(*workers)),
                    ("cold_s".into(), serde_json::Value::from(r.cold_s)),
                    ("warm_s".into(), serde_json::Value::from(r.warm_s)),
                    (
                        "router".into(),
                        r.stages
                            .as_ref()
                            .map_or(serde_json::Value::Null, bench::router_value),
                    ),
                ])
            })
            .collect(),
    );

    let report = serde_json::Value::Object(vec![
        ("workers".into(), serde_json::Value::from(widest)),
        (
            "sequential_cold_s".into(),
            serde_json::Value::from(seq.cold_s),
        ),
        (
            "sequential_warm_s".into(),
            serde_json::Value::from(seq.warm_s),
        ),
        (
            "parallel_cold_s".into(),
            serde_json::Value::from(par.cold_s),
        ),
        (
            "parallel_warm_s".into(),
            serde_json::Value::from(par.warm_s),
        ),
        ("cold_speedup".into(), serde_json::Value::from(speedup)),
        (
            "outputs_byte_identical".into(),
            serde_json::Value::from(sweep.iter().all(|(_, r)| r.hash == seq.hash)),
        ),
        (
            "studies_hash_fnv1a".into(),
            serde_json::Value::from(seq.hash.clone()),
        ),
        (
            "profile".into(),
            serde_json::Value::from("release: lto=thin, codegen-units=1"),
        ),
        // Sequential cold time measured with the pre-LTO profile
        // (lto=off, codegen-units=16), passed in by whoever ran that
        // baseline build; null when not provided.
        (
            "no_lto_baseline_cold_s".into(),
            std::env::var("FLOW_BASELINE_NO_LTO_S")
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .map_or(serde_json::Value::Null, serde_json::Value::from),
        ),
        (
            "techs".into(),
            serde_json::Value::Array(
                techs
                    .iter()
                    .map(|t| serde_json::Value::from(t.label()))
                    .collect(),
            ),
        ),
        // The router's share of the single-worker parallel cold run:
        // route.nets span totals (per-tech and summed — at one worker
        // the spans never overlap, so the sum is the router's true CPU
        // cost and the basis for the CI perf ceiling) plus the hot-path
        // work counters (bucket pops, expansions, batching, window
        // fallbacks, incremental/conflict re-routes).
        (
            "router".into(),
            sweep
                .iter()
                .find(|(w, _)| *w == 1)
                .and_then(|(_, r)| r.stages.as_ref())
                .map_or(serde_json::Value::Null, bench::router_value),
        ),
        // One entry per sweep width: cold/warm seconds plus that width's
        // router distillation. The widest entry is where speculative
        // batching must fire (router.batch_rounds > 0).
        ("parallel_sweep".into(), sweep_value),
        // Stage-by-stage breakdown of the widest parallel cold run,
        // recorded out-of-band by `techlib::obs` (the sequential child
        // stays untraced so the hash equality above also validates that
        // tracing is observationally transparent).
        (
            "stages".into(),
            par.stages.clone().unwrap_or(serde_json::Value::Null),
        ),
    ]);
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flow.json");
    let path = std::env::var(OUT_ENV).unwrap_or_else(|_| default_path.to_string());
    let mut f = std::fs::File::create(&path).expect("benchmark report path writable");
    writeln!(
        f,
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    )
    .expect("report written");
    println!("wrote {path}");
}
