//! Regenerates Table II (chiplet bump usage and area comparison).
fn main() {
    bench::banner("Table II - chiplet bump usage and area (paper: glass logic 0.82mm/464 bumps, APX logic 1.15mm/449)");
    println!("{}", codesign::tables::table2(bench::studies()));
}
