//! Regenerates Fig. 15 (PDN impedance profiles) as CSV-like series.
use pi::impedance::ImpedanceProfile;
fn main() {
    bench::banner("Fig. 15 - PDN impedance vs frequency (paper peaks: glass3D 0.97, Si 7.4, glass2.5D 20.7, APX 58, Shinko 180 ohm)");
    let profiles: Vec<ImpedanceProfile> = techlib::spec::InterposerKind::PACKAGED
        .iter()
        .map(|&t| ImpedanceProfile::sweep(t, 61).expect("sweep"))
        .collect();
    print!("{:>12}", "freq Hz");
    for p in &profiles {
        print!("{:>14}", p.tech.label());
    }
    println!();
    for i in 0..profiles[0].points.len() {
        print!("{:>12.3e}", profiles[0].points[i].0);
        for p in &profiles {
            print!("{:>14.4}", p.points[i].1);
        }
        println!();
    }
    println!("\npeaks:");
    for p in &profiles {
        println!("  {:<14} {:>10.3} ohm", p.tech.label(), p.peak_ohm());
    }
}
