//! Regenerates Fig. 14 (eye diagrams, victim + 2 aggressors, 0.7 Gbps).
use interposer::diemap::NetClass;
use interposer::report::cached_layout;
use si::eye::{lateral_eye, stacked_via_eye, EyeConfig};
use techlib::spec::InterposerKind;
fn main() {
    bench::banner(
        "Fig. 14 - eye diagrams (paper: glass3D L2M 1.415ns/0.89V; Si2.5D L2L 1.03ns/0.401V)",
    );
    for (label, cfg) in [
        ("capacitive AIB receiver", EyeConfig::default()),
        (
            "50-ohm terminated receiver (paper deck)",
            EyeConfig::paper_deck(),
        ),
    ] {
        println!("--- {label} ---");
        print_family(&cfg);
    }
}

fn print_family(cfg: &EyeConfig) {
    let cfg = cfg.clone();
    println!(
        "{:<14}{:>6}{:>12}{:>12}",
        "tech", "link", "width ns", "height V"
    );
    let g3 = stacked_via_eye(&cfg).expect("glass3D eye");
    println!(
        "{:<14}{:>6}{:>12.3}{:>12.3}",
        "Glass 3D", "L2M", g3.width_ns, g3.height_v
    );
    for tech in [
        InterposerKind::Glass3D,
        InterposerKind::Glass25D,
        InterposerKind::Silicon25D,
        InterposerKind::Shinko,
        InterposerKind::Apx,
    ] {
        let layout = cached_layout(tech).expect("layout");
        if tech != InterposerKind::Glass3D {
            let len = layout.worst_net_um(NetClass::IntraTileLateral);
            let e = lateral_eye(tech, len, &cfg).expect("eye");
            println!(
                "{:<14}{:>6}{:>12.3}{:>12.3}",
                tech.label(),
                "L2M",
                e.width_ns,
                e.height_v
            );
        }
        let len = layout.worst_net_um(NetClass::InterTile);
        let e = lateral_eye(tech, len, &cfg).expect("eye");
        println!(
            "{:<14}{:>6}{:>12.3}{:>12.3}",
            tech.label(),
            "L2L",
            e.width_ns,
            e.height_v
        );
    }
}
