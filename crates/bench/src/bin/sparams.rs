//! Writes Touchstone .s2p files for every Table V channel (the Fig. 13
//! S-parameter hand-off) and prints the Nyquist insertion loss summary.
use codesign::table5::{channels_for, MonitorLengths};
use techlib::spec::InterposerKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("artifacts")?;
    bench::banner("Channel S-parameters (insertion loss at 0.35 GHz Nyquist)");
    println!("{:<14}{:>8}{:>14}", "tech", "link", "IL dB");
    for tech in InterposerKind::PACKAGED {
        let (l2m, l2l) = channels_for(tech, MonitorLengths::Paper)?;
        for (label, ch) in [("L2M", l2m), ("L2L", l2l)] {
            println!(
                "{:<14}{:>8}{:>14.4}",
                tech.label(),
                label,
                si::sparams::nyquist_loss_db(&ch)
            );
            let ts = si::sparams::touchstone(&ch, 1e7, 2e10, 101);
            let name = format!(
                "artifacts/channel_{}_{label}.s2p",
                tech.label().replace([' ', '.'], "_")
            );
            std::fs::write(&name, ts)?;
        }
    }
    println!("\nwrote artifacts/channel_*.s2p");
    Ok(())
}
