//! Regenerates Table VI (material impact at fixed 400 um).
fn main() {
    bench::banner("Table VI - fixed-length material comparison (paper ordering: APX < Shinko < Glass < Silicon)");
    println!("{}", codesign::tables::table6_text().expect("table 6"));
}
