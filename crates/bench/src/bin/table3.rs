//! Regenerates Table III (chiplet power and performance).
fn main() {
    bench::banner("Table III - chiplet PPA (paper: glass logic 686MHz/142.35mW/5.03m)");
    println!("{}", codesign::tables::table3(bench::studies()));
}
