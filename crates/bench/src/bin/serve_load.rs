//! Load-tests the `codesign serve` daemon in-process and records the
//! results under the `"serve"` key of `BENCH_flow.json`.
//!
//! Six phases against real loopback sockets:
//!
//! 1. **Warm-up** — one cold request pays the studies and populates the
//!    context pool.
//! 2. **Warm throughput** — two client threads issue eight requests for
//!    the same scenarios; every response must be byte-identical to the
//!    `codesign sweep --json` reference, and per-request latency lands
//!    as p50/p99 plus aggregate throughput.
//! 3. **Backpressure** — a second tiny server (one worker, queue depth
//!    one) is saturated with held requests until admission answers 429.
//! 4. **Deadline** — an impossible deadline must surface typed
//!    `deadline exceeded` rows with status 504, and the same server
//!    must then serve a clean byte-identical response (pool reuse after
//!    cancellation).
//! 5. **Restart warmth** — a disk-backed artifact store
//!    ([`ServeConfig::cache_dir`]) must let a freshly restarted server
//!    answer its first request from the previous process's persisted
//!    stage artifacts, byte-identical to the CLI reference.
//! 6. **Misbehaving clients** — slowloris headers, drip-fed bodies,
//!    oversized declarations, binary garbage, and abrupt disconnects
//!    hammer a hardened server while clean sweeps run; every clean
//!    response must stay byte-identical to the CLI reference and the
//!    abuse must land in the hardening counters.

use codesign::serve::{ServeConfig, Server};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Two paper-point scenarios with routed interposers — enough work to
/// make the warm-path win visible without a long bench.
const SCENARIOS: &str = r#"[
  { "name": "glass-3d-paper", "tech": "glass3d" },
  { "name": "silicon-3d-paper", "tech": "silicon3d" }
]"#;

const WARM_REQUESTS: usize = 8;
const CLIENTS: usize = 2;

fn start(config: ServeConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind an ephemeral port");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut text = format!("{method} {path} HTTP/1.1\r\nHost: bench\r\n");
    for (name, value) in headers {
        text.push_str(&format!("{name}: {value}\r\n"));
    }
    text.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    stream.write_all(text.as_bytes()).expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("utf-8 response");
    let (head, response_body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, response_body.to_string())
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let (status, _) = request(addr, "POST", "/shutdown", &[], "");
    assert_eq!(status, 200);
    handle
        .join()
        .expect("server thread")
        .expect("clean server exit");
}

fn percentile(sorted: &[f64], percent: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((percent / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    // The reference bytes: what `codesign sweep --json` prints for the
    // same scenarios (shared renderer plus the CLI's trailing newline).
    let scenarios = codesign::scenario::scenarios_from_json(SCENARIOS).expect("valid scenarios");
    let outcomes = codesign::batch::run(&scenarios).expect("reference batch runs");
    let reference = codesign::batch::sweep_json(&scenarios, &outcomes).expect("render") + "\n";

    let (addr, handle) = start(ServeConfig::default());
    println!("serve_load: daemon on {addr}, {CLIENTS} clients");

    // Phase 1: one cold request builds the pooled contexts.
    let t0 = Instant::now();
    let (status, body) = request(addr, "POST", "/sweep", &[], SCENARIOS);
    let cold_s = t0.elapsed().as_secs_f64();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, reference, "cold response must match the CLI bytes");
    println!("cold request: {cold_s:.3} s");

    // Phase 2: warm requests from concurrent clients.
    let t1 = Instant::now();
    let mut latencies_s: Vec<f64> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let reference = &reference;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..WARM_REQUESTS / CLIENTS {
                        let t = Instant::now();
                        let (status, body) = request(addr, "POST", "/sweep", &[], SCENARIOS);
                        mine.push(t.elapsed().as_secs_f64());
                        assert_eq!(status, 200, "{body}");
                        assert_eq!(body, *reference, "warm response must match the CLI bytes");
                    }
                    mine
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("client thread"))
            .collect()
    });
    let warm_wall_s = t1.elapsed().as_secs_f64();
    latencies_s.sort_unstable_by(f64::total_cmp);
    let p50_s = percentile(&latencies_s, 50.0);
    let p99_s = percentile(&latencies_s, 99.0);
    let throughput = WARM_REQUESTS as f64 / warm_wall_s;
    println!("warm: p50 {p50_s:.3} s, p99 {p99_s:.3} s, {throughput:.1} req/s");
    assert!(
        p99_s < 1.0,
        "warm pooled requests must finish in under a second, got p99 {p99_s:.3} s"
    );
    let (status, stats) = request(addr, "GET", "/stats", &[], "");
    assert_eq!(status, 200);
    println!("stats: {}", stats.trim_end());
    assert!(stats.contains("\"context_hits\":"), "{stats}");
    shutdown(addr, handle);

    // Phase 3: backpressure on a deliberately tiny server.
    let (small, small_handle) = start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let mut rejected = 0usize;
    std::thread::scope(|scope| {
        // Staggered, not simultaneous: the first held request must be
        // *in flight* (dequeued by the single worker) before the second
        // arrives, otherwise the two race the worker for the one queue
        // slot and admission may shed the second held client instead of
        // the burst below.
        let hold: Vec<_> = (0..2)
            .map(|i| {
                if i > 0 {
                    std::thread::sleep(Duration::from_millis(100));
                }
                scope.spawn(move || {
                    request(
                        small,
                        "POST",
                        "/sweep",
                        &[("X-Codesign-Hold-Ms", "600")],
                        "[]",
                    )
                })
            })
            .collect();
        // Give both held requests time to occupy the worker + queue.
        std::thread::sleep(Duration::from_millis(200));
        for _ in 0..4 {
            let (status, _) = request(small, "POST", "/sweep", &[], "[]");
            if status == 429 {
                rejected += 1;
            }
        }
        for h in hold {
            let (status, _) = h.join().expect("held client");
            assert_eq!(status, 200);
        }
    });
    assert!(rejected > 0, "a saturated queue must shed load with 429");
    println!("backpressure: {rejected}/4 burst requests rejected with 429");

    // Phase 4: deadline expiry, then pool reuse on the same server.
    let (status, body) = request(
        small,
        "POST",
        "/sweep",
        &[
            ("X-Codesign-Deadline-Ms", "40"),
            ("X-Codesign-Hold-Ms", "250"),
        ],
        SCENARIOS,
    );
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline exceeded at stage."), "{body}");
    let (status, body) = request(small, "POST", "/sweep", &[], SCENARIOS);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, reference, "pool must serve cleanly after an expiry");
    println!("deadline: 504 with typed rows, clean request OK afterwards");
    shutdown(small, small_handle);

    // Phase 5: restart warmth. With a disk-backed artifact store, a
    // brand-new server process starts warm from its predecessor's
    // cache: the first request after a full shutdown/restart decodes
    // the persisted stage artifacts instead of recomputing them, and
    // the bytes still match the CLI reference exactly.
    let cache_dir =
        std::env::temp_dir().join(format!("codesign_serve_load_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cached_config = || ServeConfig {
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    };
    let (first, first_handle) = start(cached_config());
    let t2 = Instant::now();
    let (status, body) = request(first, "POST", "/sweep", &[], SCENARIOS);
    let restart_cold_s = t2.elapsed().as_secs_f64();
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body, reference,
        "cached cold response must match the CLI bytes"
    );
    shutdown(first, first_handle);

    let (second, second_handle) = start(cached_config());
    let t3 = Instant::now();
    let (status, body) = request(second, "POST", "/sweep", &[], SCENARIOS);
    let restart_warm_s = t3.elapsed().as_secs_f64();
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        body, reference,
        "restarted server must reproduce the CLI bytes from the disk tier"
    );
    let (status, stats) = request(second, "GET", "/stats", &[], "");
    assert_eq!(status, 200);
    let disk_hits: usize = stats
        .split("\"store_disk_hits\":")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|n| n.parse().ok())
        })
        .expect("store_disk_hits in /stats");
    assert!(
        disk_hits > 0,
        "the restarted server must serve from the disk tier: {stats}"
    );
    shutdown(second, second_handle);
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!(
        "restart warmth: cold {restart_cold_s:.3} s, first request after restart \
         {restart_warm_s:.3} s ({disk_hits} disk hits)"
    );

    // Phase 6: misbehaving clients against a hardened server. Tight
    // read budgets so the adversaries are shed quickly; the clean
    // sweeps interleaved with them must not notice.
    let (hard, hard_handle) = start(ServeConfig {
        header_read_ms: 300,
        body_read_ms: 600,
        max_connections: 16,
        ..ServeConfig::default()
    });
    // Warm the pool so the clean requests measure the steady state.
    let (status, body) = request(hard, "POST", "/sweep", &[], SCENARIOS);
    assert_eq!(status, 200, "{body}");
    let t4 = Instant::now();
    let clean_during_abuse: usize = std::thread::scope(|scope| {
        let slowloris = scope.spawn(move || {
            // Drips one header byte per 100 ms: the whole-header budget
            // (300 ms) must cut each attempt loose.
            for _ in 0..3 {
                let mut stream = TcpStream::connect(hard).expect("connect");
                let _ = stream.write_all(b"POST /sweep HTTP/1.1\r\n");
                for _ in 0..12 {
                    std::thread::sleep(Duration::from_millis(100));
                    if stream.write_all(b"a").is_err() {
                        break;
                    }
                }
            }
        });
        let dripper = scope.spawn(move || {
            // Sends headers promptly, then drips a declared 64-byte
            // body far past the 600 ms body budget.
            for _ in 0..3 {
                let mut stream = TcpStream::connect(hard).expect("connect");
                let _ = stream
                    .write_all(b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 64\r\n\r\n");
                for _ in 0..12 {
                    std::thread::sleep(Duration::from_millis(100));
                    if stream.write_all(b"[").is_err() {
                        break;
                    }
                }
            }
        });
        let vandal = scope.spawn(move || {
            for _ in 0..3 {
                // Oversized declaration: rejected before any body read.
                let mut stream = TcpStream::connect(hard).expect("connect");
                stream
                    .write_all(
                        b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 999999999\r\n\r\n",
                    )
                    .expect("oversized declaration");
                let mut raw = Vec::new();
                let _ = stream.read_to_end(&mut raw);
                let raw = String::from_utf8_lossy(&raw);
                assert!(
                    raw.starts_with("HTTP/1.1 413 "),
                    "oversized declaration must draw 413: {raw}"
                );
                // Binary garbage with a header terminator.
                let mut stream = TcpStream::connect(hard).expect("connect");
                let mut garbage: Vec<u8> =
                    (0u8..=255).filter(|&b| b != b'\r' && b != b'\n').collect();
                garbage.extend_from_slice(b"\r\n\r\n");
                let _ = stream.write_all(&garbage);
                let mut sink = Vec::new();
                let _ = stream.read_to_end(&mut sink);
                // Abrupt mid-body disconnect.
                let mut stream = TcpStream::connect(hard).expect("connect");
                let _ = stream
                    .write_all(b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\nab");
                drop(stream);
                std::thread::sleep(Duration::from_millis(60));
            }
        });
        let mut clean = 0usize;
        while !(slowloris.is_finished() && dripper.is_finished() && vandal.is_finished()) {
            let (status, body) = request(hard, "POST", "/sweep", &[], SCENARIOS);
            assert_eq!(status, 200, "{body}");
            assert_eq!(
                body, reference,
                "clean responses must stay byte-identical under abuse"
            );
            clean += 1;
        }
        slowloris.join().expect("slowloris client");
        dripper.join().expect("drip client");
        vandal.join().expect("vandal client");
        clean
    });
    let abuse_wall_s = t4.elapsed().as_secs_f64();
    let (status, stats) = request(hard, "GET", "/stats", &[], "");
    assert_eq!(status, 200);
    let stat = |field: &str| -> usize {
        stats
            .split(&format!("\"{field}\":"))
            .nth(1)
            .and_then(|rest| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .and_then(|n| n.parse().ok())
            })
            .unwrap_or_else(|| panic!("{field} in {stats}"))
    };
    let slow_aborts = stat("slow_client_aborts");
    assert!(
        slow_aborts > 0,
        "the slowloris/drip clients must land in slow_client_aborts: {stats}"
    );
    shutdown(hard, hard_handle);
    println!(
        "misbehaving clients: {clean_during_abuse} clean byte-identical sweeps during \
         {abuse_wall_s:.3} s of abuse ({slow_aborts} slow-client aborts)"
    );

    let serve = serde_json::Value::Object(vec![
        ("clients".into(), serde_json::Value::from(CLIENTS)),
        (
            "warm_requests".into(),
            serde_json::Value::from(WARM_REQUESTS),
        ),
        ("cold_s".into(), serde_json::Value::from(cold_s)),
        ("warm_p50_s".into(), serde_json::Value::from(p50_s)),
        ("warm_p99_s".into(), serde_json::Value::from(p99_s)),
        (
            "warm_throughput_rps".into(),
            serde_json::Value::from(throughput),
        ),
        (
            "warm_speedup_vs_cold".into(),
            serde_json::Value::from(cold_s / p50_s.max(1e-9)),
        ),
        (
            "burst_rejected_429".into(),
            serde_json::Value::from(rejected),
        ),
        (
            "responses_byte_identical_to_cli".into(),
            serde_json::Value::from(true),
        ),
        (
            "deadline_rows_typed_and_pool_reusable".into(),
            serde_json::Value::from(true),
        ),
        (
            "restart_cold_s".into(),
            serde_json::Value::from(restart_cold_s),
        ),
        (
            "restart_warm_first_request_s".into(),
            serde_json::Value::from(restart_warm_s),
        ),
        (
            "restart_warm_speedup".into(),
            serde_json::Value::from(restart_cold_s / restart_warm_s.max(1e-9)),
        ),
        (
            "restart_store_disk_hits".into(),
            serde_json::Value::from(disk_hits),
        ),
        (
            "adversarial_clean_sweeps".into(),
            serde_json::Value::from(clean_during_abuse),
        ),
        (
            "adversarial_clean_byte_identical".into(),
            serde_json::Value::from(true),
        ),
        (
            "adversarial_wall_s".into(),
            serde_json::Value::from(abuse_wall_s),
        ),
        (
            "adversarial_slow_client_aborts".into(),
            serde_json::Value::from(slow_aborts),
        ),
    ]);

    // Merge under the "serve" key, preserving the other benches' entries.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flow.json");
    let mut entries = match std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
    {
        Some(serde_json::Value::Object(fields)) => fields,
        _ => Vec::new(),
    };
    entries.retain(|(key, _)| key != "serve");
    entries.push(("serve".into(), serve));
    let mut f = std::fs::File::create(path).expect("BENCH_flow.json writable");
    writeln!(
        f,
        "{}",
        serde_json::to_string_pretty(&serde_json::Value::Object(entries))
            .expect("report serializes")
    )
    .expect("report written");
    println!("wrote {path}");
}
