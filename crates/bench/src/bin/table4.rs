//! Regenerates Table IV (interposer design results).
fn main() {
    bench::banner("Table IV - interposer routing/power (paper: glass3D 29.69mm/1.87mm2/399.75mW)");
    println!("{}", codesign::tables::table4(bench::studies()));
    println!("PDN impedance / IR drop / settling:");
    for tech in techlib::spec::InterposerKind::PACKAGED {
        let z = pi::impedance::ImpedanceProfile::sweep(tech, 61)
            .expect("sweep")
            .peak_ohm();
        let t = pi::transient::analyze(tech).expect("transient");
        println!(
            "  {:<14} peak {:>8.2} ohm   IR {:>6.1} mV   settle {:>5.2} us",
            tech.label(),
            z,
            t.ir_drop_mv,
            t.settling_us
        );
    }
}
