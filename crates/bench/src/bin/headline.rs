//! Regenerates the abstract's headline comparison.
fn main() {
    bench::banner(
        "Headline metrics (paper: 2.6x area, 21x WL, 17.72% power, 64.7% SI, 10x PI, +35% thermal)",
    );
    let h = codesign::compare::headline().expect("headline");
    println!("  area reduction        {:>8.2}x", h.area_reduction_x);
    println!("  wirelength reduction  {:>8.1}x", h.wirelength_reduction_x);
    println!(
        "  power reduction       {:>8.2}%",
        h.power_reduction_frac * 100.0
    );
    println!(
        "  SI improvement        {:>8.1}%",
        h.si_improvement_frac * 100.0
    );
    println!("  PI improvement        {:>8.1}x", h.pi_improvement_x);
    println!(
        "  thermal increase      {:>8.1}%",
        h.thermal_increase_frac * 100.0
    );
}
