//! Regenerates Table V (worst-net interconnect delay and power).
use codesign::table5::{table5, MonitorLengths};
fn main() {
    bench::banner("Table V - link delay/power, paper monitored lengths (paper: Si3D L2M 0.29ps, glass2.5D L2M 6.63ps)");
    let rows = table5(MonitorLengths::Paper).expect("table 5");
    println!("{}", codesign::tables::table5_text(&rows));
    bench::banner("Table V - link delay/power, our routed worst nets");
    let rows = table5(MonitorLengths::Routed).expect("table 5");
    println!("{}", codesign::tables::table5_text(&rows));
}
