//! Regenerates Figs. 16-18 (thermal maps and chiplet temperatures).
use thermal::model::ThermalModel;
use thermal::solver::{solve, SolveConfig};
fn main() -> Result<(), thermal::ThermalError> {
    bench::banner("Figs. 16-18 - thermal (paper: glass3D logic 27C / mem 34C; others logic 27-29C, mem 22-23C)");
    println!(
        "{:<14}{:>10}{:>10}{:>12}",
        "tech", "logic C", "mem C", "assembly C"
    );
    for r in thermal::report::figure17()? {
        println!(
            "{:<14}{:>10.1}{:>10.1}{:>12.1}",
            r.tech.label(),
            r.logic_peak_c,
            r.mem_peak_c,
            r.assembly_peak_c
        );
    }
    // Fig. 18: interposer-level hotspot map of the glass 2.5D assembly
    // (coarse ASCII rendering of the die layer).
    let model = ThermalModel::for_tech(techlib::spec::InterposerKind::Glass25D)?;
    let field = solve(&model, &SolveConfig::default())?;
    let z = model.nz() - 1;
    println!("\nGlass 2.5D top-layer map (C, 11x11 downsample):");
    let step = (model.ny / 11).max(1);
    for y in (0..model.ny).step_by(step) {
        for x in (0..model.nx).step_by(step) {
            print!("{:>6.1}", field.layers[z][y * model.nx + x]);
        }
        println!();
    }
    Ok(())
}
