//! Regenerates the cost comparison (the paper's cost discussion,
//! quantified in relative cost units) and the sensitivity sweeps.
fn main() -> Result<(), codesign::FlowError> {
    bench::banner("Cost model (RCU; paper claim: glass = cost-effective 3D stacking)");
    println!(
        "{:<14}{:>12}{:>10}{:>12}{:>10}",
        "tech", "substrate", "yield", "total RCU", "vs G3D"
    );
    let reports = codesign::cost::cost_all().expect("cost model");
    let g3 = reports
        .iter()
        .find(|r| r.tech == techlib::spec::InterposerKind::Glass3D)
        .expect("glass 3D present")
        .total_rcu;
    for r in &reports {
        println!(
            "{:<14}{:>12.2}{:>10.3}{:>12.2}{:>10.2}",
            r.tech.label(),
            r.substrate_rcu,
            r.yield_frac,
            r.total_rcu,
            r.total_rcu / g3
        );
    }

    bench::banner("Sensitivity sweeps (optimization opportunities)");
    // One context for every sweep: the netlist front end is derived once
    // and shared (the default context also shares it with the flow).
    let ctx = codesign::default_context();
    println!("glass logic die width vs bump pitch:");
    for p in codesign::sensitivity::footprint_vs_bump_pitch(&ctx, &[15.0, 25.0, 35.0, 45.0, 55.0])?
    {
        println!("  pitch {:>5.0} µm -> width {:>6.0} µm", p.x, p.y);
    }
    println!("glass logic die utilization vs bump pitch:");
    for p in codesign::sensitivity::utilization_vs_bump_pitch(&ctx, &[35.0, 45.0, 55.0, 70.0])? {
        println!("  pitch {:>5.0} µm -> util {:>6.3}", p.x, p.y);
    }
    println!("10 mm glass link delay vs metal thickness:");
    for p in codesign::sensitivity::delay_vs_metal_thickness(&ctx, &[1.0, 2.0, 4.0, 8.0]) {
        println!("  t {:>4.1} µm -> {:>6.2} ps", p.x, p.y);
    }
    println!("blocked gcell fraction vs via size:");
    for p in codesign::sensitivity::blockage_vs_via_size(&ctx, &[4.0, 10.0, 16.0, 22.0, 30.0])? {
        println!("  via {:>4.0} µm -> {:>6.3}", p.x, p.y);
    }
    Ok(())
}
