//! Times an eight-scenario design-space batch and records the results
//! under the `"sweep"` key of `BENCH_flow.json`.
//!
//! Three modes over the same scenario list:
//!
//! * **sequential** — `batch::run_sequential`, one scenario at a time
//!   (shared front end between clean scenarios, like the parallel path);
//! * **parallel** — `batch::run`, scenarios fanned out across workers;
//! * **isolated** — every scenario through `flow::run_scenario` (a fully
//!   private context each, so the split/chipletize front end is
//!   recomputed per scenario — what the batch's shared front end saves).
//!
//! Unlike `flow_timing`, no child processes are needed: contexts are
//! built per call, so every mode starts cold by construction. The
//! parallel outcomes are checked byte-identical to the sequential ones.
//! The parallel pass runs with `techlib::obs` recording on; its stage
//! breakdown and kernel counters land under `"sweep"."stages"`.

use codesign::batch;
use codesign::flow::TechStudy;
use codesign::scenario::{Scenario, ScenarioOverrides};
use codesign::table5::MonitorLengths;
use codesign::FlowError;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;
use techlib::spec::InterposerKind;
use techlib::store::ArtifactStore;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn scenarios() -> Vec<Scenario> {
    let mut list: Vec<Scenario> = InterposerKind::PACKAGED
        .iter()
        .map(|&tech| Scenario::paper(tech))
        .collect();
    list.push(
        Scenario::new(
            "fine-pitch-glass",
            InterposerKind::Glass25D,
            MonitorLengths::Routed,
            ScenarioOverrides {
                microbump_pitch_um: Some(25.0),
                ..Default::default()
            },
            Vec::new(),
        )
        .expect("valid scenario"),
    );
    list.push(
        Scenario::new(
            "thick-copper-glass",
            InterposerKind::Glass25D,
            MonitorLengths::Routed,
            ScenarioOverrides {
                metal_thickness_um: Some(6.0),
                ..Default::default()
            },
            Vec::new(),
        )
        .expect("valid scenario"),
    );
    list
}

fn serialize(outcomes: &[Result<TechStudy, FlowError>]) -> String {
    let parts: Vec<String> = outcomes
        .iter()
        .map(|o| match o {
            Ok(s) => serde_json::to_string(s).expect("study serializes"),
            Err(e) => format!("{e:?}"),
        })
        .collect();
    parts.join("\n")
}

fn main() {
    let list = scenarios();
    let workers = techlib::par::thread_count();
    println!(
        "sweep_timing: {} scenarios, {} workers",
        list.len(),
        workers
    );

    let t0 = Instant::now();
    let sequential = batch::run_sequential(&list);
    let sequential_s = t0.elapsed().as_secs_f64();
    println!("sequential (shared front end): {sequential_s:.3} s");

    // Trace the parallel pass only: the byte-identity assertions below
    // then double as proof that recording never changes an outcome.
    techlib::obs::enable();
    techlib::obs::reset();
    let t1 = Instant::now();
    let parallel = batch::run(&list).expect("batch launches");
    let parallel_s = t1.elapsed().as_secs_f64();
    let stages = bench::stages_value();
    println!("parallel   (shared front end): {parallel_s:.3} s");

    let t2 = Instant::now();
    let isolated: Vec<Result<TechStudy, FlowError>> =
        techlib::par::ordered_map(&list, codesign::run_scenario);
    let isolated_s = t2.elapsed().as_secs_f64();
    println!("parallel   (isolated contexts): {isolated_s:.3} s");

    let seq_json = serialize(&sequential);
    let par_json = serialize(&parallel);
    assert_eq!(
        seq_json, par_json,
        "parallel batch must serialize byte-identically to sequential"
    );
    assert_eq!(
        par_json,
        serialize(&isolated),
        "front-end sharing must not change any scenario's result"
    );
    let hash = format!("{:016x}", fnv1a(par_json.as_bytes()));
    println!("determinism: OK (outcomes hash {hash})");
    println!("speedup vs sequential: {:.2}x", sequential_s / parallel_s);

    // Store modes over the same list, sequentially for clean
    // attribution: a cold pass populating a fresh disk-backed artifact
    // store, a second pass through a *new* store instance over the same
    // directory (warm-disk — what a restarted process pays), and a
    // third pass reusing the live store (warm-mem). All three must
    // serialize byte-identically to the uncached sequential reference.
    let cache_dir = std::env::temp_dir().join(format!(
        "codesign_sweep_timing_store_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cold_store = Arc::new(ArtifactStore::with_disk(&cache_dir).expect("cache dir"));
    let t3 = Instant::now();
    let cold = batch::run_sequential_with_store(&list, Some(Arc::clone(&cold_store)));
    let store_cold_s = t3.elapsed().as_secs_f64();
    println!("store cold  (fresh disk tier):  {store_cold_s:.3} s");

    let warm_store = Arc::new(ArtifactStore::with_disk(&cache_dir).expect("cache dir"));
    let t4 = Instant::now();
    let warm_disk = batch::run_sequential_with_store(&list, Some(Arc::clone(&warm_store)));
    let warm_disk_s = t4.elapsed().as_secs_f64();
    println!("store warm  (disk, new store):  {warm_disk_s:.3} s");

    let t5 = Instant::now();
    let warm_mem = batch::run_sequential_with_store(&list, Some(Arc::clone(&warm_store)));
    let warm_mem_s = t5.elapsed().as_secs_f64();
    println!("store warm  (memory, live):     {warm_mem_s:.3} s");

    assert_eq!(
        seq_json,
        serialize(&cold),
        "cold store pass must serialize byte-identically to the uncached reference"
    );
    assert_eq!(
        seq_json,
        serialize(&warm_disk),
        "disk-warm store pass must serialize byte-identically to the uncached reference"
    );
    assert_eq!(
        seq_json,
        serialize(&warm_mem),
        "memory-warm store pass must serialize byte-identically to the uncached reference"
    );
    let warm_stats = warm_store.stats();
    assert!(
        warm_stats.disk_hits > 0,
        "the restarted store must serve from disk: {warm_stats:?}"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!(
        "store speedup: {:.2}x disk-warm, {:.2}x memory-warm ({} disk hits, {} mem hits)",
        store_cold_s / warm_disk_s,
        store_cold_s / warm_mem_s,
        warm_stats.disk_hits,
        warm_stats.mem_hits
    );

    let sweep = serde_json::Value::Object(vec![
        ("scenarios".into(), serde_json::Value::from(list.len())),
        ("workers".into(), serde_json::Value::from(workers)),
        (
            "sequential_shared_s".into(),
            serde_json::Value::from(sequential_s),
        ),
        (
            "parallel_shared_s".into(),
            serde_json::Value::from(parallel_s),
        ),
        (
            "parallel_isolated_s".into(),
            serde_json::Value::from(isolated_s),
        ),
        (
            "parallel_speedup".into(),
            serde_json::Value::from(sequential_s / parallel_s),
        ),
        (
            "outputs_byte_identical".into(),
            serde_json::Value::from(true),
        ),
        ("outcomes_hash_fnv1a".into(), serde_json::Value::from(hash)),
        // Stage breakdown + kernel work counters of the traced parallel
        // pass (the sequential pass ran untraced, so the byte-identity
        // assertions above also validate observational transparency).
        ("stages".into(), stages),
    ]);

    let store = serde_json::Value::Object(vec![
        ("cold_s".into(), serde_json::Value::from(store_cold_s)),
        ("warm_disk_s".into(), serde_json::Value::from(warm_disk_s)),
        ("warm_mem_s".into(), serde_json::Value::from(warm_mem_s)),
        (
            "warm_disk_speedup".into(),
            serde_json::Value::from(store_cold_s / warm_disk_s),
        ),
        (
            "warm_mem_speedup".into(),
            serde_json::Value::from(store_cold_s / warm_mem_s),
        ),
        (
            "warm_disk_hits".into(),
            serde_json::Value::from(warm_stats.disk_hits as usize),
        ),
        (
            "warm_mem_hits".into(),
            serde_json::Value::from(warm_stats.mem_hits as usize),
        ),
        (
            "outputs_byte_identical".into(),
            serde_json::Value::from(true),
        ),
    ]);

    // Merge under the "sweep" and "store" keys, preserving the other
    // benches' entries.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_flow.json");
    let mut entries = match std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
    {
        Some(serde_json::Value::Object(fields)) => fields,
        _ => Vec::new(),
    };
    entries.retain(|(key, _)| key != "sweep" && key != "store");
    entries.push(("sweep".into(), sweep));
    entries.push(("store".into(), store));
    let mut f = std::fs::File::create(path).expect("BENCH_flow.json writable");
    writeln!(
        f,
        "{}",
        serde_json::to_string_pretty(&serde_json::Value::Object(entries))
            .expect("report serializes")
    )
    .expect("report written");
    println!("wrote {path}");
}
