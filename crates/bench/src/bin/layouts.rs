//! Writes SVG renderings of every interposer layout (Fig. 10/12 views)
//! and the thermal heat maps (Fig. 18) to ./artifacts/.
use interposer::report::cached_layout;
use interposer::svg::{render, SvgOptions};
use techlib::spec::InterposerKind;
use thermal::model::ThermalModel;
use thermal::solver::{solve, SolveConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all("artifacts")?;
    for tech in InterposerKind::INTERPOSER_BASED {
        let layout = cached_layout(tech)?;
        let svg = render(&layout, &SvgOptions::default());
        let name = format!(
            "artifacts/layout_{}.svg",
            tech.label().replace([' ', '.'], "_")
        );
        std::fs::write(&name, svg)?;
        println!("wrote {name}");
    }
    for tech in [InterposerKind::Glass25D, InterposerKind::Silicon25D] {
        let layout = cached_layout(tech)?;
        let map = interposer::congestion::analyze(&layout).expect("congestion analyzes");
        let svg = interposer::congestion::render_layer(&map, 0, 4.0);
        let name = format!(
            "artifacts/congestion_{}.svg",
            tech.label().replace([' ', '.'], "_")
        );
        std::fs::write(&name, svg)?;
        println!("wrote {name}");
    }
    for tech in [
        InterposerKind::Glass25D,
        InterposerKind::Glass3D,
        InterposerKind::Silicon25D,
        InterposerKind::Shinko,
    ] {
        let model = ThermalModel::for_tech(tech)?;
        let field = solve(&model, &SolveConfig::default())?;
        let svg = thermal::svg::render_layer(&field, model.nz() - 1, 4.0);
        let name = format!(
            "artifacts/thermal_{}.svg",
            tech.label().replace([' ', '.'], "_")
        );
        std::fs::write(&name, svg)?;
        println!("wrote {name}");
    }
    Ok(())
}
