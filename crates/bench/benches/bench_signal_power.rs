//! Criterion benches for the figure engines: Fig. 14 (eye diagrams),
//! Fig. 15 (PDN impedance) and Figs. 16–18 (thermal solve).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use techlib::spec::InterposerKind;

/// Fig. 14: one full PRBS eye with two aggressors.
fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_eye");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    g.bench_function("silicon25d_lateral_eye", |b| {
        b.iter(|| {
            black_box(
                si::eye::lateral_eye(
                    InterposerKind::Silicon25D,
                    1_952.0,
                    &si::eye::EyeConfig {
                        bits: 48,
                        aggressors: true,
                        ..si::eye::EyeConfig::default()
                    },
                )
                .expect("eye"),
            )
        })
    });
    g.bench_function("glass3d_stacked_via_eye", |b| {
        b.iter(|| {
            black_box(
                si::eye::stacked_via_eye(&si::eye::EyeConfig {
                    bits: 48,
                    aggressors: true,
                    ..si::eye::EyeConfig::default()
                })
                .expect("eye"),
            )
        })
    });
    g.finish();
}

/// Fig. 15: a full 61-point impedance sweep.
fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_pdn");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(20));
    g.bench_function("glass3d_impedance_sweep", |b| {
        b.iter(|| {
            black_box(
                pi::impedance::ImpedanceProfile::sweep(InterposerKind::Glass3D, 61).expect("sweep"),
            )
        })
    });
    g.bench_function("shinko_transient_settling", |b| {
        b.iter(|| black_box(pi::transient::analyze(InterposerKind::Shinko).expect("transient")))
    });
    g.finish();
}

/// Figs. 16–18: one steady-state thermal solve.
fn bench_thermal(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1618_thermal");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    g.bench_function("glass3d_solve", |b| {
        b.iter(|| {
            let model =
                thermal::model::ThermalModel::for_tech(InterposerKind::Glass3D).expect("model");
            black_box(thermal::solver::solve(
                &model,
                &thermal::solver::SolveConfig::default(),
            ))
        })
    });
    g.finish();
}

criterion_group!(figures, bench_fig14, bench_fig15, bench_thermal);
criterion_main!(figures);
