//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * Manhattan vs diagonal routing on the same (Shinko) placement;
//! * eye diagram with vs without aggressors (crosstalk cost);
//! * thermal solve resolution (SOR factor);
//! * FM multi-start width vs cut quality;
//! * SA placement effort vs HPWL.

use criterion::{criterion_group, criterion_main, Criterion};
use netlist::fm::{explode, fm_multistart, FmConfig};
use netlist::openpiton::two_tile_openpiton;
use std::hint::black_box;
use techlib::spec::{InterposerKind, InterposerSpec, RoutingStyle};

/// Router ablation: diagonal vs Manhattan on the Shinko placement.
fn ablate_routing_style(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_routing_style");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(30));
    g.warm_up_time(std::time::Duration::from_secs(2));
    for style in [RoutingStyle::Manhattan, RoutingStyle::Diagonal] {
        g.bench_function(format!("shinko_{style:?}"), |b| {
            b.iter(|| {
                let placement = interposer::diemap::place_dies(InterposerKind::Shinko);
                let mut spec = InterposerSpec::for_kind(InterposerKind::Shinko);
                spec.routing_style = style;
                let grid = interposer::grid::RoutingGrid::new(placement.footprint_um, &spec)
                    .expect("grid");
                black_box(interposer::router::route_all(&placement, &grid).expect("route"))
            })
        });
    }
    g.finish();
}

/// Crosstalk ablation: aggressors on/off.
fn ablate_aggressors(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_aggressors");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    for aggressors in [false, true] {
        g.bench_function(format!("eye_aggressors_{aggressors}"), |b| {
            b.iter(|| {
                black_box(
                    si::eye::lateral_eye(
                        InterposerKind::Glass25D,
                        2_000.0,
                        &si::eye::EyeConfig {
                            bits: 48,
                            aggressors,
                            ..si::eye::EyeConfig::default()
                        },
                    )
                    .expect("eye"),
                )
            })
        });
    }
    g.finish();
}

/// Partitioner ablation: multi-start width.
fn ablate_fm_starts(c: &mut Criterion) {
    let design = two_tile_openpiton();
    let graph = explode(&design, 4_000, 42);
    let mut g = c.benchmark_group("ablate_fm_starts");
    g.sample_size(10);
    for starts in [1usize, 4, 16] {
        g.bench_function(format!("fm_{starts}_starts"), |b| {
            b.iter(|| black_box(fm_multistart(&graph, &FmConfig::default(), starts)))
        });
    }
    g.finish();
}

/// Placement ablation: SA effort.
fn ablate_sa_effort(c: &mut Criterion) {
    let design = two_tile_openpiton();
    let split = netlist::partition::hierarchical_l3_split(&design).expect("split");
    let (logic, _) = netlist::chiplet_netlist::chipletize(
        &design,
        &split,
        &netlist::serdes::SerdesPlan::paper(),
    );
    let problem = chiplet::placement::synthetic_problem(&logic, 820.0, 100, 3);
    let mut g = c.benchmark_group("ablate_sa_effort");
    g.sample_size(10);
    for (label, steps) in [("fast", 20usize), ("default", 60)] {
        g.bench_function(format!("sa_{label}"), |b| {
            b.iter(|| {
                let cfg = chiplet::placement::SaConfig {
                    steps,
                    ..chiplet::placement::SaConfig::default()
                };
                black_box(chiplet::placement::sa_place(&problem, &cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablate_routing_style,
    ablate_aggressors,
    ablate_fm_starts,
    ablate_sa_effort
);
criterion_main!(ablations);
