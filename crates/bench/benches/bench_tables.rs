//! Criterion benches for the table engines: one per paper table.
//!
//! Absolute wall-clock numbers are machine-dependent; the benches exist to
//! (a) regenerate every table's computation under timing and (b) catch
//! complexity regressions in the placer/router/solvers.

use criterion::{criterion_group, criterion_main, Criterion};
use netlist::chiplet_netlist::chipletize;
use netlist::openpiton::two_tile_openpiton;
use netlist::partition::hierarchical_l3_split;
use netlist::serdes::SerdesPlan;
use std::hint::black_box;
use techlib::spec::{InterposerKind, InterposerSpec};

/// Table I: spec construction (sanity baseline).
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_specs", |b| {
        b.iter(|| {
            for tech in InterposerKind::PACKAGED {
                black_box(InterposerSpec::for_kind(tech));
            }
        })
    });
}

/// Table II: bump planning + footprint solving for all 12 chiplets.
fn bench_table2(c: &mut Criterion) {
    let design = two_tile_openpiton();
    let split = hierarchical_l3_split(&design).expect("split");
    let (logic, mem) = chipletize(&design, &split, &SerdesPlan::paper());
    c.bench_function("table2_footprints", |b| {
        b.iter(|| {
            for tech in InterposerKind::PACKAGED {
                black_box(chiplet::report::analyze_pair(&logic, &mem, tech).expect("pair"));
            }
        })
    });
}

/// Table III: the full chiplet PPA analysis for one technology.
fn bench_table3(c: &mut Criterion) {
    let design = two_tile_openpiton();
    let split = hierarchical_l3_split(&design).expect("split");
    let (logic, mem) = chipletize(&design, &split, &SerdesPlan::paper());
    c.bench_function("table3_chiplet_ppa", |b| {
        b.iter(|| {
            black_box(chiplet::report::analyze_pair(
                &logic,
                &mem,
                InterposerKind::Glass25D,
            ))
        })
    });
}

/// Table IV: the interposer router (the heavy engine), Glass 3D (small)
/// and Silicon 2.5D (530 nets).
fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_routing");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(30));
    g.warm_up_time(std::time::Duration::from_secs(2));
    g.bench_function("glass3d_route", |b| {
        b.iter(|| {
            black_box(interposer::report::place_and_route(InterposerKind::Glass3D).expect("route"))
        })
    });
    g.bench_function("silicon25d_route", |b| {
        b.iter(|| {
            black_box(
                interposer::report::place_and_route(InterposerKind::Silicon25D).expect("route"),
            )
        })
    });
    g.finish();
}

/// Table V: one worst-net link transient.
fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_links");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(10));
    g.bench_function("glass25d_l2m_link", |b| {
        b.iter(|| {
            black_box(
                si::link::simulate_link(&si::link::ChannelKind::RdlTrace {
                    tech: InterposerKind::Glass25D,
                    length_um: 5_980.0,
                })
                .expect("link"),
            )
        })
    });
    g.finish();
}

/// Table VI: the fixed-length material study.
fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_materials");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(10));
    g.bench_function("all_materials_400um", |b| {
        b.iter(|| black_box(si::material_study::table6().expect("table6")))
    });
    g.finish();
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_table5,
    bench_table6
);
criterion_main!(tables);
