//! Technology library for the glass-interposer chiplet co-design study.
//!
//! This crate encodes everything the paper takes as *inputs*:
//!
//! * [`material`] — bulk electrical and thermal material constants
//!   (copper, ENA1 glass, silicon, organic build-up films, ...).
//! * [`spec`] — the interposer design rules of Table I for all six
//!   packaging technologies (Glass 2.5D/3D, Silicon 2.5D/3D, Shinko, APX).
//! * [`stackup`] — layer-by-layer cross sections built from a spec.
//! * [`via`] / [`bump`] — analytic parasitic models (R/L/C) for microvias,
//!   TGVs, TSVs, mini-TSVs, stacked RDL vias and micro-bumps.
//! * [`cells`] — a TSMC-28nm-like standard-cell population model calibrated
//!   against the paper's chiplet statistics.
//! * [`iodriver`] — the Intel-AIB-style inter-chiplet I/O driver model.
//! * [`calib`] — every calibration constant, with provenance comments.
//!
//! # Example
//!
//! ```
//! use techlib::spec::{InterposerKind, InterposerSpec};
//!
//! let glass = InterposerSpec::for_kind(InterposerKind::Glass3D);
//! assert_eq!(glass.signal_metal_layers, 3);
//! assert!(glass.supports_embedding());
//! ```

pub mod bump;
pub mod calib;
pub mod cancel;
pub mod cells;
pub mod faults;
pub mod iodriver;
pub mod material;
pub mod memo;
pub mod obs;
pub mod par;
pub mod reliability;
pub mod spec;
pub mod stackup;
pub mod store;
pub mod units;
pub mod via;

pub use material::Material;
pub use spec::{InterposerKind, InterposerSpec, RoutingStyle, Stacking};
pub use stackup::{Layer, LayerRole, Stackup};
pub use via::{ViaKind, ViaModel};

/// Errors produced while constructing technology objects.
#[derive(Debug, Clone, PartialEq)]
pub enum TechError {
    /// A geometric parameter was non-positive or otherwise out of range.
    InvalidGeometry {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A stackup was requested with no metal layers.
    EmptyStackup,
    /// A named layer was not found in a stackup.
    UnknownLayer(String),
}

impl std::fmt::Display for TechError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechError::InvalidGeometry { parameter, value } => {
                write!(f, "invalid geometry: {parameter} = {value}")
            }
            TechError::EmptyStackup => write!(f, "stackup has no metal layers"),
            TechError::UnknownLayer(name) => write!(f, "unknown layer {name:?}"),
        }
    }
}

impl std::error::Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let e = TechError::InvalidGeometry {
            parameter: "width_um",
            value: -1.0,
        };
        assert!(!e.to_string().is_empty());
        assert!(!TechError::EmptyStackup.to_string().is_empty());
        assert!(!TechError::UnknownLayer("M9".into()).to_string().is_empty());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TechError>();
    }
}
